#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef MDE_OBS_DISABLED
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#endif  // !MDE_OBS_DISABLED

namespace mde::obs {

#ifndef MDE_OBS_DISABLED

/// One sample as the signal handler writes it: individually-atomic fields,
/// ts_ns written LAST (release) so windowed readers skip in-progress
/// records.
struct SampleRec {
  std::atomic<uint64_t> ts_ns{0};
  std::atomic<uint64_t> fingerprint{0};
  std::atomic<const char*> tag{nullptr};
  std::atomic<uint32_t> depth{0};
  std::atomic<uintptr_t> pcs[Profiler::kMaxFrames];
};

struct Profiler::Slot {
  // Signal-handler side (owner thread only writes; readers race benignly).
  SampleRec ring[kRingSize];
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> ctx_fp{0};
  std::atomic<const char*> ctx_tag{nullptr};
  // Controller side, guarded by Profiler::mu_.
  pid_t tid = 0;
  pthread_t pthread{};
  bool live = false;
  bool timer_armed = false;
  timer_t timer{};
};

namespace {

/// The calling thread's slot; read from the SIGPROF handler, so it is a
/// plain thread_local pointer set during (normal-context) registration.
thread_local Profiler::Slot* tls_prof_slot = nullptr;

std::atomic<uint64_t> g_samples_recorded{0};
std::atomic<uint64_t> g_frames_truncated{0};
/// Handler gate: timers are deleted under the registry mutex, but a signal
/// already in flight can land after Stop — it checks this and drops out.
std::atomic<bool> g_session_active{false};

/// Frames `backtrace` reports above the interrupted PC from inside a signal
/// handler: the handler itself and the kernel signal trampoline.
constexpr int kSkipFrames = 2;

pid_t GetTid() { return static_cast<pid_t>(::syscall(SYS_gettid)); }

void ProfSignalHandler(int /*sig*/, siginfo_t* si, void* /*uctx*/) {
  // Only our timers; a stray kill(SIGPROF) must not write garbage frames.
  if (si != nullptr && si->si_code != SI_TIMER) return;
  Profiler::Slot* s = tls_prof_slot;
  if (s == nullptr || !g_session_active.load(std::memory_order_relaxed)) {
    return;
  }
  const int saved_errno = errno;
  void* frames[Profiler::kMaxFrames + kSkipFrames];
  int n = ::backtrace(frames, Profiler::kMaxFrames + kSkipFrames);
  int skip = kSkipFrames < n ? kSkipFrames : n;
  uint32_t depth = static_cast<uint32_t>(n - skip);
  if (depth > Profiler::kMaxFrames) {
    g_frames_truncated.fetch_add(depth - Profiler::kMaxFrames,
                                 std::memory_order_relaxed);
    depth = Profiler::kMaxFrames;
  }
  const uint64_t i = s->seq.load(std::memory_order_relaxed);
  SampleRec& r = s->ring[i % Profiler::kRingSize];
  r.ts_ns.store(0, std::memory_order_relaxed);  // invalidate while writing
  r.fingerprint.store(s->ctx_fp.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  r.tag.store(s->ctx_tag.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  for (uint32_t d = 0; d < depth; ++d) {
    r.pcs[d].store(reinterpret_cast<uintptr_t>(frames[skip + d]),
                   std::memory_order_relaxed);
  }
  r.depth.store(depth, std::memory_order_relaxed);
  r.ts_ns.store(NowNanos(), std::memory_order_release);
  s->seq.store(i + 1, std::memory_order_release);
  g_samples_recorded.fetch_add(1, std::memory_order_relaxed);
  errno = saved_errno;
}

void InstallProfHandlerOnce() {
  static const bool installed = [] {
    // Prime backtrace outside the signal path: the first call may dlopen
    // libgcc_s, which is not async-signal-safe.
    void* prime[4];
    ::backtrace(prime, 4);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = ProfSignalHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    return sigaction(SIGPROF, &sa, nullptr) == 0;
  }();
  (void)installed;
}

}  // namespace

/// Thread-exit hook: disarms the thread's timer and returns the slot (with
/// its retained samples) for reuse by later threads.
struct ProfilerThreadHandle {
  Profiler* owner = nullptr;
  Profiler::Slot* slot = nullptr;
  ~ProfilerThreadHandle() {
    if (owner == nullptr || slot == nullptr) return;
    tls_prof_slot = nullptr;  // before timer teardown: late signals no-op
    owner->ReleaseCurrentThreadSlot(slot);
  }
};

namespace {
thread_local ProfilerThreadHandle tls_prof_handle;
}  // namespace

Profiler& Profiler::Global() {
  static Profiler* p = new Profiler();  // leaked: outlives static dtors
  return *p;
}

Profiler::Profiler() = default;

void Profiler::RegisterCurrentThread() {
  if (tls_prof_slot != nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  Slot* s = nullptr;
  if (!free_slots_.empty()) {
    s = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slots_.size() >= kMaxThreads) return;  // not sampled, by design
    s = new Slot();  // leaked with the registry; addresses stay valid
    slots_.push_back(s);
  }
  s->tid = GetTid();
  s->pthread = pthread_self();
  s->live = true;
  s->ctx_fp.store(0, std::memory_order_relaxed);
  s->ctx_tag.store(nullptr, std::memory_order_relaxed);
  if (running_) ArmTimerLocked(s, hz_);
  tls_prof_slot = s;
  tls_prof_handle.owner = this;
  tls_prof_handle.slot = s;
}

void Profiler::ReleaseCurrentThreadSlot(Slot* s) {
  std::lock_guard<std::mutex> lock(mu_);
  DisarmTimerLocked(s);
  s->live = false;
  s->ctx_fp.store(0, std::memory_order_relaxed);
  s->ctx_tag.store(nullptr, std::memory_order_relaxed);
  free_slots_.push_back(s);
}

bool Profiler::ArmTimerLocked(Slot* slot, int hz) {
  if (slot->timer_armed) return true;
  clockid_t clk;
  if (pthread_getcpuclockid(slot->pthread, &clk) != 0) return false;
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = slot->tid;
  if (timer_create(clk, &sev, &slot->timer) != 0) return false;
  const long period_ns = 1000000000L / hz;
  struct itimerspec its;
  its.it_interval.tv_sec = period_ns / 1000000000L;
  its.it_interval.tv_nsec = period_ns % 1000000000L;
  its.it_value = its.it_interval;
  if (timer_settime(slot->timer, 0, &its, nullptr) != 0) {
    timer_delete(slot->timer);
    return false;
  }
  slot->timer_armed = true;
  return true;
}

void Profiler::DisarmTimerLocked(Slot* slot) {
  if (!slot->timer_armed) return;
  timer_delete(slot->timer);
  slot->timer_armed = false;
}

bool Profiler::Start(int hz) {
  InstallProfHandlerOnce();
  RegisterCurrentThread();
  hz = std::clamp(hz, 1, 1000);
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return false;
  hz_ = hz;
  size_t armed = 0;
  for (Slot* s : slots_) {
    if (s->live && ArmTimerLocked(s, hz_)) ++armed;
  }
  if (armed == 0) return false;  // e.g. sandbox without timer_create
  running_ = true;
  g_session_active.store(true, std::memory_order_relaxed);
  MDE_OBS_COUNT("prof.sessions", 1);
  MDE_OBS_GAUGE_SET("prof.hz", hz_);
  return true;
}

void Profiler::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_) return;
  g_session_active.store(false, std::memory_order_relaxed);
  for (Slot* s : slots_) DisarmTimerLocked(s);
  running_ = false;
  MDE_OBS_GAUGE_SET("prof.hz", 0);
}

bool Profiler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int Profiler::hz() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hz_;
}

uint64_t Profiler::samples_recorded() const {
  return g_samples_recorded.load(std::memory_order_relaxed);
}

std::vector<Profiler::Sample> Profiler::Collect(uint64_t since_ns,
                                                uint64_t until_ns,
                                                uint64_t query_fp) const {
  if (until_ns == 0) until_ns = NowNanos();
  std::vector<Sample> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot* s : slots_) {
    const uint64_t seq = s->seq.load(std::memory_order_acquire);
    const uint64_t count = std::min<uint64_t>(seq, kRingSize);
    for (uint64_t k = seq - count; k < seq; ++k) {
      const SampleRec& r = s->ring[k % kRingSize];
      const uint64_t ts = r.ts_ns.load(std::memory_order_acquire);
      if (ts < since_ns || ts >= until_ns) continue;
      const uint64_t fp = r.fingerprint.load(std::memory_order_relaxed);
      if (query_fp != 0 && fp != query_fp) continue;
      const uint32_t depth =
          std::min<uint32_t>(r.depth.load(std::memory_order_relaxed),
                             static_cast<uint32_t>(kMaxFrames));
      if (depth == 0) continue;
      Sample sample;
      sample.ts_ns = ts;
      sample.fingerprint = fp;
      sample.tag = r.tag.load(std::memory_order_relaxed);
      sample.pcs.reserve(depth);
      for (uint32_t d = 0; d < depth; ++d) {
        sample.pcs.push_back(r.pcs[d].load(std::memory_order_relaxed));
      }
      out.push_back(std::move(sample));
    }
  }
  return out;
}

std::string SymbolizePc(uintptr_t pc) {
  // Memoized dladdr + demangle; one mutex-guarded map for the process.
  static std::mutex* mu = new std::mutex();
  static std::map<uintptr_t, std::string>* cache =
      new std::map<uintptr_t, std::string>();
  {
    std::lock_guard<std::mutex> lock(*mu);
    auto it = cache->find(pc);
    if (it != cache->end()) return it->second;
  }
  std::string name;
  Dl_info info;
  // The sampled PC is a return address (one past the call); resolve pc-1 so
  // a call as a function's last instruction maps to the right symbol.
  if (::dladdr(reinterpret_cast<void*>(pc - 1), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      name = demangled;
    } else {
      name = info.dli_sname;
    }
    std::free(demangled);
  } else if (::dladdr(reinterpret_cast<void*>(pc - 1), &info) != 0 &&
             info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    char buf[512];
    std::snprintf(buf, sizeof(buf), "%s+0x%llx",
                  base != nullptr ? base + 1 : info.dli_fname,
                  static_cast<unsigned long long>(
                      pc - reinterpret_cast<uintptr_t>(info.dli_fbase)));
    name = buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(pc));
    name = buf;
  }
  // The folded grammar reserves ';' (frame separator); symbols keep their
  // spaces — consumers split the count off the LAST space.
  for (char& c : name) {
    if (c == ';' || c == '\n' || c == '\r') c = ':';
  }
  std::lock_guard<std::mutex> lock(*mu);
  return cache->emplace(pc, std::move(name)).first->second;
}

std::string Profiler::Folded(const std::vector<Sample>& samples, int hz,
                             double window_s, bool query_roots) {
  // Collapse identical (query, stack) pairs; render root-first.
  std::map<std::string, uint64_t> folded;
  for (const Sample& s : samples) {
    std::string line;
    if (query_roots) {
      if (s.fingerprint != 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "query:0x%llx",
                      static_cast<unsigned long long>(s.fingerprint));
        line = buf;
      } else {
        line = "query:-";
      }
    }
    for (auto it = s.pcs.rbegin(); it != s.pcs.rend(); ++it) {
      if (!line.empty()) line.push_back(';');
      line += SymbolizePc(*it);
    }
    if (!line.empty()) ++folded[line];
  }
  std::string out;
  char header[128];
  std::snprintf(header, sizeof(header),
                "# mde_profile hz=%d samples=%llu window_s=%.3f\n", hz,
                static_cast<unsigned long long>(samples.size()), window_s);
  out += header;
  // Count-descending, name as tiebreak, for stable golden checks.
  std::vector<std::pair<const std::string*, uint64_t>> rows;
  rows.reserve(folded.size());
  for (const auto& [stack, n] : folded) rows.push_back({&stack, n});
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return *a.first < *b.first;
  });
  for (const auto& [stack, n] : rows) {
    out += *stack;
    out.push_back(' ');
    out += std::to_string(n);
    out.push_back('\n');
  }
  return out;
}

std::string Profiler::CaptureFolded(double seconds, uint64_t query_fp,
                                    bool query_roots, int hz) {
  seconds = std::clamp(seconds, 0.1, 20.0);
  std::lock_guard<std::mutex> capture(capture_mu_);
  const bool temporary = !running();
  if (temporary && !Start(hz)) {
    return Folded({}, hz, seconds, query_roots);
  }
  const int used_hz = this->hz();
  const uint64_t t0 = NowNanos();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  const uint64_t t1 = NowNanos();
  if (temporary) Stop();
  MDE_OBS_COUNT("prof.captures", 1);
  return Folded(Collect(t0, t1, query_fp), used_hz,
                static_cast<double>(t1 - t0) * 1e-9, query_roots);
}

void Profiler::NoteContext(uint64_t fingerprint, const char* tag) {
  Slot* s = tls_prof_slot;
  if (s == nullptr) return;
  s->ctx_fp.store(fingerprint, std::memory_order_relaxed);
  s->ctx_tag.store(tag, std::memory_order_relaxed);
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot* s : slots_) {
    s->seq.store(0, std::memory_order_relaxed);
    for (SampleRec& r : s->ring) {
      r.ts_ns.store(0, std::memory_order_relaxed);
      r.depth.store(0, std::memory_order_relaxed);
    }
  }
}

#else  // MDE_OBS_DISABLED

/// Linkable no-op twin: the classes exist, Start refuses, collections are
/// empty. The signal/timer machinery is not compiled at all.
struct Profiler::Slot {};

Profiler& Profiler::Global() {
  static Profiler* p = new Profiler();
  return *p;
}

Profiler::Profiler() = default;

void Profiler::RegisterCurrentThread() {}
void Profiler::ReleaseCurrentThreadSlot(Slot*) {}
bool Profiler::ArmTimerLocked(Slot*, int) { return false; }
void Profiler::DisarmTimerLocked(Slot*) {}
bool Profiler::Start(int) { return false; }
void Profiler::Stop() {}
bool Profiler::running() const { return false; }
int Profiler::hz() const { return kDefaultHz; }
uint64_t Profiler::samples_recorded() const { return 0; }

std::vector<Profiler::Sample> Profiler::Collect(uint64_t, uint64_t,
                                                uint64_t) const {
  return {};
}

std::string Profiler::Folded(const std::vector<Sample>&, int hz,
                             double window_s, bool) {
  char header[128];
  std::snprintf(header, sizeof(header),
                "# mde_profile hz=%d samples=0 window_s=%.3f\n", hz,
                window_s);
  return header;
}

std::string Profiler::CaptureFolded(double seconds, uint64_t, bool, int hz) {
  return Folded({}, hz, seconds, false);
}

void Profiler::NoteContext(uint64_t, const char*) {}
void Profiler::Reset() {}

std::string SymbolizePc(uintptr_t pc) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(pc));
  return buf;
}

#endif  // MDE_OBS_DISABLED

}  // namespace mde::obs
