#ifndef MDE_OBS_REPORT_H_
#define MDE_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

/// Run-report rendering: merges the two artifacts a run leaves behind — a
/// Chrome trace-event JSON (obs/trace.h, --mde_trace_out) and a metrics
/// JSONL time series (obs/export.h Sampler, --mde_metrics_jsonl) — into one
/// plain-text/Markdown report that grades the run: where the time went (top
/// self-time spans), what the engine did (counter totals and rates),
/// latency shape (histogram p50/p90/p99 by cumulative-bucket
/// interpolation), memory (live pool bytes, peak RSS), and the final
/// statistical-health verdicts (obs.health.* gauges from the monitors in
/// obs/stat.h). Consumed by tools/mde_report and by bench tooling.
///
/// obs sits below util, so this API reports failure via a bool + error
/// string instead of Status. Parsing is tolerant: either input may be
/// empty/absent and its sections are skipped.
namespace mde::obs {

struct RunReportOptions {
  /// Markdown headers/tables (default) vs plain-text underlines.
  bool markdown = true;
  /// Rows kept in the span and counter tables.
  size_t top_spans = 12;
  size_t top_counters = 24;
};

/// Renders the report from raw file contents. `trace_json` is a Chrome
/// trace-event document ({"traceEvents":[...]}); `metrics_jsonl` is the
/// Sampler's line format. Either may be empty. Returns false and sets
/// `*error` when a non-empty input fails to parse.
bool RenderRunReport(const std::string& trace_json,
                     const std::string& metrics_jsonl,
                     const RunReportOptions& options, std::string* out,
                     std::string* error);

/// Renders a crash flight-recorder dump (obs/flight.h DumpToFile or the
/// signal-path variant) as a report: dump reason, the query contexts that
/// were live on each thread, the most recent spans per thread (newest
/// first), and — when present — the counter/gauge snapshot. The signal-path
/// dump omits counters/gauges (they sit behind a mutex the handler cannot
/// take), so both are optional. Returns false and sets `*error` when the
/// document fails to parse or is not a flight dump.
bool RenderFlightReport(const std::string& flight_json,
                        const RunReportOptions& options, std::string* out,
                        std::string* error);

/// Renders a CPU profile captured from /profilez (obs/profiler.h Folded
/// format: one "# mde_profile hz=H samples=N window_s=S" header comment,
/// then "frame;frame;...;frame count" lines, root first) as a report: the
/// top functions by SELF samples (leaf-frame attribution) with inclusive
/// counts alongside, and — when the stacks carry "query:0x<fp>" synthetic
/// roots — per-query sample counts with estimated CPU seconds
/// (samples / hz). When `metrics_jsonl` (the Sampler's line format) is
/// non-empty, each query row is reconciled against the final
/// mde_query_cpu_ns from the JSONL's "queries" object: the report prints
/// both and their ratio. Returns false and sets `*error` when the profile
/// text fails to parse.
bool RenderProfileReport(const std::string& profile_text,
                         const std::string& metrics_jsonl,
                         const RunReportOptions& options, std::string* out,
                         std::string* error);

/// Interpolated quantile from a fixed-bucket histogram (per-bucket counts,
/// `bounds`-aligned with one trailing +inf bucket), the same linear
/// interpolation Prometheus' histogram_quantile applies to cumulative
/// buckets. When the quantile lands in the +inf overflow bucket there is no
/// upper edge to interpolate toward: `value` is the last finite bound and
/// `overflow` is set, so renderers can report ">= bound" instead of
/// silently underreporting the tail.
struct HistogramQuantileResult {
  double value = 0.0;
  bool overflow = false;
};
HistogramQuantileResult HistogramQuantileEx(const std::vector<double>& bounds,
                                            const std::vector<uint64_t>& buckets,
                                            double q);

/// Value-only convenience (overflow collapses to the last finite bound).
/// Returns 0 for an empty histogram.
double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& buckets, double q);

}  // namespace mde::obs

#endif  // MDE_OBS_REPORT_H_
