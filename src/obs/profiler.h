#ifndef MDE_OBS_PROFILER_H_
#define MDE_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

/// Always-on continuous CPU profiler with per-query attribution.
///
/// Mechanism: every recording thread owns a POSIX per-thread CPU-time timer
/// (`timer_create` on the clock from `pthread_getcpuclockid`, delivery via
/// `SIGEV_THREAD_ID`/`SIGPROF`), so a thread receives one signal per
/// 1/hz seconds of CPU it actually burns — blocked threads cost nothing and
/// sample counts are scheduling-invariant. The async-signal-safe handler
/// captures the stack (`backtrace`, primed at first Start so it cannot
/// dlopen inside a handler) plus the thread's live query fingerprint/tag
/// (mirrored into the thread's profiler slot by `obs::internal::Install`,
/// so the handler never touches foreign TLS) into a per-thread lock-free
/// ring of recent samples — the same drop-oldest black-box discipline as
/// the flight recorder. Nothing in the signal path allocates, locks, or
/// symbolizes.
///
/// Reading: `Collect` snapshots the rings filtered by a time window and an
/// optional query fingerprint; `Folded` renders collapsed stacks
/// ("root;...;leaf count") with symbolization (`dladdr` +
/// `abi::__cxa_demangle`, memoized) done entirely off the signal path.
/// `CaptureFolded` is the /profilez slice: profile for N seconds (reusing a
/// running session or starting a temporary one) and fold what landed in the
/// window.
///
/// Tearing contract (same as obs/flight.h): each sample field is
/// individually atomic but a record is not — a reader racing the owner can
/// observe one mixed sample per thread. Collection is windowed by the
/// timestamp field, written LAST with release order, so a torn record is
/// overwhelmingly excluded from the window being read. Post-mortem/profile
/// tolerance, not linearizability.
///
/// Determinism: the profiler is write-only side-band state — no engine code
/// reads a sample — so enabling it cannot change any result bit (asserted
/// engine-level in obs_http_test at {1,2,8} threads).
///
/// Under -DMDE_OBS_DISABLED everything here compiles as a linkable no-op:
/// Start() returns false, Collect() is empty.
namespace mde::obs {

class Profiler {
 public:
  /// Per-thread sample ring + timer state. Public only as an opaque type:
  /// the SIGPROF handler and the thread-exit handle hold `Slot*`.
  struct Slot;

  static Profiler& Global();

  /// Deepest stack recorded per sample (frames beyond this are dropped and
  /// counted on `prof.truncated`).
  static constexpr size_t kMaxFrames = 32;
  /// Retained samples per thread (newest win). At the default rate a busy
  /// thread wraps after kRingSize/97 ~ 21 s — /profilez windows must be
  /// shorter than that, which the endpoint clamps to.
  static constexpr size_t kRingSize = 2048;
  /// Default sampling rate. 97 Hz, prime on purpose: never an integer
  /// divisor of millisecond-periodic engine work, so samples cannot phase-
  /// lock to a loop and systematically hit (or miss) the same statement.
  static constexpr int kDefaultHz = 97;
  /// Maximum concurrently-recording threads; later threads are not sampled.
  static constexpr size_t kMaxThreads = 256;

  /// Registers the calling thread for sampling (idempotent; one TLS check
  /// after the first call). Worker threads register on pool entry; driver
  /// threads register at their first QueryScope; Start registers its
  /// caller. If a session is running, the thread's timer is armed here.
  void RegisterCurrentThread();

  /// Starts process-wide continuous sampling at `hz` (clamped to
  /// [1, 1000]). Arms one per-thread CPU timer per registered thread.
  /// Returns false when already running, when no timer could be created,
  /// or under MDE_OBS_DISABLED.
  bool Start(int hz = kDefaultHz);

  /// Disarms and deletes every timer. Retained samples stay collectable.
  void Stop();

  bool running() const;
  int hz() const;

  /// Total samples ever recorded / frames dropped to kMaxFrames.
  uint64_t samples_recorded() const;

  /// One collected sample (raw PCs; symbolize at render time).
  struct Sample {
    uint64_t ts_ns = 0;
    uint64_t fingerprint = 0;  // active query at sample time (0 = none)
    const char* tag = nullptr;
    std::vector<uintptr_t> pcs;  // leaf first
  };

  /// Snapshots every thread's retained samples with ts_ns in
  /// [since_ns, until_ns) (until_ns == 0 means "now"). `query_fp` != 0
  /// keeps only samples attributed to that fingerprint.
  std::vector<Sample> Collect(uint64_t since_ns, uint64_t until_ns,
                              uint64_t query_fp = 0) const;

  /// Renders samples as folded stacks — one "frame;frame;...;frame N" line
  /// per distinct stack, root first, count-descending — preceded by one
  /// "# mde_profile hz=H samples=N window_s=S" comment line carrying the
  /// metadata mde_report needs (flamegraph tools skip '#' lines). With
  /// `query_roots`, each stack gains a synthetic root frame
  /// "query:0x<fp>" / "query:-" so per-query totals survive folding.
  static std::string Folded(const std::vector<Sample>& samples, int hz,
                            double window_s, bool query_roots);

  /// The /profilez slice: samples for `seconds` (clamped to [0.1, 20]) and
  /// returns the folded text for the window, filtered to `query_fp` when
  /// nonzero. Reuses the running continuous session if any, otherwise runs
  /// a temporary one at `hz`. Captures are serialized; the calling thread
  /// blocks for the window. Under MDE_OBS_DISABLED returns just the header
  /// line with samples=0.
  std::string CaptureFolded(double seconds, uint64_t query_fp = 0,
                            bool query_roots = false, int hz = kDefaultHz);

  /// Mirrors the calling thread's active query into its profiler slot
  /// (called by obs::internal::Install next to the flight-recorder mirror;
  /// no-op for unregistered threads).
  void NoteContext(uint64_t fingerprint, const char* tag);

  /// Drops all retained samples (tests only; timers stay armed).
  void Reset();

 private:
  friend struct ProfilerThreadHandle;

  Profiler();

  void ReleaseCurrentThreadSlot(Slot* slot);
  bool ArmTimerLocked(Slot* slot, int hz);
  void DisarmTimerLocked(Slot* slot);

  mutable std::mutex mu_;          // slot registry + session state
  std::vector<Slot*> slots_;       // leaked, stable addresses
  std::vector<Slot*> free_slots_;  // released by exited threads
  bool running_ = false;
  int hz_ = kDefaultHz;
  std::mutex capture_mu_;  // serializes CaptureFolded windows
};

/// Best-effort symbol for a PC: `dladdr` name (demangled) or
/// "module+0xoffset" or "0xaddress". Memoized; call off the signal path
/// only.
std::string SymbolizePc(uintptr_t pc);

}  // namespace mde::obs

#endif  // MDE_OBS_PROFILER_H_
