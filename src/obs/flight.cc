#include "obs/flight.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mde::obs {

namespace {

/// Raw pointer twin of the Global() singleton: the signal handler must not
/// touch a function-local static mid-initialization.
FlightRecorder* g_recorder = nullptr;
/// Dump destination resolved at handler-install time (getenv is not
/// async-signal-safe).
char g_signal_path[512] = "mde_flight.json";
std::atomic<bool> g_handlers_installed{false};

/// Dispositions that preceded ours, saved at install time so the fatal
/// handler can CHAIN instead of clobbering: a pre-existing handler (test
/// harness, sanitizer runtime) still runs after the dump.
constexpr int kMaxSavedSignal = 32;
struct sigaction g_prev_actions[kMaxSavedSignal];

/// Loops ::write until `len` bytes land (or an error). Async-signal-safe.
void WriteAll(int fd, const char* buf, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t w = ::write(fd, buf + off, len - off);
    if (w <= 0) return;
    off += static_cast<size_t>(w);
  }
}

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "signal:SIGSEGV";
    case SIGABRT:
      return "signal:SIGABRT";
    case SIGBUS:
      return "signal:SIGBUS";
    case SIGFPE:
      return "signal:SIGFPE";
    case SIGILL:
      return "signal:SIGILL";
  }
  return "signal:unknown";
}

void CrashSignalHandler(int sig) {
  FlightRecorder* r = g_recorder;
  if (r != nullptr) r->DumpFromSignal(SignalName(sig));
  // Chain: restore whatever disposition preceded ours and re-raise. A saved
  // real handler gets the signal next (then presumably dies its own way);
  // SIG_IGN would swallow a fatal re-raise, so it degrades to SIG_DFL —
  // exit status and core dumps behave as without the recorder.
  if (sig >= 0 && sig < kMaxSavedSignal) {
    struct sigaction prev = g_prev_actions[sig];
    const bool prev_is_handler =
        (prev.sa_flags & SA_SIGINFO) != 0 ||
        (prev.sa_handler != SIG_DFL && prev.sa_handler != SIG_IGN);
    if (!prev_is_handler) prev.sa_handler = SIG_DFL;
    sigaction(sig, &prev, nullptr);
  } else {
    std::signal(sig, SIG_DFL);
  }
  std::raise(sig);
}

void InstallHandlersOnce() {
  bool expected = false;
  if (!g_handlers_installed.compare_exchange_strong(expected, true)) return;
  const char* env = std::getenv("MDE_FLIGHT_PATH");
  if (env != nullptr && *env != '\0') {
    std::strncpy(g_signal_path, env, sizeof(g_signal_path) - 1);
    g_signal_path[sizeof(g_signal_path) - 1] = '\0';
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = CrashSignalHandler;
  sigemptyset(&sa.sa_mask);
  // Block the profiler's SIGPROF while dumping: a sampling tick landing
  // mid-dump would interleave with the crash artifact's write loop.
  sigaddset(&sa.sa_mask, SIGPROF);
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    if (sig < kMaxSavedSignal) {
      sigaction(sig, &sa, &g_prev_actions[sig]);
    } else {
      sigaction(sig, &sa, nullptr);
    }
  }
}

void JsonEscapeInto(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

void AppendHex(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  out->append(buf);
}

}  // namespace

/// Thread-exit hook: returns the thread's slot to the recorder's free list
/// so long-lived processes with short-lived pools never exhaust kMaxThreads.
struct FlightSlotHandle {
  FlightRecorder* owner = nullptr;
  FlightRecorder::Slot* slot = nullptr;
  ~FlightSlotHandle() {
    if (owner != nullptr && slot != nullptr) owner->ReleaseSlot(slot);
  }
};

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* r = [] {
    auto* rec = new FlightRecorder();  // leaked: outlives static destructors
    g_recorder = rec;
    InstallHandlersOnce();
    return rec;
  }();
  return *r;
}

void FlightRecorder::InstallCrashHandler() { Global(); }

std::string FlightRecorder::DefaultPath() {
  const char* env = std::getenv("MDE_FLIGHT_PATH");
  return (env != nullptr && *env != '\0') ? env : "mde_flight.json";
}

FlightRecorder::Slot* FlightRecorder::SlotForThisThread() {
  thread_local FlightSlotHandle handle;
  if (handle.slot == nullptr || handle.owner != this) {
    uint32_t idx = kMaxThreads;
    {
      std::lock_guard<std::mutex> lock(free_mu_);
      if (!free_slots_.empty()) {
        idx = free_slots_.back();
        free_slots_.pop_back();
      }
    }
    if (idx >= kMaxThreads) {
      if (high_water_.load(std::memory_order_relaxed) >= kMaxThreads) {
        return nullptr;  // > kMaxThreads live recording threads: not recorded
      }
      idx = high_water_.fetch_add(1, std::memory_order_relaxed);
      if (idx >= kMaxThreads) return nullptr;
    }
    handle.owner = this;
    handle.slot = &slots_[idx];
  }
  return handle.slot;
}

void FlightRecorder::ReleaseSlot(Slot* slot) {
  // The thread (and its context) is gone; retained spans stay readable.
  slot->ctx_trace_id.store(0, std::memory_order_relaxed);
  slot->ctx_fingerprint.store(0, std::memory_order_relaxed);
  slot->ctx_tag.store(nullptr, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(free_mu_);
  free_slots_.push_back(static_cast<uint32_t>(slot - slots_));
}

const char* FlightRecorder::InternName(const std::string& name) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  return interned_names_.insert(name).first->c_str();  // set nodes are stable
}

void FlightRecorder::RecordSpanOpen(const char* name, uint64_t ts_ns,
                                    uint64_t trace_id, uint64_t span_id,
                                    uint64_t parent_span_id) {
  Slot* s = SlotForThisThread();
  if (s == nullptr) return;
  const uint64_t i = s->seq.fetch_add(1, std::memory_order_relaxed);
  SpanRecord& r = s->ring[i % kSpanRingSize];
  r.name.store(name, std::memory_order_relaxed);
  r.ts_ns.store(ts_ns, std::memory_order_relaxed);
  r.trace_id.store(trace_id, std::memory_order_relaxed);
  r.span_id.store(span_id, std::memory_order_relaxed);
  r.parent_span_id.store(parent_span_id, std::memory_order_relaxed);
}

void FlightRecorder::NoteContext(uint64_t trace_id, uint64_t fingerprint,
                                 const char* tag) {
  Slot* s = SlotForThisThread();
  if (s == nullptr) return;
  s->ctx_trace_id.store(trace_id, std::memory_order_relaxed);
  s->ctx_fingerprint.store(fingerprint, std::memory_order_relaxed);
  s->ctx_tag.store(tag, std::memory_order_relaxed);
}

void FlightRecorder::SetCurrentThreadName(const std::string& name) {
  Slot* s = SlotForThisThread();
  if (s == nullptr) return;
  s->name.store(InternName(name), std::memory_order_relaxed);
}

void FlightRecorder::AppendSlotsJson(std::string* out) const {
  const uint32_t n = std::min<uint32_t>(
      high_water_.load(std::memory_order_relaxed), kMaxThreads);
  out->append("\"contexts\":[");
  bool first = true;
  for (uint32_t i = 0; i < n; ++i) {
    const Slot& s = slots_[i];
    const uint64_t trace_id = s.ctx_trace_id.load(std::memory_order_relaxed);
    if (trace_id == 0) continue;
    if (!first) out->push_back(',');
    first = false;
    out->append("{\"thread\":\"");
    const char* name = s.name.load(std::memory_order_relaxed);
    if (name != nullptr) {
      JsonEscapeInto(name, out);
    } else {
      out->append("thread-");
      AppendU64(i, out);
    }
    out->append("\",\"trace_id\":");
    AppendU64(trace_id, out);
    out->append(",\"fingerprint\":\"");
    AppendHex(s.ctx_fingerprint.load(std::memory_order_relaxed), out);
    out->append("\",\"tag\":\"");
    const char* tag = s.ctx_tag.load(std::memory_order_relaxed);
    if (tag != nullptr) JsonEscapeInto(tag, out);
    out->append("\"}");
  }
  out->append("],\"spans\":[");

  struct Rec {
    uint32_t slot;
    const char* thread_name;
    const char* name;
    uint64_t ts_ns, trace_id, span_id, parent_span_id;
  };
  std::vector<Rec> recs;
  for (uint32_t i = 0; i < n; ++i) {
    const Slot& s = slots_[i];
    const uint64_t seq = s.seq.load(std::memory_order_relaxed);
    const uint64_t count = std::min<uint64_t>(seq, kSpanRingSize);
    for (uint64_t k = seq - count; k < seq; ++k) {
      const SpanRecord& r = s.ring[k % kSpanRingSize];
      const char* sname = r.name.load(std::memory_order_relaxed);
      if (sname == nullptr) continue;
      recs.push_back({i, s.name.load(std::memory_order_relaxed), sname,
                      r.ts_ns.load(std::memory_order_relaxed),
                      r.trace_id.load(std::memory_order_relaxed),
                      r.span_id.load(std::memory_order_relaxed),
                      r.parent_span_id.load(std::memory_order_relaxed)});
    }
  }
  std::sort(recs.begin(), recs.end(),
            [](const Rec& a, const Rec& b) { return a.ts_ns < b.ts_ns; });
  first = true;
  for (const Rec& r : recs) {
    if (!first) out->push_back(',');
    first = false;
    out->append("{\"thread\":\"");
    if (r.thread_name != nullptr) {
      JsonEscapeInto(r.thread_name, out);
    } else {
      out->append("thread-");
      AppendU64(r.slot, out);
    }
    out->append("\",\"name\":\"");
    JsonEscapeInto(r.name, out);
    out->append("\",\"ts_ns\":");
    AppendU64(r.ts_ns, out);
    out->append(",\"trace_id\":");
    AppendU64(r.trace_id, out);
    out->append(",\"span_id\":");
    AppendU64(r.span_id, out);
    out->append(",\"parent_span_id\":");
    AppendU64(r.parent_span_id, out);
    out->append("}");
  }
  out->append("]");
}

std::string FlightRecorder::RenderJson(const std::string& reason) const {
  std::string doc;
  doc.reserve(1 << 14);
  doc.append("{\"flight\":{\"version\":1,\"reason\":\"");
  JsonEscapeInto(reason.c_str(), &doc);
  doc.append("\",\"ts_ns\":");
  AppendU64(NowNanos(), &doc);
  doc.push_back(',');
  AppendSlotsJson(&doc);
  doc.append(",\"counters\":{");
  const std::vector<MetricSnapshot> snapshot = Registry::Global().Snapshot();
  bool first = true;
  for (const MetricSnapshot& m : snapshot) {
    if (m.kind != MetricSnapshot::Kind::kCounter) continue;
    if (!first) doc.push_back(',');
    first = false;
    doc.push_back('"');
    JsonEscapeInto(m.name.c_str(), &doc);
    doc.append("\":");
    AppendU64(static_cast<uint64_t>(m.value), &doc);
  }
  doc.append("},\"gauges\":{");
  first = true;
  for (const MetricSnapshot& m : snapshot) {
    if (m.kind != MetricSnapshot::Kind::kGauge) continue;
    if (!first) doc.push_back(',');
    first = false;
    doc.push_back('"');
    JsonEscapeInto(m.name.c_str(), &doc);
    doc.append("\":");
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", m.value);
    doc.append(buf);
  }
  doc.append("}}}\n");
  return doc;
}

bool FlightRecorder::DumpToFile(const std::string& path,
                                const std::string& reason) {
  const std::string doc = RenderJson(reason);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  size_t off = 0;
  while (off < doc.size()) {
    const ssize_t w = ::write(fd, doc.data() + off, doc.size() - off);
    if (w <= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<size_t>(w);
  }
  ::close(fd);
  return ::rename(tmp.c_str(), path.c_str()) == 0;
}

void FlightRecorder::DumpFromSignal(const char* reason) {
  // Async-signal-safe: fixed buffers, snprintf, open/write/close only. The
  // mutex-guarded metrics registry is skipped; the artifact still carries
  // every thread's recent spans and active context.
  const int fd =
      ::open(g_signal_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  char buf[512];
  int len = std::snprintf(buf, sizeof(buf),
                          "{\"flight\":{\"version\":1,\"reason\":\"%s\","
                          "\"contexts\":[",
                          reason);
  WriteAll(fd, buf, static_cast<size_t>(len));
  const uint32_t n = std::min<uint32_t>(
      high_water_.load(std::memory_order_relaxed), kMaxThreads);
  bool first = true;
  for (uint32_t i = 0; i < n; ++i) {
    const Slot& s = slots_[i];
    const uint64_t trace_id = s.ctx_trace_id.load(std::memory_order_relaxed);
    if (trace_id == 0) continue;
    const char* name = s.name.load(std::memory_order_relaxed);
    const char* tag = s.ctx_tag.load(std::memory_order_relaxed);
    len = std::snprintf(
        buf, sizeof(buf),
        "%s{\"thread\":\"%s\",\"trace_id\":%llu,\"fingerprint\":\"0x%llx\","
        "\"tag\":\"%s\"}",
        first ? "" : ",", name != nullptr ? name : "thread",
        static_cast<unsigned long long>(trace_id),
        static_cast<unsigned long long>(
            s.ctx_fingerprint.load(std::memory_order_relaxed)),
        tag != nullptr ? tag : "");
    WriteAll(fd, buf, static_cast<size_t>(len));
    first = false;
  }
  len = std::snprintf(buf, sizeof(buf), "],\"spans\":[");
  WriteAll(fd, buf, static_cast<size_t>(len));
  first = true;
  for (uint32_t i = 0; i < n; ++i) {
    const Slot& s = slots_[i];
    const char* tname = s.name.load(std::memory_order_relaxed);
    const uint64_t seq = s.seq.load(std::memory_order_relaxed);
    const uint64_t count = std::min<uint64_t>(seq, kSpanRingSize);
    for (uint64_t k = seq - count; k < seq; ++k) {
      const SpanRecord& r = s.ring[k % kSpanRingSize];
      const char* sname = r.name.load(std::memory_order_relaxed);
      if (sname == nullptr) continue;
      len = std::snprintf(
          buf, sizeof(buf),
          "%s{\"thread\":\"%s\",\"name\":\"%s\",\"ts_ns\":%llu,"
          "\"trace_id\":%llu,\"span_id\":%llu,\"parent_span_id\":%llu}",
          first ? "" : ",", tname != nullptr ? tname : "thread", sname,
          static_cast<unsigned long long>(
              r.ts_ns.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              r.trace_id.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              r.span_id.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              r.parent_span_id.load(std::memory_order_relaxed)));
      WriteAll(fd, buf, static_cast<size_t>(len));
      first = false;
    }
  }
  len = std::snprintf(buf, sizeof(buf), "]}}\n");
  WriteAll(fd, buf, static_cast<size_t>(len));
  ::close(fd);
}

void FlightRecorder::Reset() {
  const uint32_t n = std::min<uint32_t>(
      high_water_.load(std::memory_order_relaxed), kMaxThreads);
  for (uint32_t i = 0; i < n; ++i) {
    Slot& s = slots_[i];
    s.seq.store(0, std::memory_order_relaxed);
    for (SpanRecord& r : s.ring) {
      r.name.store(nullptr, std::memory_order_relaxed);
    }
    s.ctx_trace_id.store(0, std::memory_order_relaxed);
    s.ctx_fingerprint.store(0, std::memory_order_relaxed);
    s.ctx_tag.store(nullptr, std::memory_order_relaxed);
  }
}

}  // namespace mde::obs
