#ifndef MDE_OBS_EXPORT_H_
#define MDE_OBS_EXPORT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

/// Export surface of the metrics registry: standard-format rendering for
/// scrapers, plus a background Sampler that turns the instant-valued
/// registry into an on-disk time series. Both are strictly READ-ONLY with
/// respect to the engine — they call Registry::Snapshot() (and /proc), so
/// running them concurrently with any workload cannot change a result bit
/// (same side-band discipline as the rest of mde::obs; the determinism
/// test in obs_export_test runs engines under a 10ms sampler across thread
/// counts).
///
/// Everything compiles (and links) under MDE_OBS_DISABLED; it simply
/// observes an empty registry and emits valid empty documents.
namespace mde::obs {

/// Prometheus metric-name sanitization: every character outside
/// [a-zA-Z0-9_:] becomes '_' (the registry's dot-separated names map
/// "pool.steals" -> "pool_steals"); a leading digit gains a '_' prefix.
std::string SanitizeMetricName(const std::string& name);

/// Renders a snapshot in the Prometheus text exposition format (version
/// 0.0.4): one `# TYPE` comment per family, counters/gauges as single
/// samples, histograms as CUMULATIVE `_bucket{le="..."}` samples (the
/// registry stores per-bucket counts; the exposition requires running
/// totals ending in `le="+Inf"`) plus `_sum` and `_count`. Gauge and sum
/// values use round-trip (max_digits10) formatting.
std::string PrometheusText(const std::vector<MetricSnapshot>& snapshot);

/// Convenience: PrometheusText(Registry::Global().Snapshot()) with derived
/// memory gauges appended (see AppendDerivedGauges), sample hooks run
/// first, and the per-query attribution table appended as LABELED counter
/// families (see AppendAttributionText).
std::string PrometheusText();

/// Process-identity string labels, set once at startup by subsystems that
/// live ABOVE obs in the layering (obs cannot call into them): e.g. the
/// SIMD dispatcher writes SetRuntimeLabel("simd_tier", "avx2") when it
/// picks a tier. Unset keys read as "unknown". Thread-safe.
void SetRuntimeLabel(const std::string& key, const std::string& value);
std::string GetRuntimeLabel(const std::string& key);

/// Compile-time git hash (MDE_GIT_HASH from the build; "unknown" without
/// git) and seconds since this process initialized the obs library.
const char* BuildGitHash();
double ProcessUptimeSeconds();

/// Identity-and-liveness families appended to every /metrics exposition so
/// it agrees with /statusz:
///
///   mde_build_info{git_hash="...",simd_tier="..."} 1
///   mde_process_uptime_seconds <s>
///   mde_process_rss_bytes / mde_process_peak_rss_bytes   (procfs only)
std::string BuildInfoText();

/// Renders the per-query attribution table (obs/context.h) as Prometheus
/// counter families labeled by query fingerprint and tag:
///
///   mde_query_cpu_ns{query="0x9a...",tag="table.query"} 1234567
///
/// One family per QueryStats field (cpu_ns, tasks, spans, rows_in,
/// rows_out, vg_draws, bundle_bytes, cache_hits); empty table renders
/// nothing.
std::string AttributionText();

/// Sample hooks run immediately before each export surface snapshots the
/// registry (every Sampler tick and every no-arg PrometheusText call), so
/// subsystems can publish instant-valued gauges — e.g. the ThreadPool's
/// per-worker queue_depth. Hooks run WITH the hook registry lock held:
/// UnregisterSampleHook therefore blocks until any in-flight run finishes,
/// which is what makes "unregister, then destruct" safe for a hook that
/// captures its owner. A hook must not call Register/Unregister itself.
using SampleHook = std::function<void()>;
uint64_t RegisterSampleHook(SampleHook hook);
void UnregisterSampleHook(uint64_t id);
void RunSampleHooks();

/// Appends synthesized gauges to a snapshot: for every memory pool with
/// `obs.mem.<pool>.alloc_bytes` / `.freed_bytes` counter pairs (obs/mem.h),
/// an `obs.mem.<pool>.live_bytes` gauge = alloc - freed. Keeps the write
/// path counter-only while exporting the quantity dashboards actually
/// plot.
void AppendDerivedGauges(std::vector<MetricSnapshot>* snapshot);

/// One JSONL time-series record, written per Sampler tick:
///
///   {"t_ms":<since sampler start>,
///    "counters":{"name":{"v":<total>,"d":<delta since previous line>}},
///    "gauges":{"name":<value>},
///    "hist":{"name":{"count":N,"sum":S,"bounds":[...],"buckets":[...]}},
///    "mem":{"rss_kb":N,"peak_rss_kb":N}}          (omitted without procfs)
///
/// Buckets are per-bucket (not cumulative) counts, `bounds`-aligned with
/// one trailing +inf bucket — enough for the run-report tool to
/// interpolate p50/p90/p99 from any single line.
struct SamplerOptions {
  std::string path;
  std::chrono::milliseconds period{100};
  /// Sample /proc/self/status and publish obs.mem.rss_kb/peak_rss_kb
  /// gauges each tick.
  bool include_process_memory = true;
};

/// Background registry sampler: a thread that appends one JSONL record per
/// period, RAII start/stop (the destructor stops the thread and writes one
/// final record so short runs always produce at least one complete
/// sample). Counter deltas are computed against the previously written
/// record, so per-interval rates come straight out of the file.
class Sampler {
 public:
  explicit Sampler(SamplerOptions options);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Stops the thread, writes the final record, flushes and closes the
  /// file. Idempotent; called by the destructor.
  void Stop();

  /// Records written so far (>= 1 after Stop on a writable path).
  uint64_t samples_written() const {
    return samples_.load(std::memory_order_relaxed);
  }
  bool ok() const { return out_.is_open(); }

 private:
  void Loop();
  /// Appends one record; `t_ms` is milliseconds since sampler start.
  void WriteSample(double t_ms);

  SamplerOptions options_;
  std::ofstream out_;
  std::chrono::steady_clock::time_point start_;
  /// Previous counter totals, for per-interval deltas (sampler thread
  /// only; final write happens after the thread joined).
  std::map<std::string, double> last_counters_;
  std::atomic<uint64_t> samples_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace mde::obs

#endif  // MDE_OBS_EXPORT_H_
