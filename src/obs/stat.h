#ifndef MDE_OBS_STAT_H_
#define MDE_OBS_STAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

/// Statistical health monitors for the mde engine — the paper's central
/// claim made operational: estimator quality (CLT half-widths, effective
/// sample sizes, convergence of iterative solvers) is a first-class,
/// queryable runtime signal, not something recomputed offline. MCDB's
/// result caching resamples until a CLT half-width target is met, SimSQL
/// diagnoses its database-valued chains, and the particle filter triggers
/// resampling off the ESS; the classes here are the lock-free single-writer
/// estimators those decisions read, publishing their current value into the
/// global metrics registry as gauges so the Sampler/exporters (obs/export.h)
/// can watch them over time.
///
/// Threading model: each monitor instance has ONE writer (the engine loop
/// that owns it). Publication goes through Gauge::Set (a relaxed atomic
/// store), so concurrent readers — the Sampler thread, exporters — are
/// safe. None of this is read back by the engine: determinism-neutral by
/// the same write-only discipline as the rest of mde::obs. Gauge
/// publication compiles to nothing under MDE_OBS_DISABLED; the estimators
/// themselves stay functional (the run-report tool and tests use them
/// directly).
namespace mde::obs {

class Gauge;

/// Welford online mean/variance (numerically stable; Chan et al. Merge for
/// combining parallel partials).
class Welford {
 public:
  void Add(double x);
  void Merge(const Welford& other);

  uint64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when n < 2.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 when n < 2.
  double std_error() const;

  /// Complete accumulator state, for checkpoint serialization (src/ckpt):
  /// restoring it and continuing the stream is bit-identical to never
  /// having stopped.
  struct State {
    uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
  };
  State state() const { return {n_, mean_, m2_}; }
  void set_state(const State& s) {
    n_ = s.n;
    mean_ = s.mean;
    m2_ = s.m2;
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// P² (Jain & Chlamtac 1985) single-quantile sketch: tracks the running
/// p-quantile of a stream in O(1) memory — five markers adjusted by
/// piecewise-parabolic interpolation — without storing the observations.
/// Exact for the first five values, then an estimate whose error shrinks as
/// the stream grows.
class P2Quantile {
 public:
  /// `p` in (0, 1), e.g. 0.5 for the median, 0.95 for the tail.
  explicit P2Quantile(double p);

  void Add(double x);
  uint64_t count() const { return n_; }
  double p() const { return p_; }
  /// Current quantile estimate (0 before any observation).
  double Value() const;

  /// Complete marker state (checkpoint serialization; see Welford::State).
  struct State {
    uint64_t n = 0;
    double q[5] = {};
    double pos[5] = {};
    double des[5] = {};
  };
  State state() const;
  void set_state(const State& s);

 private:
  double p_;
  uint64_t n_ = 0;
  double q_[5];   // marker heights
  double pos_[5]; // marker positions (1-based counts)
  double des_[5]; // desired positions
  double inc_[5]; // desired-position increments per observation
};

/// Running CLT confidence half-width monitor: feeds a Welford accumulator
/// and exposes half_width = z * s / sqrt(n) — the quantity MCDB's Fig. 2
/// result-caching loop drives to a target before trusting a cached Monte
/// Carlo answer. When constructed with a gauge name, every Add publishes
/// the current half-width to that gauge (plus `<name>.n` observations) so
/// the shrinking interval is visible in sampled time series.
class CiMonitor {
 public:
  /// `gauge_name` may be empty (no publication). `z` is the two-sided
  /// normal critical value; the default 1.959964 is the 95% level.
  explicit CiMonitor(const std::string& gauge_name = "", double z = 1.959964);

  void Add(double x);
  uint64_t count() const { return stat_.count(); }
  double mean() const { return stat_.mean(); }
  /// z * stddev / sqrt(n). With n < 2 observations no CLT bound exists, so
  /// the half-width is +infinity — NOT zero: a one-draw "estimate" that
  /// claimed zero error would satisfy any precision target, which is
  /// exactly how a result cache gets poisoned. Gauge publication stays
  /// finite (nothing is published until n >= 2).
  double half_width() const;
  const Welford& stat() const { return stat_; }

  /// Checkpoint serialization: the underlying Welford state is the whole
  /// mutable state (gauges are re-resolved from the constructor name).
  Welford::State state() const { return stat_.state(); }
  void set_state(const Welford::State& s) { stat_.set_state(s); }

 private:
  Welford stat_;
  double z_;
  Gauge* gauge_ = nullptr;    // current half-width
  Gauge* n_gauge_ = nullptr;  // observation count
};

/// Stall/divergence detector for iterative solvers (DSGD epoch losses,
/// calibration objectives): feed one loss value per epoch; the verdict is
///
///   kImproving  best loss improved by > rel_tol within the last `window`
///               observations,
///   kStalled    no such improvement over a full window,
///   kDiverged   loss went non-finite or exceeded diverge_factor * best.
///
/// A diverged verdict is sticky (the solve is considered failed even if a
/// later epoch recovers). With a gauge name, every Add publishes the
/// verdict (as 0/1/2) to `obs.health.<name>` and the loss to
/// `<name>.loss` — the run-report tool grades runs off these gauges.
class ConvergenceMonitor {
 public:
  enum class Verdict { kImproving = 0, kStalled = 1, kDiverged = 2 };

  explicit ConvergenceMonitor(const std::string& name = "",
                              size_t window = 10, double rel_tol = 1e-4,
                              double diverge_factor = 10.0);

  Verdict Add(double loss);
  Verdict verdict() const { return verdict_; }
  uint64_t count() const { return n_; }
  double best() const { return best_; }

  static const char* VerdictName(Verdict v);

  /// Checkpoint serialization (window/tolerances are construction config).
  struct State {
    uint64_t n = 0;
    double best = 0.0;
    uint64_t since_improvement = 0;
    uint8_t verdict = 0;
  };
  State state() const {
    return {n_, best_, since_improvement_, static_cast<uint8_t>(verdict_)};
  }
  void set_state(const State& s) {
    n_ = s.n;
    best_ = s.best;
    since_improvement_ = s.since_improvement;
    verdict_ = static_cast<Verdict>(s.verdict);
  }

 private:
  void Publish(double loss);

  size_t window_;
  double rel_tol_;
  double diverge_factor_;
  uint64_t n_ = 0;
  double best_ = 0.0;
  /// Observations since the last > rel_tol improvement of the best loss.
  size_t since_improvement_ = 0;
  Verdict verdict_ = Verdict::kImproving;
  Gauge* verdict_gauge_ = nullptr;
  Gauge* loss_gauge_ = nullptr;
};

}  // namespace mde::obs

#endif  // MDE_OBS_STAT_H_
