#include "obs/http.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/context.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

#ifndef MDE_OBS_DISABLED
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace mde::obs {

#ifndef MDE_OBS_DISABLED

namespace {

void HtmlEscapeInto(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      case '"':
        out->append("&quot;");
        break;
      default:
        out->push_back(c);
    }
  }
}

void JsonEscapeInto(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
}

std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      char hex[3] = {s[i + 1], s[i + 2], '\0'};
      char* end = nullptr;
      const long v = std::strtol(hex, &end, 16);
      if (end == hex + 2) {
        out.push_back(static_cast<char>(v));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i] == '+' ? ' ' : s[i]);
  }
  return out;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 503:
      return "Service Unavailable";
  }
  return "Internal Server Error";
}

/// Loops ::send (MSG_NOSIGNAL: a peer that hung up must not SIGPIPE the
/// handler thread) until the buffer drains or the socket genuinely errors.
/// Short writes are normal on a large body against a slow reader (the
/// kernel send buffer fills and send returns a partial count), and EINTR
/// can interrupt a blocked send at any time — both must RESUME, not abort:
/// aborting used to truncate large /metrics and /profilez bodies under
/// throttled scrapes. EPIPE/ECONNRESET (peer hung up) and EAGAIN (the
/// SO_SNDTIMEO budget expired on a stalled client) end the attempt.
void SendAll(int fd, const char* buf, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t w = ::send(fd, buf + off, len - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // EPIPE, ECONNRESET, EAGAIN/EWOULDBLOCK (send timeout), ...
    }
    if (w == 0) return;
    off += static_cast<size_t>(w);
  }
}

void SendResponse(int fd, int status, const std::string& content_type,
                  const std::string& body) {
  std::string head;
  head.reserve(160);
  head += "HTTP/1.1 ";
  head += std::to_string(status);
  head.push_back(' ');
  head += StatusText(status);
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: ";
  head += std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  SendAll(fd, head.data(), head.size());
  SendAll(fd, body.data(), body.size());
}

constexpr char kIndexPrefix[] =
    "<!doctype html><html><head><title>mde diagnostics</title></head><body>"
    "<h1>mde diagnostics</h1><ul>"
    "<li><a href=\"/healthz\">/healthz</a> — liveness</li>"
    "<li><a href=\"/metrics\">/metrics</a> — Prometheus exposition</li>"
    "<li><a href=\"/statusz\">/statusz</a> — build info, uptime, pool</li>"
    "<li><a href=\"/queryz\">/queryz</a> — per-query attribution "
    "(<a href=\"/queryz?format=json\">json</a>)</li>"
    "<li><a href=\"/tracez\">/tracez</a> — recent spans "
    "(<a href=\"/tracez?format=json\">chrome json</a>)</li>"
    "<li><a href=\"/flightz\">/flightz</a> — flight-recorder snapshot</li>"
    "<li><a href=\"/profilez?seconds=2\">/profilez?seconds=2</a> — CPU "
    "profile, folded stacks (&amp;query=0x&lt;fp&gt; to slice)</li>";

constexpr char kIndexSuffix[] = "</ul></body></html>";

/// Process-global table of handler-registered diagnostics pages. Upper
/// layers (src/serve's /sessionz) register here; every DiagServer consults
/// it in Route after the built-ins. Entries are looked up by path and the
/// matched std::function is copied out under the lock, then invoked outside
/// it — a slow handler must not block registration, and a handler that
/// itself touches the registry must not deadlock.
struct DiagHandlerEntry {
  uint64_t id = 0;
  std::string path;
  DiagHandler handler;
  std::string index_line;
};

struct DiagHandlerRegistry {
  std::mutex mu;
  std::vector<DiagHandlerEntry> entries;  // guarded by mu
  uint64_t next_id = 1;                   // guarded by mu

  static DiagHandlerRegistry& Global() {
    static DiagHandlerRegistry* r = new DiagHandlerRegistry();  // leaked:
    // registrants may unregister from static destructors after a
    // function-local static registry would already be gone.
    return *r;
  }
};

std::string RenderIndex() {
  std::string body = kIndexPrefix;
  DiagHandlerRegistry& reg = DiagHandlerRegistry::Global();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const DiagHandlerEntry& e : reg.entries) {
    if (!e.index_line.empty()) {
      body += "<li>";
      body += e.index_line;
      body += "</li>";
    } else {
      body += "<li><a href=\"";
      HtmlEscapeInto(e.path, &body);
      body += "\">";
      HtmlEscapeInto(e.path, &body);
      body += "</a></li>";
    }
  }
  body += kIndexSuffix;
  return body;
}

}  // namespace

uint64_t RegisterDiagHandler(const std::string& path, DiagHandler handler,
                             const std::string& index_line) {
  DiagHandlerRegistry& reg = DiagHandlerRegistry::Global();
  std::lock_guard<std::mutex> lock(reg.mu);
  // Same path registered twice: latest wins, so a restarted subsystem can
  // re-register without leaking a stale handler bound to dead state.
  for (auto it = reg.entries.begin(); it != reg.entries.end();) {
    it = it->path == path ? reg.entries.erase(it) : it + 1;
  }
  const uint64_t id = reg.next_id++;
  reg.entries.push_back({id, path, std::move(handler), index_line});
  return id;
}

void UnregisterDiagHandler(uint64_t id) {
  DiagHandlerRegistry& reg = DiagHandlerRegistry::Global();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto it = reg.entries.begin(); it != reg.entries.end(); ++it) {
    if (it->id == id) {
      reg.entries.erase(it);
      return;
    }
  }
}

std::string DiagQueryParam(const std::string& query,
                           const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return UrlDecode(query.substr(eq + 1, amp - eq - 1));
    }
    if (eq == std::string::npos || eq >= amp) {
      if (query.compare(pos, amp - pos, key) == 0) return "";
    }
    pos = amp + 1;
  }
  return "";
}

namespace {

std::string RenderStatusz() {
  // One RunSampleHooks so the pool gauges below are freshly published —
  // the same refresh /metrics gets, which is what keeps the two agreeing.
  RunSampleHooks();
  std::ostringstream os;
  os << "mde diagnostics\n";
  os << "git_hash: " << BuildGitHash() << "\n";
  os << "simd_tier: " << GetRuntimeLabel("simd_tier") << "\n";
  char uptime[32];
  std::snprintf(uptime, sizeof(uptime), "%.3f", ProcessUptimeSeconds());
  os << "uptime_s: " << uptime << "\n";
  const ProcessMemory mem = SampleProcessMemory();
  if (mem.ok) {
    os << "rss_kb: " << mem.rss_kb << "\n";
    os << "peak_rss_kb: " << mem.peak_rss_kb << "\n";
  }
  Profiler& prof = Profiler::Global();
  os << "profiler: " << (prof.running() ? "running" : "stopped")
     << " hz=" << prof.hz() << " samples=" << prof.samples_recorded()
     << "\n";
  os << "attribution: " << AttributionTable::Global().size() << " queries, "
     << AttributionTable::Global().evictions() << " evictions\n";
  Tracer& tracer = Tracer::Global();
  os << "tracer: " << (tracer.enabled() ? "enabled" : "disabled")
     << " recorded=" << tracer.recorded() << " dropped=" << tracer.dropped()
     << "\n";
  // Thread-pool WorkerStatsSnapshot, as published by the pool's sample
  // hook (obs sits below util, so the registry is the channel).
  os << "pool:\n";
  bool any_pool = false;
  for (const MetricSnapshot& m : Registry::Global().Snapshot()) {
    if (m.kind != MetricSnapshot::Kind::kGauge) continue;
    if (m.name.rfind("pool.", 0) != 0) continue;
    any_pool = true;
    os << "  " << m.name << ": " << static_cast<uint64_t>(m.value) << "\n";
  }
  if (!any_pool) os << "  (no pool registered)\n";
  return os.str();
}

std::string RenderQueryzHtml() {
  const std::vector<AttributionTable::Row> rows =
      AttributionTable::Global().Snapshot();
  std::string out;
  out +=
      "<!doctype html><html><head><title>mde /queryz</title></head><body>"
      "<h1>Per-query attribution</h1>"
      "<p><a href=\"/queryz?format=json\">json</a></p>"
      "<table border=\"1\" cellpadding=\"4\"><tr><th>query</th><th>tag</th>"
      "<th>cpu_ms</th><th>tasks</th><th>spans</th><th>rows_in</th>"
      "<th>rows_out</th><th>vg_draws</th><th>bundle_bytes</th>"
      "<th>cache_hits</th></tr>";
  for (const AttributionTable::Row& r : rows) {
    char cpu_ms[32];
    std::snprintf(cpu_ms, sizeof(cpu_ms), "%.3f",
                  static_cast<double>(r.cpu_ns) * 1e-6);
    out += "<tr><td><a href=\"/profilez?seconds=2&amp;query=";
    out += FingerprintHex(r.fingerprint);
    out += "\">";
    out += FingerprintHex(r.fingerprint);
    out += "</a></td><td>";
    HtmlEscapeInto(r.tag, &out);
    out += "</td><td>";
    out += cpu_ms;
    for (uint64_t v : {r.tasks, r.spans, r.rows_in, r.rows_out, r.vg_draws,
                       r.bundle_bytes, r.cache_hits}) {
      out += "</td><td>";
      out += std::to_string(v);
    }
    out += "</td></tr>";
  }
  out += "</table></body></html>";
  return out;
}

std::string RenderQueryzJson() {
  const std::vector<AttributionTable::Row> rows =
      AttributionTable::Global().Snapshot();
  std::string out = "{\"queries\":[";
  bool first = true;
  for (const AttributionTable::Row& r : rows) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"query\":\"";
    out += FingerprintHex(r.fingerprint);
    out += "\",\"tag\":\"";
    JsonEscapeInto(r.tag, &out);
    out += "\",\"cpu_ns\":";
    out += std::to_string(r.cpu_ns);
    out += ",\"tasks\":";
    out += std::to_string(r.tasks);
    out += ",\"spans\":";
    out += std::to_string(r.spans);
    out += ",\"rows_in\":";
    out += std::to_string(r.rows_in);
    out += ",\"rows_out\":";
    out += std::to_string(r.rows_out);
    out += ",\"vg_draws\":";
    out += std::to_string(r.vg_draws);
    out += ",\"bundle_bytes\":";
    out += std::to_string(r.bundle_bytes);
    out += ",\"cache_hits\":";
    out += std::to_string(r.cache_hits);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace

std::string DiagServer::Request::Param(const std::string& key) const {
  return DiagQueryParam(query, key);
}

DiagServer::DiagServer() = default;

DiagServer::~DiagServer() { Stop(); }

bool DiagServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_relaxed)) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_.store(ntohs(addr.sin_port), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = false;
  }
  running_.store(true, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  handler_threads_.reserve(kHandlerThreads);
  for (int i = 0; i < kHandlerThreads; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  return true;
}

void DiagServer::Stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  // Unblock accept(2): shutdown alone does not wake a blocked accept on
  // all kernels, so close the fd too — the accept thread re-checks
  // stopping_ on any error.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (int fd : pending_fds_) ::close(fd);
    pending_fds_.clear();
  }
  listen_fd_ = -1;
  port_.store(0, std::memory_order_relaxed);
  running_.store(false, std::memory_order_relaxed);
}

void DiagServer::AcceptLoop() {
  SetCurrentThreadName("diag-accept");
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (stopping_) {
        if (fd >= 0) ::close(fd);
        return;
      }
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket is gone
    }
    // Per-connection socket timeouts: a stalled client times out instead of
    // pinning a handler thread forever.
    struct timeval rcv_to = {5, 0};
    struct timeval snd_to = {10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv_to, sizeof(rcv_to));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd_to, sizeof(snd_to));
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_fds_.size() <
          static_cast<size_t>(kAcceptBacklog)) {
        pending_fds_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      // Bounded backlog: shed load on the accept thread rather than queue
      // unboundedly (a /profilez storm blocks handlers for seconds each).
      SendResponse(fd, 503, "text/plain; charset=utf-8", "busy\n");
      ::close(fd);
    }
  }
}

void DiagServer::HandlerLoop() {
  SetCurrentThreadName("diag-handler");
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || !pending_fds_.empty(); });
      if (stopping_) return;
      fd = pending_fds_.front();
      pending_fds_.pop_front();
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void DiagServer::HandleConnection(int fd) {
  // Read until the end of the request head (GET only; bodies ignored).
  std::string head;
  char buf[2048];
  while (head.size() < 16384 &&
         head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) break;
    head.append(buf, static_cast<size_t>(r));
  }
  const size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) {
    SendResponse(fd, 400, "text/plain; charset=utf-8", "bad request\n");
    return;
  }
  Request req;
  {
    const std::string line = head.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1) {
      SendResponse(fd, 400, "text/plain; charset=utf-8", "bad request\n");
      return;
    }
    req.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t q = target.find('?');
    if (q != std::string::npos) {
      req.query = target.substr(q + 1);
      target.resize(q);
    }
    req.path = UrlDecode(target);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  MDE_OBS_COUNT("http.requests", 1);
  const Response resp = Route(req);
  if (resp.status != 200) MDE_OBS_COUNT("http.errors", 1);
  SendResponse(fd, resp.status, resp.content_type, resp.body);
}

DiagServer::Response DiagServer::Route(const Request& req) {
  Response resp;
  if (req.method != "GET" && req.method != "HEAD") {
    resp.status = 400;
    resp.body = "only GET is served here\n";
    return resp;
  }
  if (req.path == "/") {
    resp.content_type = "text/html; charset=utf-8";
    resp.body = RenderIndex();
  } else if (req.path == "/healthz") {
    resp.body = "ok\n";
  } else if (req.path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = PrometheusText();
  } else if (req.path == "/statusz") {
    resp.body = RenderStatusz();
  } else if (req.path == "/queryz") {
    if (req.Param("format") == "json") {
      resp.content_type = "application/json";
      resp.body = RenderQueryzJson();
    } else {
      resp.content_type = "text/html; charset=utf-8";
      resp.body = RenderQueryzHtml();
    }
  } else if (req.path == "/tracez") {
    if (req.Param("format") == "json") {
      resp.content_type = "application/json";
      resp.body = Tracer::Global().ChromeTraceJson();
    } else {
      resp.body = Tracer::Global().FlameSummary();
      if (resp.body.empty()) {
        resp.body =
            "(no spans retained; tracing is off — the tracer only records "
            "when enabled)\n";
      }
    }
  } else if (req.path == "/flightz") {
    resp.content_type = "application/json";
    resp.body = FlightRecorder::Global().RenderJson("diag.flightz");
  } else if (req.path == "/profilez") {
    double seconds = 2.0;
    const std::string s = req.Param("seconds");
    if (!s.empty()) {
      char* end = nullptr;
      const double v = std::strtod(s.c_str(), &end);
      if (end == s.c_str() || v <= 0.0) {
        resp.status = 400;
        resp.body = "bad seconds= value\n";
        return resp;
      }
      seconds = v;
    }
    uint64_t query_fp = 0;
    const std::string qs = req.Param("query");
    if (!qs.empty()) {
      query_fp = std::strtoull(qs.c_str(), nullptr, 0);
      if (query_fp == 0) {
        resp.status = 400;
        resp.body = "bad query= value (want 0x<fingerprint>)\n";
        return resp;
      }
    }
    int hz = Profiler::kDefaultHz;
    const std::string hzs = req.Param("hz");
    if (!hzs.empty()) hz = std::atoi(hzs.c_str());
    const bool query_roots = req.Param("queryroots") != "0";
    resp.body =
        Profiler::Global().CaptureFolded(seconds, query_fp, query_roots, hz);
  } else {
    DiagHandler handler;
    {
      DiagHandlerRegistry& reg = DiagHandlerRegistry::Global();
      std::lock_guard<std::mutex> lock(reg.mu);
      for (const DiagHandlerEntry& e : reg.entries) {
        if (e.path == req.path) {
          handler = e.handler;  // copy; invoked outside the lock
          break;
        }
      }
    }
    if (handler) {
      const DiagPage page = handler(req.query);
      resp.status = page.status;
      resp.content_type = page.content_type;
      resp.body = page.body;
    } else {
      resp.status = 404;
      resp.body = "not found\n";
    }
  }
  return resp;
}

DiagServer* DiagServer::MaybeStartFromEnv() {
  // The two knobs are independent: MDE_PROF_HZ alone runs the continuous
  // profiler headless (collectable in-process or by a later server start),
  // which also lets the BENCH_obs.json guard toggle the profiler without
  // the server's threads in the measured arm.
  static DiagServer* server = []() -> DiagServer* {
    const char* hz_env = std::getenv("MDE_PROF_HZ");
    if (hz_env != nullptr && *hz_env != '\0') {
      int hz = std::strcmp(hz_env, "default") == 0
                   ? Profiler::kDefaultHz
                   : std::atoi(hz_env);
      if (hz > 0 && Profiler::Global().Start(hz)) {
        std::fprintf(stderr, "mde: continuous profiler at %d Hz\n",
                     Profiler::Global().hz());
      }
    }
    const char* env = std::getenv("MDE_DIAG_PORT");
    if (env == nullptr || *env == '\0') return nullptr;
    char* end = nullptr;
    const long port = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || port < 0 || port > 65535) {
      std::fprintf(stderr, "mde: bad MDE_DIAG_PORT '%s' (want 0..65535)\n",
                   env);
      return nullptr;
    }
    auto* s = new DiagServer();  // leaked: serves for the process lifetime
    if (!s->Start(static_cast<uint16_t>(port))) {
      std::fprintf(stderr, "mde: could not bind MDE_DIAG_PORT %ld\n", port);
      delete s;
      return nullptr;
    }
    std::fprintf(stderr, "mde: diagnostics on http://127.0.0.1:%d\n",
                 s->port());
    return s;
  }();
  return server;
}

#else  // MDE_OBS_DISABLED

uint64_t RegisterDiagHandler(const std::string&, DiagHandler,
                             const std::string&) {
  // Accepted (ids stay unique so Unregister round-trips) but never served:
  // there is no server in this build.
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void UnregisterDiagHandler(uint64_t) {}

std::string DiagQueryParam(const std::string&, const std::string&) {
  return "";
}

std::string DiagServer::Request::Param(const std::string&) const {
  return "";
}

DiagServer::DiagServer() = default;
DiagServer::~DiagServer() = default;
bool DiagServer::Start(uint16_t) { return false; }
void DiagServer::Stop() {}
void DiagServer::AcceptLoop() {}
void DiagServer::HandlerLoop() {}
void DiagServer::HandleConnection(int) {}
DiagServer::Response DiagServer::Route(const Request&) { return {}; }
DiagServer* DiagServer::MaybeStartFromEnv() { return nullptr; }

#endif  // MDE_OBS_DISABLED

}  // namespace mde::obs
