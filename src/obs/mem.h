#ifndef MDE_OBS_MEM_H_
#define MDE_OBS_MEM_H_

#include <cstddef>
#include <cstdint>
#include <string>

/// Memory accounting for the mde engine, built on the metrics registry.
/// Storage-owning subsystems (columnar blocks in mde::table, BundleTable
/// storage in mde::mcdb) report allocations and frees into a named pool;
/// each pool is a pair of monotone thread-sharded counters
///
///   obs.mem.<pool>.alloc_bytes   total bytes ever allocated
///   obs.mem.<pool>.freed_bytes   total bytes ever freed
///
/// so live bytes = alloc - freed can be derived at read time (the exporters
/// in obs/export.h synthesize an `obs.mem.<pool>.live_bytes` gauge from the
/// pair). Counters-not-gauges keeps the write path a relaxed fetch_add and
/// makes per-interval allocation rates recoverable from sampled deltas.
///
/// Everything here is write-only side-band state and compiles to linkable
/// no-ops under MDE_OBS_DISABLED.
namespace mde::obs {

class Counter;

/// Reports `bytes` allocated into / freed from pool `pool` (a short literal
/// like "table.columnar" or "mcdb.bundle"). The metric handles are resolved
/// through the registry on every call — fine for occasional events; hot
/// call sites should hold a MemPool instead.
void RecordAlloc(const char* pool, uint64_t bytes);
void RecordFree(const char* pool, uint64_t bytes);

/// Pre-resolved handle to one pool's counter pair: the registry lookup
/// (mutex + map + string building) happens once at construction, so each
/// report is just a relaxed fetch_add on a sharded cell. Construct it as a
/// function-local static (pool names are literals at the call sites).
/// Trivially destructible, so statics of this type are safe at shutdown.
class MemPool {
 public:
  explicit MemPool(const char* pool);

  void RecordAlloc(uint64_t bytes);
  void RecordFree(uint64_t bytes);

 private:
#ifndef MDE_OBS_DISABLED
  Counter* alloc_ = nullptr;
  Counter* freed_ = nullptr;
#endif
};

/// alloc - freed for the pool, clamped at 0 (a snapshot across sharded
/// counters, so momentarily-interleaved readings may be off by in-flight
/// deltas). Returns 0 for unknown pools and under MDE_OBS_DISABLED.
uint64_t LiveBytes(const std::string& pool);

/// RAII byte account for one storage object: Set(bytes) reports the delta
/// against the previously reported size, the destructor frees the
/// remainder. Copies re-report their bytes as a fresh allocation; moves
/// transfer the account. Safe to embed in freely copied/moved value types.
class MemAccount {
 public:
  explicit MemAccount(const char* pool) : pool_(pool) {}
  explicit MemAccount(MemPool pool) : pool_(pool) {}
  MemAccount(const MemAccount& o) : pool_(o.pool_), bytes_(o.bytes_) {
    pool_.RecordAlloc(bytes_);
  }
  MemAccount(MemAccount&& o) noexcept : pool_(o.pool_), bytes_(o.bytes_) {
    o.bytes_ = 0;
  }
  MemAccount& operator=(const MemAccount& o) {
    if (this != &o) {
      Set(0);
      pool_ = o.pool_;
      bytes_ = o.bytes_;
      pool_.RecordAlloc(bytes_);
    }
    return *this;
  }
  MemAccount& operator=(MemAccount&& o) noexcept {
    if (this != &o) {
      Set(0);
      pool_ = o.pool_;
      bytes_ = o.bytes_;
      o.bytes_ = 0;
    }
    return *this;
  }
  ~MemAccount() { Set(0); }

  /// Reports the object's current footprint; only the delta hits the
  /// counters.
  void Set(uint64_t bytes) {
    if (bytes > bytes_) {
      pool_.RecordAlloc(bytes - bytes_);
    } else if (bytes < bytes_) {
      pool_.RecordFree(bytes_ - bytes);
    }
    bytes_ = bytes;
  }
  uint64_t bytes() const { return bytes_; }

 private:
  MemPool pool_;
  uint64_t bytes_ = 0;
};

/// Process-level memory read from /proc/self/status (Linux). `ok` is false
/// when the file is unavailable (non-procfs platforms); readers must treat
/// the numbers as absent, not zero.
struct ProcessMemory {
  int64_t rss_kb = 0;       // VmRSS
  int64_t peak_rss_kb = 0;  // VmHWM
  bool ok = false;
};
ProcessMemory SampleProcessMemory();

/// Samples process memory and publishes `obs.mem.rss_kb` /
/// `obs.mem.peak_rss_kb` gauges (no-op when /proc is unavailable). The
/// Sampler in obs/export.h calls this once per tick.
void PublishProcessMemoryGauges();

}  // namespace mde::obs

#endif  // MDE_OBS_MEM_H_
