#ifndef MDE_OBS_METRICS_H_
#define MDE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// Metrics registry for the mde engine. ProvSQL-style in-engine
/// bookkeeping: every subsystem (pool, vectorized kernels, MCDB bundle
/// generation, SimSQL chain steps, DSGD strata, SMC resampling) increments
/// named counters/gauges/histograms as a side-band record of what actually
/// executed. Design constraints, in order:
///
/// 1. *Near-zero hot-path cost.* Counter cells are thread-sharded: each
///    writer thread owns (by index hash) one cache-line-padded atomic cell
///    and increments it with a relaxed fetch_add; readers aggregate across
///    shards. No locks, no false sharing on the write path.
/// 2. *Determinism-neutral.* Metrics are write-only from the engine's point
///    of view: nothing in a kernel ever reads a metric, so collection cannot
///    perturb results or ordering.
/// 3. *Compile-out.* Building with -DMDE_OBS_DISABLED (CMake option
///    MDE_OBS_DISABLED) turns every MDE_OBS_* macro into nothing. The
///    classes below stay compiled so tools that *read* metrics keep
///    linking; they simply observe an empty registry.
///
/// Naming scheme: dot-separated "<subsystem>.<what>[.<detail>]", e.g.
/// "pool.steals", "vec.filter.rows_in", "mcdb.vg_samples". Counters count
/// monotonically; gauges hold the last written value; histograms use fixed
/// bucket upper bounds chosen at first registration.
namespace mde::obs {

/// Number of independent write cells per metric. Power of two; threads map
/// to cells by a monotone thread index, so up to kShards writers proceed
/// with no cache-line contention.
inline constexpr size_t kMetricShards = 16;

namespace internal {
/// Index of the calling thread's shard cell (stable per thread).
size_t ThisThreadShard();

struct alignas(64) ShardCell {
  std::atomic<uint64_t> v{0};
};
}  // namespace internal

/// Monotone counter. Writers call Add; Value() sums the shards (a snapshot,
/// not a linearization point — fine for observability).
class Counter {
 public:
  void Add(uint64_t n = 1) {
    cells_[internal::ThisThreadShard()].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  internal::ShardCell cells_[kMetricShards];
};

/// Last-write-wins scalar (queue depths, pool sizes, current α, ...).
class Gauge {
 public:
  void Set(double v) {
    bits_.store(ToBits(v), std::memory_order_relaxed);
  }
  double Value() const { return FromBits(bits_.load(std::memory_order_relaxed)); }

 private:
  static uint64_t ToBits(double v);
  static double FromBits(uint64_t b);
  std::atomic<uint64_t> bits_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending upper bounds; an implicit
/// +inf bucket catches the rest. Observation cost is one binary search plus
/// three relaxed adds on the caller's shard.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Aggregated per-bucket counts (size bounds()+1; last bucket is +inf).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const;
  double Sum() const;

 private:
  struct Shard {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_bits{0};  // double accumulated via CAS
    char pad_[32];
  };
  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// Power-of-two bucket bounds 1, 2, 4, ... 2^(n-1) — the default for size-
/// and depth-like quantities (queue depth, rows per chunk, ...).
std::vector<double> ExponentialBounds(size_t n = 16);

/// One metric flattened for export.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;  // counter total / gauge value / histogram sum
  uint64_t count = 0;  // histogram observation count
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;
};

/// Process-wide metric registry. Lookup is mutex-guarded (cold: callers
/// cache the returned pointer in a function-local static); returned
/// pointers stay valid for the life of the process.
class Registry {
 public:
  static Registry& Global();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// First registration fixes the bounds; later calls with the same name
  /// return the existing histogram regardless of `bounds` (first wins). A
  /// later call whose `bounds` differ from the registered ones increments
  /// the `obs.histogram.bounds_conflict` counter — observations from that
  /// call site land in buckets it did not ask for, which is worth seeing.
  Histogram* histogram(const std::string& name, std::vector<double> bounds);

  /// All metrics, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;
  /// Human-readable "name value" dump, one metric per line, sorted.
  std::string TextDump() const;

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mde::obs

/// Hot-path instrumentation macros. The metric handle is resolved once per
/// call site (function-local static), so steady state is a relaxed
/// fetch_add on a thread-sharded cell. All of them compile to nothing under
/// MDE_OBS_DISABLED.
#ifndef MDE_OBS_DISABLED

#define MDE_OBS_COUNT(name, n)                                    \
  do {                                                            \
    static ::mde::obs::Counter* _mde_obs_c =                      \
        ::mde::obs::Registry::Global().counter(name);             \
    _mde_obs_c->Add(static_cast<uint64_t>(n));                    \
  } while (0)

#define MDE_OBS_GAUGE_SET(name, v)                                \
  do {                                                            \
    static ::mde::obs::Gauge* _mde_obs_g =                        \
        ::mde::obs::Registry::Global().gauge(name);               \
    _mde_obs_g->Set(static_cast<double>(v));                      \
  } while (0)

/// Observes into a histogram with power-of-two buckets.
#define MDE_OBS_OBSERVE(name, v)                                  \
  do {                                                            \
    static ::mde::obs::Histogram* _mde_obs_h =                    \
        ::mde::obs::Registry::Global().histogram(                 \
            name, ::mde::obs::ExponentialBounds());               \
    _mde_obs_h->Observe(static_cast<double>(v));                  \
  } while (0)

#else  // MDE_OBS_DISABLED

// sizeof keeps the operands syntactically used (no -Wunused on variables
// that only feed metrics) without evaluating them.
#define MDE_OBS_COUNT(name, n) \
  do {                         \
    (void)sizeof((n));         \
  } while (0)
#define MDE_OBS_GAUGE_SET(name, v) \
  do {                             \
    (void)sizeof((v));             \
  } while (0)
#define MDE_OBS_OBSERVE(name, v) \
  do {                           \
    (void)sizeof((v));           \
  } while (0)

#endif  // MDE_OBS_DISABLED

#endif  // MDE_OBS_METRICS_H_
