#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "obs/stat.h"

namespace mde::obs {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON DOM + recursive-descent parser. obs sits below every other
// library (and the container has no JSON dependency), so the report reader
// carries its own ~150-line parser: objects keep insertion order, numbers
// are doubles, and parse failure reports an offset for diagnostics.
// ---------------------------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  const Json* Get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double NumOr(double def) const {
    return type == Type::kNumber ? num : def;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(Json* out, std::string* error) {
    ok_ = true;
    pos_ = 0;
    ParseValue(out);
    SkipSpace();
    if (ok_ && pos_ != s_.size()) Fail("trailing characters");
    if (!ok_ && error != nullptr) {
      *error = err_ + " at offset " + std::to_string(pos_);
    }
    return ok_;
  }

 private:
  void SkipSpace() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void Fail(const char* what) {
    if (ok_) {
      ok_ = false;
      err_ = what;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void Expect(char c, const char* what) {
    if (!Consume(c)) Fail(what);
  }

  void ParseValue(Json* out) {
    SkipSpace();
    if (pos_ >= s_.size()) {
      Fail("unexpected end of input");
      return;
    }
    const char c = s_[pos_];
    if (c == '{') {
      ParseObject(out);
    } else if (c == '[') {
      ParseArray(out);
    } else if (c == '"') {
      out->type = Json::Type::kString;
      ParseString(&out->str);
    } else if (c == 't' || c == 'f') {
      const char* word = c == 't' ? "true" : "false";
      if (s_.compare(pos_, c == 't' ? 4 : 5, word) == 0) {
        out->type = Json::Type::kBool;
        out->b = c == 't';
        pos_ += c == 't' ? 4 : 5;
      } else {
        Fail("bad literal");
      }
    } else if (c == 'n') {
      if (s_.compare(pos_, 4, "null") == 0) {
        out->type = Json::Type::kNull;
        pos_ += 4;
      } else {
        Fail("bad literal");
      }
    } else {
      ParseNumber(out);
    }
  }

  void ParseObject(Json* out) {
    out->type = Json::Type::kObject;
    Expect('{', "expected '{'");
    if (Consume('}')) return;
    while (ok_) {
      std::string key;
      SkipSpace();
      ParseString(&key);
      Expect(':', "expected ':'");
      Json value;
      ParseValue(&value);
      out->obj.emplace_back(std::move(key), std::move(value));
      if (Consume('}')) return;
      Expect(',', "expected ',' or '}'");
    }
  }

  void ParseArray(Json* out) {
    out->type = Json::Type::kArray;
    Expect('[', "expected '['");
    if (Consume(']')) return;
    while (ok_) {
      Json value;
      ParseValue(&value);
      out->arr.push_back(std::move(value));
      if (Consume(']')) return;
      Expect(',', "expected ',' or ']'");
    }
  }

  void ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      Fail("expected string");
      return;
    }
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            // Escaped BMP code point; metric/span names are ASCII, so a
            // replacement character preserves well-formedness.
            pos_ = std::min(s_.size(), pos_ + 4);
            c = '?';
            break;
          default: c = e; break;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= s_.size()) {
      Fail("unterminated string");
      return;
    }
    ++pos_;  // closing quote
  }

  void ParseNumber(Json* out) {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected value");
      return;
    }
    out->type = Json::Type::kNumber;
    out->num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
  }

  const std::string& s_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string err_;
};

// ---------------------------------------------------------------------------
// Report model.
// ---------------------------------------------------------------------------

struct SpanAgg {
  uint64_t calls = 0;
  double incl_us = 0.0;
  double self_us = 0.0;
};

struct HistFinal {
  uint64_t count = 0;
  double sum = 0.0;
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;
};

/// One row of the per-query attribution table (obs/context.h), as sampled
/// into the JSONL "queries" object. Fields are cumulative, so the last
/// sample wins.
struct QueryAgg {
  std::string tag;
  double cpu_ns = 0.0;
  double tasks = 0.0;
  double spans = 0.0;
  double rows_in = 0.0;
  double rows_out = 0.0;
  double vg_draws = 0.0;
  double bundle_bytes = 0.0;
  double cache_hits = 0.0;
};

struct MetricsSeries {
  double t_first_ms = 0.0;
  double t_last_ms = 0.0;
  size_t samples = 0;
  std::map<std::string, double> counter_first;
  std::map<std::string, double> counter_last;
  std::map<std::string, double> gauges;  // final values
  std::map<std::string, HistFinal> hists;
  std::map<std::string, QueryAgg> queries;  // final values, keyed by "0x.."
  bool have_mem = false;
  double rss_kb = 0.0;
  double peak_rss_kb = 0.0;
};

/// Same-thread stack replay over start-ordered events (the FlameSummary
/// algorithm, applied to the parsed file instead of the live rings).
std::map<std::string, SpanAgg> AggregateSpans(const Json& trace) {
  struct Ev {
    std::string name;
    double ts = 0.0, dur = 0.0;
    double tid = 0.0;
  };
  std::vector<Ev> events;
  if (const Json* list = trace.Get("traceEvents");
      list != nullptr && list->type == Json::Type::kArray) {
    events.reserve(list->arr.size());
    for (const Json& e : list->arr) {
      Ev ev;
      if (const Json* n = e.Get("name")) ev.name = n->str;
      ev.ts = e.Get("ts") != nullptr ? e.Get("ts")->NumOr(0.0) : 0.0;
      ev.dur = e.Get("dur") != nullptr ? e.Get("dur")->NumOr(0.0) : 0.0;
      ev.tid = e.Get("tid") != nullptr ? e.Get("tid")->NumOr(0.0) : 0.0;
      if (!ev.name.empty()) events.push_back(std::move(ev));
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Ev& a, const Ev& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.dur > b.dur;  // parent before child on a tie
                   });
  std::map<std::string, SpanAgg> agg;
  struct Open {
    double end;
    std::string name;
  };
  std::vector<Open> stack;
  double current_tid = std::numeric_limits<double>::quiet_NaN();
  for (const Ev& e : events) {
    if (e.tid != current_tid) {
      stack.clear();
      current_tid = e.tid;
    }
    SpanAgg& a = agg[e.name];
    ++a.calls;
    a.incl_us += e.dur;
    a.self_us += e.dur;
    while (!stack.empty() && stack.back().end <= e.ts) stack.pop_back();
    if (!stack.empty()) agg[stack.back().name].self_us -= e.dur;
    stack.push_back({e.ts + e.dur, e.name});
  }
  return agg;
}

bool ParseMetricsJsonl(const std::string& jsonl, MetricsSeries* out,
                       std::string* error) {
  size_t line_no = 0;
  size_t begin = 0;
  while (begin < jsonl.size()) {
    size_t end = jsonl.find('\n', begin);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(begin, end - begin);
    begin = end + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Json rec;
    std::string perr;
    if (!JsonParser(line).Parse(&rec, &perr)) {
      if (error != nullptr) {
        *error = "metrics line " + std::to_string(line_no) + ": " + perr;
      }
      return false;
    }
    const double t_ms =
        rec.Get("t_ms") != nullptr ? rec.Get("t_ms")->NumOr(0.0) : 0.0;
    if (out->samples == 0) out->t_first_ms = t_ms;
    out->t_last_ms = t_ms;
    if (const Json* counters = rec.Get("counters")) {
      for (const auto& [name, c] : counters->obj) {
        const double v =
            c.Get("v") != nullptr ? c.Get("v")->NumOr(0.0) : c.NumOr(0.0);
        if (out->samples == 0) out->counter_first[name] = v;
        out->counter_first.try_emplace(name, 0.0);
        out->counter_last[name] = v;
      }
    }
    if (const Json* gauges = rec.Get("gauges")) {
      for (const auto& [name, g] : gauges->obj) {
        out->gauges[name] = g.NumOr(0.0);
      }
    }
    if (const Json* hists = rec.Get("hist")) {
      for (const auto& [name, h] : hists->obj) {
        HistFinal hf;
        hf.count = static_cast<uint64_t>(
            h.Get("count") != nullptr ? h.Get("count")->NumOr(0.0) : 0.0);
        hf.sum = h.Get("sum") != nullptr ? h.Get("sum")->NumOr(0.0) : 0.0;
        if (const Json* bounds = h.Get("bounds")) {
          for (const Json& b : bounds->arr) hf.bounds.push_back(b.NumOr(0.0));
        }
        if (const Json* buckets = h.Get("buckets")) {
          for (const Json& b : buckets->arr) {
            hf.buckets.push_back(static_cast<uint64_t>(b.NumOr(0.0)));
          }
        }
        out->hists[name] = std::move(hf);
      }
    }
    if (const Json* queries = rec.Get("queries")) {
      for (const auto& [fp, q] : queries->obj) {
        QueryAgg agg;
        if (const Json* t = q.Get("tag")) agg.tag = t->str;
        const auto field = [&q](const char* key) {
          const Json* v = q.Get(key);
          return v != nullptr ? v->NumOr(0.0) : 0.0;
        };
        agg.cpu_ns = field("cpu_ns");
        agg.tasks = field("tasks");
        agg.spans = field("spans");
        agg.rows_in = field("rows_in");
        agg.rows_out = field("rows_out");
        agg.vg_draws = field("vg_draws");
        agg.bundle_bytes = field("bundle_bytes");
        agg.cache_hits = field("cache_hits");
        out->queries[fp] = std::move(agg);
      }
    }
    if (const Json* mem = rec.Get("mem")) {
      out->have_mem = true;
      if (const Json* v = mem->Get("rss_kb")) out->rss_kb = v->NumOr(0.0);
      if (const Json* v = mem->Get("peak_rss_kb")) {
        out->peak_rss_kb = v->NumOr(0.0);
      }
    }
    ++out->samples;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

/// Emits either a Markdown pipe table or aligned plain-text columns.
class TableWriter {
 public:
  TableWriter(std::vector<std::string> headers, bool markdown)
      : headers_(std::move(headers)), markdown_(markdown) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }
  bool empty() const { return rows_.empty(); }

  void Render(std::ostream& os) const {
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : kEmpty;
        if (markdown_) {
          os << "| " << cell << " ";
        } else {
          os << cell;
          for (size_t p = cell.size(); p < width[c] + 2; ++p) os << ' ';
        }
      }
      if (markdown_) os << "|";
      os << "\n";
    };
    line(headers_);
    if (markdown_) {
      for (size_t c = 0; c < headers_.size(); ++c) os << "|---";
      os << "|\n";
    } else {
      std::vector<std::string> rules;
      for (size_t c = 0; c < headers_.size(); ++c) {
        rules.push_back(std::string(width[c], '-'));
      }
      line(rules);
    }
    for (const auto& row : rows_) line(row);
  }

 private:
  static const std::string kEmpty;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  bool markdown_;
};

const std::string TableWriter::kEmpty;

std::string Fixed(double v, int digits = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string Compact(double v) {
  std::ostringstream os;
  os << std::setprecision(9) << v;
  return os.str();
}

void Heading(std::ostream& os, bool markdown, const std::string& title) {
  if (markdown) {
    os << "## " << title << "\n\n";
  } else {
    os << title << "\n" << std::string(title.size(), '-') << "\n";
  }
}

}  // namespace

HistogramQuantileResult HistogramQuantileEx(
    const std::vector<double>& bounds, const std::vector<uint64_t>& buckets,
    double q) {
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return {0.0, false};
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    const double next = cum + static_cast<double>(buckets[b]);
    if (next >= target || b + 1 == buckets.size()) {
      if (b >= bounds.size()) {
        // +inf bucket: no finite upper edge to interpolate toward. The
        // value is a lower bound on the true quantile, not an estimate —
        // flag it so renderers don't silently underreport the tail.
        return {bounds.empty() ? 0.0 : bounds.back(), true};
      }
      const double lo = b == 0 ? std::min(0.0, bounds[0]) : bounds[b - 1];
      const double hi = bounds[b];
      if (buckets[b] == 0) return {hi, false};
      const double frac =
          (target - cum) / static_cast<double>(buckets[b]);
      return {lo + std::clamp(frac, 0.0, 1.0) * (hi - lo), false};
    }
    cum = next;
  }
  return {bounds.empty() ? 0.0 : bounds.back(), false};
}

double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& buckets, double q) {
  return HistogramQuantileEx(bounds, buckets, q).value;
}

bool RenderRunReport(const std::string& trace_json,
                     const std::string& metrics_jsonl,
                     const RunReportOptions& options, std::string* out,
                     std::string* error) {
  Json trace;
  std::map<std::string, SpanAgg> spans;
  if (!trace_json.empty()) {
    std::string perr;
    if (!JsonParser(trace_json).Parse(&trace, &perr)) {
      if (error != nullptr) *error = "trace: " + perr;
      return false;
    }
    spans = AggregateSpans(trace);
  }
  MetricsSeries series;
  if (!metrics_jsonl.empty() &&
      !ParseMetricsJsonl(metrics_jsonl, &series, error)) {
    return false;
  }

  const bool md = options.markdown;
  std::ostringstream os;
  if (md) {
    os << "# mde run report\n\n";
  } else {
    os << "=== mde run report ===\n\n";
  }

  // --- Run summary -------------------------------------------------------
  Heading(os, md, "Run summary");
  {
    TableWriter t({"what", "value"}, md);
    if (!spans.empty()) {
      uint64_t calls = 0;
      double total_self_us = 0.0;
      for (const auto& [name, a] : spans) {
        calls += a.calls;
        total_self_us += a.self_us;
      }
      t.AddRow({"trace spans", std::to_string(calls)});
      t.AddRow({"span self time", Fixed(total_self_us / 1000.0) + " ms"});
    }
    if (series.samples > 0) {
      t.AddRow({"metrics samples", std::to_string(series.samples)});
      t.AddRow({"metrics window",
                Fixed(series.t_last_ms - series.t_first_ms) + " ms"});
    }
    if (series.have_mem) {
      t.AddRow({"final RSS", Fixed(series.rss_kb / 1024.0, 1) + " MiB"});
      t.AddRow({"peak RSS", Fixed(series.peak_rss_kb / 1024.0, 1) + " MiB"});
    }
    if (t.empty()) t.AddRow({"(no inputs)", ""});
    t.Render(os);
    os << "\n";
  }

  // --- Top self-time spans ----------------------------------------------
  if (!spans.empty()) {
    Heading(os, md, "Top self-time spans");
    std::vector<std::pair<std::string, SpanAgg>> rows(spans.begin(),
                                                      spans.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.self_us > b.second.self_us;
    });
    double total_self = 0.0;
    for (const auto& [name, a] : rows) total_self += std::max(a.self_us, 0.0);
    TableWriter t({"span", "calls", "incl ms", "self ms", "self %"}, md);
    for (size_t i = 0; i < rows.size() && i < options.top_spans; ++i) {
      const auto& [name, a] = rows[i];
      const double pct =
          total_self > 0.0 ? 100.0 * std::max(a.self_us, 0.0) / total_self
                           : 0.0;
      t.AddRow({name, std::to_string(a.calls), Fixed(a.incl_us / 1000.0),
                Fixed(a.self_us / 1000.0), Fixed(pct, 1)});
    }
    t.Render(os);
    if (rows.size() > options.top_spans) {
      os << "(" << rows.size() - options.top_spans << " more spans)\n";
    }
    os << "\n";
  }

  // --- Counters ----------------------------------------------------------
  if (!series.counter_last.empty()) {
    Heading(os, md, "Counters");
    const double window_s =
        (series.t_last_ms - series.t_first_ms) / 1000.0;
    std::vector<std::pair<std::string, double>> rows(
        series.counter_last.begin(), series.counter_last.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    TableWriter t({"counter", "total", "rate/s"}, md);
    for (size_t i = 0; i < rows.size() && i < options.top_counters; ++i) {
      const auto& [name, total] = rows[i];
      const double delta = total - series.counter_first[name];
      t.AddRow({name, Compact(total),
                window_s > 0.0 ? Fixed(delta / window_s, 1) : "-"});
    }
    t.Render(os);
    if (rows.size() > options.top_counters) {
      os << "(" << rows.size() - options.top_counters << " more counters)\n";
    }
    os << "\n";
  }

  // --- Per-query attribution --------------------------------------------
  if (!series.queries.empty()) {
    Heading(os, md, "Per-query attribution");
    std::vector<std::pair<std::string, QueryAgg>> rows(series.queries.begin(),
                                                       series.queries.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second.cpu_ns != b.second.cpu_ns) {
        return a.second.cpu_ns > b.second.cpu_ns;
      }
      return a.first < b.first;
    });
    TableWriter t({"query", "tag", "cpu ms", "tasks", "rows in", "rows out",
                   "vg draws", "bundle MiB", "cache hits"},
                  md);
    for (const auto& [fp, q] : rows) {
      t.AddRow({fp, q.tag, Fixed(q.cpu_ns / 1e6), Compact(q.tasks),
                Compact(q.rows_in), Compact(q.rows_out), Compact(q.vg_draws),
                Fixed(q.bundle_bytes / (1024.0 * 1024.0), 2),
                Compact(q.cache_hits)});
    }
    t.Render(os);
    os << "\n";
  }

  // --- Histogram quantiles ----------------------------------------------
  if (!series.hists.empty()) {
    Heading(os, md, "Histogram quantiles (bucket interpolation)");
    TableWriter t({"histogram", "count", "mean", "p50", "p90", "p99"}, md);
    // Overflow-bucket quantiles are lower bounds, not estimates: render
    // them as ">= bound" rather than underreporting the tail.
    const auto quantile_cell = [](const HistFinal& h, double q) {
      const HistogramQuantileResult r =
          HistogramQuantileEx(h.bounds, h.buckets, q);
      return r.overflow ? ">= " + Compact(r.value) : Compact(r.value);
    };
    for (const auto& [name, h] : series.hists) {
      const double mean =
          h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
      t.AddRow({name, std::to_string(h.count), Compact(mean),
                quantile_cell(h, 0.50), quantile_cell(h, 0.90),
                quantile_cell(h, 0.99)});
    }
    t.Render(os);
    os << "\n";
  }

  // --- Memory ------------------------------------------------------------
  {
    TableWriter t({"pool / process", "bytes"}, md);
    for (const auto& [name, v] : series.gauges) {
      static const std::string kLive = ".live_bytes";
      if (name.rfind("obs.mem.", 0) == 0 && name.size() > kLive.size() &&
          name.compare(name.size() - kLive.size(), kLive.size(), kLive) ==
              0) {
        t.AddRow({name, Compact(v)});
      }
    }
    if (series.have_mem) {
      t.AddRow({"process RSS (kB)", Compact(series.rss_kb)});
      t.AddRow({"process peak RSS (kB)", Compact(series.peak_rss_kb)});
    }
    if (!t.empty()) {
      Heading(os, md, "Memory");
      t.Render(os);
      os << "\n";
    }
  }

  // --- Health verdicts ---------------------------------------------------
  {
    TableWriter t({"monitor", "verdict / value"}, md);
    for (const auto& [name, v] : series.gauges) {
      if (name.rfind("obs.health.", 0) == 0) {
        const auto verdict = static_cast<ConvergenceMonitor::Verdict>(
            static_cast<int>(v));
        t.AddRow({name.substr(11),
                  ConvergenceMonitor::VerdictName(verdict)});
      }
    }
    // Key estimator gauges the monitors publish alongside verdicts.
    for (const char* key :
         {"smc.ess", "mcdb.ci_halfwidth", "simsql.mc.ci_halfwidth",
          "simsql.mc.q50", "simsql.mc.q95", "dsgd.epoch_loss",
          "dsgd.residual"}) {
      auto it = series.gauges.find(key);
      if (it != series.gauges.end()) {
        t.AddRow({key, Compact(it->second)});
      }
    }
    if (!t.empty()) {
      Heading(os, md, "Statistical health (final)");
      t.Render(os);
      os << "\n";
    }
  }

  *out = os.str();
  return true;
}

bool RenderFlightReport(const std::string& flight_json,
                        const RunReportOptions& options, std::string* out,
                        std::string* error) {
  Json doc;
  std::string perr;
  if (!JsonParser(flight_json).Parse(&doc, &perr)) {
    if (error != nullptr) *error = "flight: " + perr;
    return false;
  }
  const Json* flight = doc.Get("flight");
  if (flight == nullptr || flight->type != Json::Type::kObject) {
    if (error != nullptr) *error = "flight: missing \"flight\" object";
    return false;
  }

  const bool md = options.markdown;
  std::ostringstream os;
  if (md) {
    os << "# mde flight recorder\n\n";
  } else {
    os << "=== mde flight recorder ===\n\n";
  }

  // --- Dump header -------------------------------------------------------
  Heading(os, md, "Dump");
  {
    TableWriter t({"what", "value"}, md);
    if (const Json* r = flight->Get("reason")) t.AddRow({"reason", r->str});
    if (const Json* v = flight->Get("version")) {
      t.AddRow({"version", Compact(v->NumOr(0.0))});
    }
    if (const Json* ts = flight->Get("ts_ns")) {
      t.AddRow({"ts_ns", Compact(ts->NumOr(0.0))});
    }
    if (t.empty()) t.AddRow({"(empty header)", ""});
    t.Render(os);
    os << "\n";
  }

  // --- Live query contexts ----------------------------------------------
  if (const Json* contexts = flight->Get("contexts");
      contexts != nullptr && !contexts->arr.empty()) {
    Heading(os, md, "Live query contexts");
    TableWriter t({"thread", "trace_id", "query", "tag"}, md);
    for (const Json& c : contexts->arr) {
      const auto cell = [&c](const char* key) {
        const Json* v = c.Get(key);
        if (v == nullptr) return std::string();
        return v->type == Json::Type::kString ? v->str : Compact(v->num);
      };
      t.AddRow({cell("thread"), cell("trace_id"), cell("fingerprint"),
                cell("tag")});
    }
    t.Render(os);
    os << "\n";
  }

  // --- Recent spans ------------------------------------------------------
  if (const Json* spans = flight->Get("spans");
      spans != nullptr && !spans->arr.empty()) {
    Heading(os, md, "Recent spans (newest first)");
    struct FlightSpan {
      std::string thread, name;
      double ts_ns = 0.0, trace_id = 0.0, span_id = 0.0, parent = 0.0;
    };
    std::vector<FlightSpan> rows;
    rows.reserve(spans->arr.size());
    for (const Json& sp : spans->arr) {
      FlightSpan fs;
      if (const Json* v = sp.Get("thread")) fs.thread = v->str;
      if (const Json* v = sp.Get("name")) fs.name = v->str;
      if (const Json* v = sp.Get("ts_ns")) fs.ts_ns = v->NumOr(0.0);
      if (const Json* v = sp.Get("trace_id")) fs.trace_id = v->NumOr(0.0);
      if (const Json* v = sp.Get("span_id")) fs.span_id = v->NumOr(0.0);
      if (const Json* v = sp.Get("parent_span_id")) fs.parent = v->NumOr(0.0);
      rows.push_back(std::move(fs));
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const FlightSpan& a, const FlightSpan& b) {
                       return a.ts_ns > b.ts_ns;
                     });
    TableWriter t({"thread", "span", "ts_ns", "trace", "span id", "parent"},
                  md);
    const size_t limit = std::max<size_t>(options.top_spans, 1) * 4;
    for (size_t i = 0; i < rows.size() && i < limit; ++i) {
      const FlightSpan& fs = rows[i];
      t.AddRow({fs.thread, fs.name, Compact(fs.ts_ns), Compact(fs.trace_id),
                Compact(fs.span_id), Compact(fs.parent)});
    }
    t.Render(os);
    if (rows.size() > limit) {
      os << "(" << rows.size() - limit << " older spans)\n";
    }
    os << "\n";
  }

  // --- Counter/gauge snapshot (absent in signal-path dumps) --------------
  if (const Json* counters = flight->Get("counters");
      counters != nullptr && !counters->obj.empty()) {
    Heading(os, md, "Counters at dump");
    std::vector<std::pair<std::string, double>> rows;
    for (const auto& [name, v] : counters->obj) {
      rows.emplace_back(name, v.NumOr(0.0));
    }
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    TableWriter t({"counter", "total"}, md);
    for (size_t i = 0; i < rows.size() && i < options.top_counters; ++i) {
      t.AddRow({rows[i].first, Compact(rows[i].second)});
    }
    t.Render(os);
    if (rows.size() > options.top_counters) {
      os << "(" << rows.size() - options.top_counters << " more counters)\n";
    }
    os << "\n";
  }
  if (const Json* gauges = flight->Get("gauges");
      gauges != nullptr && !gauges->obj.empty()) {
    Heading(os, md, "Gauges at dump");
    TableWriter t({"gauge", "value"}, md);
    for (const auto& [name, v] : gauges->obj) {
      t.AddRow({name, Compact(v.NumOr(0.0))});
    }
    t.Render(os);
    os << "\n";
  }

  *out = os.str();
  return true;
}

bool RenderProfileReport(const std::string& profile_text,
                         const std::string& metrics_jsonl,
                         const RunReportOptions& options, std::string* out,
                         std::string* error) {
  const bool md = options.markdown;

  // Parse the folded format: "# mde_profile hz=H samples=N window_s=S"
  // then one "frame;frame;...;frame count" line per distinct stack.
  int hz = 0;
  double window_s = 0.0;
  bool saw_header = false;
  struct Stack {
    std::vector<std::string> frames;  // root first
    uint64_t count = 0;
  };
  std::vector<Stack> stacks;
  size_t line_no = 0;
  size_t begin = 0;
  while (begin < profile_text.size()) {
    size_t end = profile_text.find('\n', begin);
    if (end == std::string::npos) end = profile_text.size();
    std::string line = profile_text.substr(begin, end - begin);
    begin = end + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (line[0] == '#') {
      if (line.rfind("# mde_profile ", 0) == 0) {
        saw_header = true;
        std::istringstream kv(line.substr(14));
        std::string token;
        while (kv >> token) {
          if (token.rfind("hz=", 0) == 0) {
            hz = std::atoi(token.c_str() + 3);
          } else if (token.rfind("window_s=", 0) == 0) {
            window_s = std::atof(token.c_str() + 9);
          }
        }
      }
      continue;
    }
    const size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp + 1 >= line.size()) {
      if (error != nullptr) {
        *error = "profile line " + std::to_string(line_no) +
                 ": expected 'stack count'";
      }
      return false;
    }
    char* num_end = nullptr;
    const uint64_t count =
        std::strtoull(line.c_str() + sp + 1, &num_end, 10);
    if (num_end == nullptr || *num_end != '\0') {
      if (error != nullptr) {
        *error = "profile line " + std::to_string(line_no) +
                 ": trailing count is not a number";
      }
      return false;
    }
    Stack s;
    s.count = count;
    size_t fb = 0;
    const std::string stack_str = line.substr(0, sp);
    while (fb <= stack_str.size()) {
      size_t fe = stack_str.find(';', fb);
      if (fe == std::string::npos) fe = stack_str.size();
      if (fe > fb) s.frames.push_back(stack_str.substr(fb, fe - fb));
      fb = fe + 1;
    }
    if (!s.frames.empty()) stacks.push_back(std::move(s));
  }
  if (!saw_header && stacks.empty()) {
    if (error != nullptr) *error = "not a folded profile (no header, no stacks)";
    return false;
  }

  uint64_t total = 0;
  for (const Stack& s : stacks) total += s.count;

  // Leaf-frame (self) and anywhere-on-stack (inclusive) sample counts per
  // function; the synthetic "query:..." roots stay out of this table.
  struct FuncAgg {
    uint64_t self = 0;
    uint64_t incl = 0;
  };
  std::map<std::string, FuncAgg> funcs;
  std::map<std::string, uint64_t> query_counts;
  for (const Stack& s : stacks) {
    size_t first = 0;
    if (s.frames[0].rfind("query:", 0) == 0) {
      query_counts[s.frames[0].substr(6)] += s.count;
      first = 1;
    }
    if (first >= s.frames.size()) continue;
    std::set<std::string> seen;
    for (size_t f = first; f < s.frames.size(); ++f) {
      if (seen.insert(s.frames[f]).second) funcs[s.frames[f]].incl += s.count;
    }
    funcs[s.frames.back()].self += s.count;
  }

  std::ostringstream os;
  Heading(os, md, "CPU profile");
  {
    TableWriter t({"what", "value"}, md);
    t.AddRow({"samples", std::to_string(total)});
    if (hz > 0) t.AddRow({"rate (hz)", std::to_string(hz)});
    if (window_s > 0.0) t.AddRow({"window (s)", Fixed(window_s)});
    if (hz > 0) {
      t.AddRow({"sampled cpu (s)",
                Fixed(static_cast<double>(total) / static_cast<double>(hz))});
    }
    t.Render(os);
    os << "\n";
  }

  if (!funcs.empty()) {
    Heading(os, md, "Top functions (self samples)");
    std::vector<std::pair<std::string, FuncAgg>> rows(funcs.begin(),
                                                      funcs.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second.self != b.second.self) return a.second.self > b.second.self;
      return a.first < b.first;
    });
    TableWriter t({"function", "self", "self %", "incl"}, md);
    for (size_t i = 0; i < rows.size() && i < options.top_spans; ++i) {
      const double pct =
          total > 0
              ? 100.0 * static_cast<double>(rows[i].second.self) / total
              : 0.0;
      t.AddRow({rows[i].first, std::to_string(rows[i].second.self),
                Fixed(pct, 1), std::to_string(rows[i].second.incl)});
    }
    t.Render(os);
    if (rows.size() > options.top_spans) {
      os << "(" << rows.size() - options.top_spans << " more functions)\n";
    }
    os << "\n";
  }

  if (!query_counts.empty()) {
    // Reconciliation column: the attribution table's own cpu-ns totals from
    // the Sampler JSONL, when provided. Sample-estimated cpu vs attributed
    // cpu should agree within sampling error (the 10% acceptance gate).
    MetricsSeries series;
    if (!metrics_jsonl.empty() &&
        !ParseMetricsJsonl(metrics_jsonl, &series, error)) {
      return false;
    }
    Heading(os, md, "Per-query samples");
    std::vector<std::pair<std::string, uint64_t>> rows(query_counts.begin(),
                                                       query_counts.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    const bool have_attr = !series.queries.empty();
    std::vector<std::string> headers = {"query", "samples", "est cpu s"};
    if (have_attr) {
      headers.push_back("attr cpu s");
      headers.push_back("est/attr");
    }
    TableWriter t(std::move(headers), md);
    for (const auto& [query, count] : rows) {
      std::vector<std::string> row;
      row.push_back(query == "-" ? "(no query)" : query);
      row.push_back(std::to_string(count));
      const double est_s =
          hz > 0 ? static_cast<double>(count) / static_cast<double>(hz)
                 : 0.0;
      row.push_back(hz > 0 ? Fixed(est_s) : "?");
      if (have_attr) {
        auto it = series.queries.find(query);
        if (it != series.queries.end() && it->second.cpu_ns > 0.0) {
          const double attr_s = it->second.cpu_ns * 1e-9;
          row.push_back(Fixed(attr_s));
          row.push_back(hz > 0 ? Fixed(est_s / attr_s, 2) : "?");
        } else {
          row.push_back("-");
          row.push_back("-");
        }
      }
      t.AddRow(std::move(row));
    }
    t.Render(os);
    os << "\n";
  }

  *out = os.str();
  return true;
}

}  // namespace mde::obs
