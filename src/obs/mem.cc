#include "obs/mem.h"

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace mde::obs {

namespace {

#ifndef MDE_OBS_DISABLED
std::string PoolCounterName(const char* pool, const char* leaf) {
  std::string name = "obs.mem.";
  name += pool;
  name += '.';
  name += leaf;
  return name;
}
#endif

}  // namespace

void RecordAlloc(const char* pool, uint64_t bytes) {
#ifndef MDE_OBS_DISABLED
  if (bytes == 0) return;
  Registry::Global().counter(PoolCounterName(pool, "alloc_bytes"))->Add(bytes);
#else
  (void)pool;
  (void)bytes;
#endif
}

void RecordFree(const char* pool, uint64_t bytes) {
#ifndef MDE_OBS_DISABLED
  if (bytes == 0) return;
  Registry::Global().counter(PoolCounterName(pool, "freed_bytes"))->Add(bytes);
#else
  (void)pool;
  (void)bytes;
#endif
}

MemPool::MemPool(const char* pool) {
#ifndef MDE_OBS_DISABLED
  Registry& r = Registry::Global();
  alloc_ = r.counter(PoolCounterName(pool, "alloc_bytes"));
  freed_ = r.counter(PoolCounterName(pool, "freed_bytes"));
#else
  (void)pool;
#endif
}

void MemPool::RecordAlloc(uint64_t bytes) {
#ifndef MDE_OBS_DISABLED
  if (bytes != 0) alloc_->Add(bytes);
#else
  (void)bytes;
#endif
}

void MemPool::RecordFree(uint64_t bytes) {
#ifndef MDE_OBS_DISABLED
  if (bytes != 0) freed_->Add(bytes);
#else
  (void)bytes;
#endif
}

uint64_t LiveBytes(const std::string& pool) {
#ifndef MDE_OBS_DISABLED
  Registry& r = Registry::Global();
  const uint64_t alloc =
      r.counter("obs.mem." + pool + ".alloc_bytes")->Value();
  const uint64_t freed =
      r.counter("obs.mem." + pool + ".freed_bytes")->Value();
  return alloc > freed ? alloc - freed : 0;
#else
  (void)pool;
  return 0;
#endif
}

ProcessMemory SampleProcessMemory() {
  ProcessMemory mem;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return mem;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long long kb = 0;
    if (std::sscanf(line, "VmRSS: %lld kB", &kb) == 1) {
      mem.rss_kb = kb;
      mem.ok = true;
    } else if (std::sscanf(line, "VmHWM: %lld kB", &kb) == 1) {
      mem.peak_rss_kb = kb;
      mem.ok = true;
    }
  }
  std::fclose(f);
  return mem;
}

void PublishProcessMemoryGauges() {
#ifndef MDE_OBS_DISABLED
  const ProcessMemory mem = SampleProcessMemory();
  if (!mem.ok) return;
  Registry& r = Registry::Global();
  r.gauge("obs.mem.rss_kb")->Set(static_cast<double>(mem.rss_kb));
  r.gauge("obs.mem.peak_rss_kb")->Set(static_cast<double>(mem.peak_rss_kb));
#endif
}

}  // namespace mde::obs
