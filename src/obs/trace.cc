#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/context.h"
#include "obs/flight.h"

namespace mde::obs {

namespace {

thread_local uint32_t tls_span_depth = 0;
thread_local bool tls_thread_named = false;

/// Minimal JSON string escape (span names are identifiers in practice, but
/// the exporter must never emit malformed JSON).
void EscapeJson(const char* s, std::ostream& os) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

}  // namespace

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-thread event ring. Owned by the Tracer (threads may exit before the
/// trace is exported); the owning thread holds only a raw pointer. The ring
/// drops the OLDEST events on overflow, so the retained window is the tail
/// of the run. `mu` serializes the owner's appends with Collect/Clear —
/// uncontended in steady state, and spans are operator-granularity, so the
/// lock cost is noise.
struct Tracer::ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> ring;  // allocated lazily on first event
  size_t head = 0;               // index of the oldest retained event
  size_t count = 0;              // retained events (<= kRingCapacity)
  uint32_t tid = 0;
  std::string name;  // lane name for Chrome metadata ("" = unnamed)
};

Tracer& Tracer::Global() {
  static Tracer* t = new Tracer();  // leaked: outlives static destructors
  return *t;
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  thread_local ThreadBuffer* buf = nullptr;
  thread_local const Tracer* owner = nullptr;
  if (buf == nullptr || owner != this) {
    auto owned = std::make_unique<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    owned->tid = static_cast<uint32_t>(buffers_.size());
    buf = owned.get();
    owner = this;
    buffers_.push_back(std::move(owned));
  }
  return buf;
}

void Tracer::Record(const char* name, uint64_t ts_ns, uint64_t dur_ns,
                    uint32_t depth, uint64_t trace_id, uint64_t span_id,
                    uint64_t parent_span_id) {
  ThreadBuffer* buf = BufferForThisThread();
  recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(buf->mu);
  if (buf->ring.empty()) buf->ring.resize(kRingCapacity);
  TraceEvent& e = buf->ring[(buf->head + buf->count) % kRingCapacity];
  e.name = name;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.trace_id = trace_id;
  e.span_id = span_id;
  e.parent_span_id = parent_span_id;
  e.tid = buf->tid;
  e.depth = depth;
  if (buf->count < kRingCapacity) {
    ++buf->count;
  } else {
    buf->head = (buf->head + 1) % kRingCapacity;  // evict the oldest
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Tracer::SetCurrentThreadName(const std::string& name) {
  ThreadBuffer* buf = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->name = name;
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& b : buffers_) {
      std::lock_guard<std::mutex> bl(b->mu);
      out.reserve(out.size() + b->count);
      for (size_t i = 0; i < b->count; ++i) {
        out.push_back(b->ring[(b->head + i) % kRingCapacity]);
      }
    }
  }
  // Start-time order; ties broken shallow-first so a parent precedes a
  // child it opened on the same tick.
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.depth < b.depth;
            });
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->head = 0;
    b->count = 0;
  }
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  const std::vector<TraceEvent> events = Collect();
  // Thread lane names for "ph":"M" metadata (every registered buffer, even
  // ones with no retained events — a named idle worker still gets a lane).
  std::vector<std::pair<uint32_t, std::string>> lanes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lanes.reserve(buffers_.size());
    for (const auto& b : buffers_) {
      std::lock_guard<std::mutex> bl(b->mu);
      lanes.emplace_back(b->tid, b->name);
    }
  }
  uint64_t t0 = events.empty() ? 0 : events.front().ts_ns;
  os << "{\"traceEvents\":[";
  // Metadata first: process name, then one thread_name record per lane so
  // Perfetto labels rows "worker-3" instead of bare tids.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"mde\"}}";
  for (const auto& [tid, name] : lanes) {
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":\"";
    if (name.empty()) {
      os << "thread-" << tid;
    } else {
      EscapeJson(name.c_str(), os);
    }
    os << "\"}}";
  }
  // Complete ("X") events, ids in args when the span belongs to a query or
  // causal chain.
  for (const TraceEvent& e : events) {
    os << ",{\"name\":\"";
    EscapeJson(e.name, os);
    os << "\",\"cat\":\"mde\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.tid
       << ",\"ts\":" << static_cast<double>(e.ts_ns - t0) / 1000.0
       << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0;
    if (e.span_id != 0) {
      os << ",\"args\":{\"trace_id\":" << e.trace_id
         << ",\"span_id\":" << e.span_id
         << ",\"parent_span_id\":" << e.parent_span_id << "}";
    }
    os << "}";
  }
  // Flow events: for every parent->child edge that crosses threads (a
  // stolen or help-run task), emit a "s"/"f" pair keyed by the child's
  // span id so the viewer draws an arrow from the parent slice to the
  // child slice. The start point must land inside the parent slice, so
  // clamp the child's open time into the parent's interval.
  std::map<uint64_t, const TraceEvent*> by_span;
  for (const TraceEvent& e : events) {
    if (e.span_id != 0) by_span[e.span_id] = &e;
  }
  for (const TraceEvent& e : events) {
    if (e.parent_span_id == 0) continue;
    auto it = by_span.find(e.parent_span_id);
    if (it == by_span.end()) continue;
    const TraceEvent& p = *it->second;
    if (p.tid == e.tid) continue;  // same-thread nesting needs no arrow
    const uint64_t s_ts =
        std::min(std::max(e.ts_ns, p.ts_ns), p.ts_ns + p.dur_ns);
    os << ",{\"name\":\"ctx\",\"cat\":\"mde\",\"ph\":\"s\",\"id\":"
       << e.span_id << ",\"pid\":0,\"tid\":" << p.tid
       << ",\"ts\":" << static_cast<double>(s_ts - t0) / 1000.0 << "}";
    os << ",{\"name\":\"ctx\",\"cat\":\"mde\",\"ph\":\"f\",\"bp\":\"e\","
          "\"id\":"
       << e.span_id << ",\"pid\":0,\"tid\":" << e.tid
       << ",\"ts\":" << static_cast<double>(e.ts_ns - t0) / 1000.0 << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

std::string Tracer::ChromeTraceJson() const {
  std::ostringstream os;
  WriteChromeTrace(os);
  return os.str();
}

std::string Tracer::FlameSummary() const {
  const std::vector<TraceEvent> events = Collect();
  struct Agg {
    uint64_t calls = 0;
    uint64_t incl_ns = 0;
    int64_t self_ns = 0;
  };
  std::map<std::string, Agg> byname;
  // Same-thread stack replay over start-ordered events: when event e opens
  // inside the interval at the top of its thread's stack, e's duration is
  // child time of that interval — subtract it from the parent's self time.
  struct Open {
    uint64_t end_ns;
    std::string name;
  };
  std::map<uint32_t, std::vector<Open>> stacks;
  for (const TraceEvent& e : events) {
    Agg& a = byname[e.name];
    ++a.calls;
    a.incl_ns += e.dur_ns;
    a.self_ns += static_cast<int64_t>(e.dur_ns);
    auto& stack = stacks[e.tid];
    while (!stack.empty() && stack.back().end_ns <= e.ts_ns) stack.pop_back();
    if (!stack.empty()) {
      byname[stack.back().name].self_ns -= static_cast<int64_t>(e.dur_ns);
    }
    stack.push_back({e.ts_ns + e.dur_ns, e.name});
  }
  std::vector<std::pair<std::string, Agg>> rows(byname.begin(), byname.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.self_ns > b.second.self_ns;
  });
  std::ostringstream os;
  os << "span                              calls    incl_ms    self_ms\n";
  for (const auto& [name, a] : rows) {
    os << name;
    for (size_t p = name.size(); p < 32; ++p) os << ' ';
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %8llu %10.3f %10.3f\n",
                  static_cast<unsigned long long>(a.calls),
                  static_cast<double>(a.incl_ns) / 1e6,
                  static_cast<double>(a.self_ns) / 1e6);
    os << buf;
  }
  return os.str();
}

SpanGuard::SpanGuard(const char* name) : name_(name) {
  Tracer& t = Tracer::Global();
  Context& ctx = internal::MutableCurrentContext();
  traced_ = t.enabled();
  // Fast path (no tracer, no query): one relaxed load + one TLS read.
  if (!traced_ && !ctx.active()) return;
  active_ = true;
  depth_ = tls_span_depth++;
  span_id_ = internal::NextId();
  trace_id_ = ctx.trace_id;
  parent_span_id_ = ctx.span_id;
  ctx.span_id = span_id_;  // children opened under us parent to us
  if (ctx.stats != nullptr) {
    ctx.stats->spans.fetch_add(1, std::memory_order_relaxed);
  }
  start_ns_ = NowNanos();
  // Flight recorder sees every span OPEN (crash forensics wants the spans
  // that never closed), for traced and query-scoped work alike.
  FlightRecorder::Global().RecordSpanOpen(name, start_ns_, trace_id_,
                                          span_id_, parent_span_id_);
}

SpanGuard::~SpanGuard() {
  if (!active_) return;
  --tls_span_depth;
  internal::MutableCurrentContext().span_id = parent_span_id_;
  if (traced_) {
    Tracer::Global().Record(name_, start_ns_, NowNanos() - start_ns_, depth_,
                            trace_id_, span_id_, parent_span_id_);
  }
}

void SetCurrentThreadName(const std::string& name) {
  tls_thread_named = true;
  Tracer::Global().SetCurrentThreadName(name);
  FlightRecorder::Global().SetCurrentThreadName(name);
}

void EnsureCurrentThreadNamed(const char* fallback) {
  if (tls_thread_named) return;
  SetCurrentThreadName(fallback);
}

}  // namespace mde::obs
