#include "obs/context.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace mde::obs {

namespace {

thread_local Context tls_context;
/// Wall nanoseconds of timed scopes (QueryScope / ContextGuard) that closed
/// on this thread inside the currently-open timed scope. Self time = own
/// wall minus this ledger, so a driver help-running its own query's tasks
/// never counts the same nanosecond twice.
thread_local uint64_t tls_child_ns = 0;

std::atomic<uint64_t> g_next_id{1};

bool AttrEnabledDefault() {
  const char* env = std::getenv("MDE_OBS_ATTR");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "OFF") == 0);
}

std::atomic<bool> g_attr_enabled{AttrEnabledDefault()};

}  // namespace

const Context& CurrentContext() { return tls_context; }

bool AttributionEnabled() {
  return g_attr_enabled.load(std::memory_order_relaxed);
}

void SetAttributionEnabled(bool on) {
  g_attr_enabled.store(on, std::memory_order_relaxed);
}

namespace internal {

Context& MutableCurrentContext() { return tls_context; }

uint64_t NextId() {
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t ExchangeChildNs(uint64_t v) {
  const uint64_t prev = tls_child_ns;
  tls_child_ns = v;
  return prev;
}

void AddChildNs(uint64_t ns) { tls_child_ns += ns; }

Context Install(const Context& ctx) {
  Context prev = tls_context;
  tls_context = ctx;
  // Mirror into the flight recorder's per-thread slot so a crash dump can
  // say which query every thread was serving.
  FlightRecorder::Global().NoteContext(ctx.trace_id, ctx.fingerprint,
                                       ctx.tag);
  // Same mirror for the sampling profiler: its SIGPROF handler reads only
  // the slot's own atomics, never this TLS.
  Profiler::Global().NoteContext(ctx.fingerprint, ctx.tag);
  return prev;
}

}  // namespace internal

uint64_t FingerprintString(const std::string& s) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h == 0 ? 1 : h;
}

uint64_t FingerprintMix(uint64_t fp, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    fp ^= (v >> shift) & 0xffu;
    fp *= 1099511628211ull;
  }
  return fp == 0 ? 1 : fp;
}

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

ContextGuard::ContextGuard(const Context& ctx) {
  prev_ = internal::Install(ctx);
  if (ctx.stats != nullptr) {
    timed_ = true;
    saved_child_ns_ = internal::ExchangeChildNs(0);
    start_ns_ = NowNanos();
  }
}

ContextGuard::~ContextGuard() {
  if (timed_) {
    const uint64_t wall = NowNanos() - start_ns_;
    const uint64_t child = internal::ExchangeChildNs(saved_child_ns_);
    const uint64_t self = wall > child ? wall - child : 0;
    QueryStats* stats = tls_context.stats;  // the context we installed
    if (stats != nullptr) {
      stats->cpu_ns.fetch_add(self, std::memory_order_relaxed);
      stats->tasks.fetch_add(1, std::memory_order_relaxed);
    }
    // Global twin of the per-query cpu-ns: the reconciliation contract is
    // sum(attribution cpu_ns) == attr.cpu_ns exactly (modulo evictions).
    MDE_OBS_COUNT("attr.cpu_ns", self);
    internal::AddChildNs(wall);  // outer ledger was just restored
  }
  internal::Install(prev_);
}

QueryScope::QueryScope(const char* tag, uint64_t fingerprint) {
  Context& cur = internal::MutableCurrentContext();
  if (cur.active() || !AttributionEnabled()) {
    // An outer query is already running (e.g. a chain step driving a table
    // query): everything attributes to it. Or attribution is switched off,
    // in which case no context is installed and the query runs untracked.
    adopted_ = true;
    return;
  }
  EnsureCurrentThreadNamed("driver");
  Profiler::Global().RegisterCurrentThread();
  Context ctx;
  ctx.trace_id = internal::NextId();
  // Inherit the innermost open span so the query's spans parent correctly
  // under any enclosing (non-query) span on this thread.
  ctx.span_id = cur.span_id;
  ctx.fingerprint = fingerprint;
  ctx.tag = tag;
  ctx.stats = AttributionTable::Global().Acquire(fingerprint, tag);
  prev_ = internal::Install(ctx);
  saved_child_ns_ = internal::ExchangeChildNs(0);
  start_ns_ = NowNanos();
  MDE_OBS_COUNT("attr.queries", 1);
}

QueryScope::~QueryScope() {
  if (adopted_) return;
  const uint64_t wall = NowNanos() - start_ns_;
  const uint64_t child = internal::ExchangeChildNs(saved_child_ns_);
  const uint64_t self = wall > child ? wall - child : 0;
  QueryStats* stats = internal::MutableCurrentContext().stats;
  if (stats != nullptr) {
    stats->cpu_ns.fetch_add(self, std::memory_order_relaxed);
  }
  MDE_OBS_COUNT("attr.cpu_ns", self);
  internal::AddChildNs(wall);
  internal::Install(prev_);
}

AttributionTable& AttributionTable::Global() {
  static AttributionTable* t = new AttributionTable();  // leaked: outlives
  return *t;                                            // static dtors
}

QueryStats* AttributionTable::Acquire(uint64_t fingerprint, const char* tag) {
  std::lock_guard<std::mutex> lock(mu_);
  ++acquire_epoch_;
  auto it = by_fp_.find(fingerprint);
  if (it != by_fp_.end()) {
    it->second->last_acquire = acquire_epoch_;
    return &it->second->stats;
  }
  Entry* e = nullptr;
  if (!free_slots_.empty()) {
    // Unkeyed slot left by Reset: reuse before allocating or evicting.
    e = free_slots_.back();
    free_slots_.pop_back();
  } else if (slots_.size() < kMaxEntries) {
    slots_.push_back(std::make_unique<Entry>());
    e = slots_.back().get();
  } else {
    // Full: evict the least-recently-acquired fingerprint and RECYCLE its
    // slot. The QueryStats address stays valid forever, so a query still
    // holding the evicted slot keeps writing safely (its additions now land
    // on the new fingerprint — bounded misattribution, never unbounded
    // memory).
    auto victim = by_fp_.begin();
    for (auto cand = by_fp_.begin(); cand != by_fp_.end(); ++cand) {
      if (cand->second->last_acquire < victim->second->last_acquire) {
        victim = cand;
      }
    }
    e = victim->second;
    by_fp_.erase(victim);
    ++evictions_;
    MDE_OBS_COUNT("attr.evictions", 1);
    e->stats.cpu_ns.store(0, std::memory_order_relaxed);
    e->stats.tasks.store(0, std::memory_order_relaxed);
    e->stats.spans.store(0, std::memory_order_relaxed);
    e->stats.rows_in.store(0, std::memory_order_relaxed);
    e->stats.rows_out.store(0, std::memory_order_relaxed);
    e->stats.vg_draws.store(0, std::memory_order_relaxed);
    e->stats.bundle_bytes.store(0, std::memory_order_relaxed);
    e->stats.cache_hits.store(0, std::memory_order_relaxed);
  }
  e->fingerprint = fingerprint;
  e->tag = tag != nullptr ? tag : "";
  e->last_acquire = acquire_epoch_;
  by_fp_[fingerprint] = e;
  return &e->stats;
}

std::vector<AttributionTable::Row> AttributionTable::Snapshot() const {
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows.reserve(by_fp_.size());
    for (const auto& [fp, e] : by_fp_) {
      Row r;
      r.fingerprint = fp;
      r.tag = e->tag;
      r.cpu_ns = e->stats.cpu_ns.load(std::memory_order_relaxed);
      r.tasks = e->stats.tasks.load(std::memory_order_relaxed);
      r.spans = e->stats.spans.load(std::memory_order_relaxed);
      r.rows_in = e->stats.rows_in.load(std::memory_order_relaxed);
      r.rows_out = e->stats.rows_out.load(std::memory_order_relaxed);
      r.vg_draws = e->stats.vg_draws.load(std::memory_order_relaxed);
      r.bundle_bytes = e->stats.bundle_bytes.load(std::memory_order_relaxed);
      r.cache_hits = e->stats.cache_hits.load(std::memory_order_relaxed);
      rows.push_back(std::move(r));
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.cpu_ns != b.cpu_ns) return a.cpu_ns > b.cpu_ns;
    return a.fingerprint < b.fingerprint;
  });
  return rows;
}

size_t AttributionTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_fp_.size();
}

uint64_t AttributionTable::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void AttributionTable::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  by_fp_.clear();
  free_slots_.clear();
  for (auto& slot : slots_) {
    free_slots_.push_back(slot.get());
  }
  for (auto& slot : slots_) {
    slot->fingerprint = 0;
    slot->tag.clear();
    slot->last_acquire = 0;
    slot->stats.cpu_ns.store(0, std::memory_order_relaxed);
    slot->stats.tasks.store(0, std::memory_order_relaxed);
    slot->stats.spans.store(0, std::memory_order_relaxed);
    slot->stats.rows_in.store(0, std::memory_order_relaxed);
    slot->stats.rows_out.store(0, std::memory_order_relaxed);
    slot->stats.vg_draws.store(0, std::memory_order_relaxed);
    slot->stats.bundle_bytes.store(0, std::memory_order_relaxed);
    slot->stats.cache_hits.store(0, std::memory_order_relaxed);
  }
  acquire_epoch_ = 0;
  evictions_ = 0;
}

}  // namespace mde::obs
