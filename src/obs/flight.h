#ifndef MDE_OBS_FLIGHT_H_
#define MDE_OBS_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

/// Crash flight recorder: an always-on, lock-free ring of recent span opens
/// plus each thread's active query context, dumped to a JSON artifact when
/// something goes wrong — from the `ckpt::FaultInjector` fire path, from a
/// fatal-signal handler, or on demand. The black-box principle: by the time
/// a crash happens it is too late to turn tracing on, so the recorder keeps
/// the last `kSpanRingSize` span opens per thread at all times and a crash
/// costs only the dump.
///
/// Write path: each recording thread owns one fixed slot (acquired on first
/// use, returned to a free list at thread exit) holding relaxed atomics —
/// no locks, no allocation, safe from any context including inside a signal
/// handler's victim thread. Span names must be string literals.
///
/// Read path: `DumpToFile` (normal code) snapshots slots + the metrics
/// registry and writes tmp+rename atomically; `DumpFromSignal` uses only
/// async-signal-safe calls (snprintf into a stack buffer + write(2) to a
/// path pre-resolved at handler-install time) and skips the mutex-guarded
/// metrics registry. Either way the artifact is one JSON document
/// `{"flight":{...}}` readable by `mde_report --flight`.
///
/// Field tearing: a reader can observe a half-updated span record (each
/// field is individually atomic but the record is not). Post-mortem
/// tolerance, not linearizability, is the contract — at worst one record
/// per thread mixes two spans.
namespace mde::obs {

class FlightRecorder {
 public:
  static FlightRecorder& Global();

  /// Maximum concurrently-recording threads; later threads are silently
  /// not recorded (slots are recycled on thread exit, so only a process
  /// with > kMaxThreads LIVE recording threads ever hits this).
  static constexpr size_t kMaxThreads = 256;
  /// Retained span opens per thread (newest win).
  static constexpr size_t kSpanRingSize = 128;

  /// Appends a span-open record to the calling thread's ring. `name` must
  /// be a string literal.
  void RecordSpanOpen(const char* name, uint64_t ts_ns, uint64_t trace_id,
                      uint64_t span_id, uint64_t parent_span_id);

  /// Publishes the calling thread's active query context (zero trace_id
  /// clears it). `tag` must be a string literal or interned.
  void NoteContext(uint64_t trace_id, uint64_t fingerprint, const char* tag);

  /// Names the calling thread in dump output. Copies (interns) `name`.
  void SetCurrentThreadName(const std::string& name);

  /// Renders the full live artifact `{"flight":{...}}` (contexts + spans +
  /// metrics snapshot) as one JSON document — exactly what DumpToFile
  /// writes; /flightz serves it without crashing anything.
  std::string RenderJson(const std::string& reason) const;

  /// Writes the full artifact (contexts + spans + metrics snapshot) to
  /// `path` atomically via tmp+rename. Returns false on I/O failure.
  bool DumpToFile(const std::string& path, const std::string& reason);

  /// Async-signal-safe dump (contexts + spans only, no metrics) to the
  /// path captured by InstallCrashHandler — callable from a signal handler.
  void DumpFromSignal(const char* reason);

  /// Installs fatal-signal handlers (SEGV/ABRT/BUS/FPE/ILL) that dump to
  /// $MDE_FLIGHT_PATH (default "mde_flight.json") and re-raise. Idempotent.
  static void InstallCrashHandler();

  /// $MDE_FLIGHT_PATH or "mde_flight.json" — where fault-path dumps land.
  static std::string DefaultPath();

  /// Clears all retained spans and contexts (tests only).
  void Reset();

 private:
  friend struct FlightSlotHandle;

  struct SpanRecord {
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_span_id{0};
  };

  struct Slot {
    SpanRecord ring[kSpanRingSize];
    std::atomic<uint64_t> seq{0};  // total opens; next write = seq % size
    std::atomic<uint64_t> ctx_trace_id{0};
    std::atomic<uint64_t> ctx_fingerprint{0};
    std::atomic<const char*> ctx_tag{nullptr};
    std::atomic<const char*> name{nullptr};  // interned thread name
  };

  FlightRecorder() = default;

  Slot* SlotForThisThread();
  void ReleaseSlot(Slot* slot);
  const char* InternName(const std::string& name);
  /// Renders the slot state (contexts + spans arrays) into `os`-style
  /// appends on a std::string; shared by the normal dump path.
  void AppendSlotsJson(std::string* out) const;

  Slot slots_[kMaxThreads];
  std::atomic<uint32_t> high_water_{0};  // slots ever handed out
  std::mutex free_mu_;
  std::vector<uint32_t> free_slots_;
  std::mutex intern_mu_;
  std::set<std::string> interned_names_;
};

}  // namespace mde::obs

#endif  // MDE_OBS_FLIGHT_H_
