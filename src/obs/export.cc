#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "obs/context.h"
#include "obs/mem.h"
#include "obs/trace.h"

#ifndef MDE_GIT_HASH
#define MDE_GIT_HASH "unknown"
#endif

namespace mde::obs {

namespace {

struct LabelStore {
  std::mutex mu;
  std::map<std::string, std::string> labels;
};

LabelStore& Labels() {
  static LabelStore* s = new LabelStore();  // leaked: outlives static dtors
  return *s;
}

/// Captured when the obs library initializes (static init of this TU),
/// which for all practical purposes is process start.
const uint64_t g_process_start_ns = NowNanos();

std::string EscapeLabelValue(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Round-trip double formatting: enough digits that parsing the text
/// recovers the exact bit pattern (integers render without a point).
std::string RoundTrip(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

/// JSON string escape for metric names (identifiers in practice, but the
/// writer must never emit malformed JSON).
void JsonEscape(const std::string& s, std::ostream& os) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

/// JSON has no Inf/NaN literals; non-finite values serialize as null.
void JsonNumber(double v, std::ostream& os) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

const char* PrometheusKindName(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter:
      return "counter";
    case MetricSnapshot::Kind::kGauge:
      return "gauge";
    case MetricSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

std::string PrometheusText(const std::vector<MetricSnapshot>& snapshot) {
  std::ostringstream os;
  for (const MetricSnapshot& m : snapshot) {
    const std::string name = SanitizeMetricName(m.name);
    os << "# TYPE " << name << " " << PrometheusKindName(m.kind) << "\n";
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << name << " " << static_cast<uint64_t>(m.value) << "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        os << name << " " << RoundTrip(m.value) << "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        // The registry stores per-bucket counts; the exposition format
        // wants running totals with a final le="+Inf" bucket == _count.
        uint64_t cumulative = 0;
        for (size_t b = 0; b < m.buckets.size(); ++b) {
          cumulative += m.buckets[b];
          os << name << "_bucket{le=\"";
          if (b < m.bounds.size()) {
            os << RoundTrip(m.bounds[b]);
          } else {
            os << "+Inf";
          }
          os << "\"} " << cumulative << "\n";
        }
        os << name << "_sum " << RoundTrip(m.value) << "\n";
        os << name << "_count " << m.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string PrometheusText() {
  RunSampleHooks();
  std::vector<MetricSnapshot> snapshot = Registry::Global().Snapshot();
  AppendDerivedGauges(&snapshot);
  return PrometheusText(snapshot) + BuildInfoText() + AttributionText();
}

void SetRuntimeLabel(const std::string& key, const std::string& value) {
  LabelStore& s = Labels();
  std::lock_guard<std::mutex> lock(s.mu);
  s.labels[key] = value;
}

std::string GetRuntimeLabel(const std::string& key) {
  LabelStore& s = Labels();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.labels.find(key);
  return it != s.labels.end() ? it->second : "unknown";
}

const char* BuildGitHash() { return MDE_GIT_HASH; }

double ProcessUptimeSeconds() {
  return static_cast<double>(NowNanos() - g_process_start_ns) * 1e-9;
}

std::string BuildInfoText() {
  std::ostringstream os;
  os << "# TYPE mde_build_info gauge\n"
     << "mde_build_info{git_hash=\"" << EscapeLabelValue(BuildGitHash())
     << "\",simd_tier=\"" << EscapeLabelValue(GetRuntimeLabel("simd_tier"))
     << "\"} 1\n";
  os << "# TYPE mde_process_uptime_seconds gauge\n"
     << "mde_process_uptime_seconds " << RoundTrip(ProcessUptimeSeconds())
     << "\n";
  const ProcessMemory mem = SampleProcessMemory();
  if (mem.ok) {
    os << "# TYPE mde_process_rss_bytes gauge\n"
       << "mde_process_rss_bytes " << mem.rss_kb * 1024 << "\n";
    os << "# TYPE mde_process_peak_rss_bytes gauge\n"
       << "mde_process_peak_rss_bytes " << mem.peak_rss_kb * 1024 << "\n";
  }
  return os.str();
}

std::string AttributionText() {
  const std::vector<AttributionTable::Row> rows =
      AttributionTable::Global().Snapshot();
  if (rows.empty()) return "";
  // One labeled sample per (query, field). Label values: the fingerprint in
  // hex and the entry-point tag; tags are literals like "table.query", but
  // escape anyway per the exposition grammar.
  const auto escape_label = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '\\' || c == '"') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  };
  struct Field {
    const char* name;
    uint64_t AttributionTable::Row::*member;
  };
  static constexpr Field kFields[] = {
      {"mde_query_cpu_ns", &AttributionTable::Row::cpu_ns},
      {"mde_query_tasks", &AttributionTable::Row::tasks},
      {"mde_query_spans", &AttributionTable::Row::spans},
      {"mde_query_rows_in", &AttributionTable::Row::rows_in},
      {"mde_query_rows_out", &AttributionTable::Row::rows_out},
      {"mde_query_vg_draws", &AttributionTable::Row::vg_draws},
      {"mde_query_bundle_bytes", &AttributionTable::Row::bundle_bytes},
      {"mde_query_cache_hits", &AttributionTable::Row::cache_hits},
  };
  std::ostringstream os;
  for (const Field& f : kFields) {
    os << "# TYPE " << f.name << " counter\n";
    for (const AttributionTable::Row& r : rows) {
      os << f.name << "{query=\"" << FingerprintHex(r.fingerprint)
         << "\",tag=\"" << escape_label(r.tag) << "\"} " << r.*f.member
         << "\n";
    }
  }
  return os.str();
}

namespace {

struct HookRegistry {
  std::mutex mu;
  std::map<uint64_t, SampleHook> hooks;
  uint64_t next_id = 1;
};

HookRegistry& Hooks() {
  static HookRegistry* h = new HookRegistry();  // leaked: outlives statics
  return *h;
}

}  // namespace

uint64_t RegisterSampleHook(SampleHook hook) {
  HookRegistry& reg = Hooks();
  std::lock_guard<std::mutex> lock(reg.mu);
  const uint64_t id = reg.next_id++;
  reg.hooks.emplace(id, std::move(hook));
  return id;
}

void UnregisterSampleHook(uint64_t id) {
  HookRegistry& reg = Hooks();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.hooks.erase(id);
}

void RunSampleHooks() {
  HookRegistry& reg = Hooks();
  // Hooks run under the lock on purpose: UnregisterSampleHook blocks until
  // an in-flight run finishes, so "unregister then destruct" is race-free
  // for hook owners (see export.h).
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& [id, hook] : reg.hooks) hook();
}

void AppendDerivedGauges(std::vector<MetricSnapshot>* snapshot) {
  // Pair up obs.mem.<pool>.alloc_bytes / .freed_bytes counters. The
  // snapshot is name-sorted, so alloc precedes freed for the same pool.
  static const std::string kPrefix = "obs.mem.";
  static const std::string kAlloc = ".alloc_bytes";
  std::vector<MetricSnapshot> derived;
  for (const MetricSnapshot& m : *snapshot) {
    if (m.kind != MetricSnapshot::Kind::kCounter) continue;
    if (m.name.rfind(kPrefix, 0) != 0 || m.name.size() <= kAlloc.size() ||
        m.name.compare(m.name.size() - kAlloc.size(), kAlloc.size(),
                       kAlloc) != 0) {
      continue;
    }
    const std::string pool = m.name.substr(
        kPrefix.size(), m.name.size() - kPrefix.size() - kAlloc.size());
    double freed = 0.0;
    const std::string freed_name = kPrefix + pool + ".freed_bytes";
    for (const MetricSnapshot& f : *snapshot) {
      if (f.name == freed_name) {
        freed = f.value;
        break;
      }
    }
    MetricSnapshot live;
    live.name = kPrefix + pool + ".live_bytes";
    live.kind = MetricSnapshot::Kind::kGauge;
    live.value = m.value > freed ? m.value - freed : 0.0;
    derived.push_back(std::move(live));
  }
  for (auto& d : derived) snapshot->push_back(std::move(d));
}

Sampler::Sampler(SamplerOptions options) : options_(std::move(options)) {
  out_.open(options_.path, std::ios::out | std::ios::trunc);
  start_ = std::chrono::steady_clock::now();
  if (!out_.is_open()) {
    stopped_ = true;  // nothing to do; Stop() stays a no-op
    return;
  }
  thread_ = std::thread([this] { Loop(); });
}

Sampler::~Sampler() { Stop(); }

void Sampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  // Final record: short runs always get at least one complete sample, and
  // the last line holds the end-of-run totals the report tool reads.
  const auto now = std::chrono::steady_clock::now();
  WriteSample(std::chrono::duration<double, std::milli>(now - start_).count());
  out_.flush();
  out_.close();
}

void Sampler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, options_.period,
                     [this] { return stop_requested_; })) {
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    const double t_ms =
        std::chrono::duration<double, std::milli>(now - start_).count();
    // The registry snapshot and file write happen outside the engine's
    // world entirely; holding mu_ here only serializes with Stop().
    WriteSample(t_ms);
  }
}

void Sampler::WriteSample(double t_ms) {
  if (!out_.is_open()) return;
  RunSampleHooks();
  if (options_.include_process_memory) PublishProcessMemoryGauges();
  std::vector<MetricSnapshot> snapshot = Registry::Global().Snapshot();
  AppendDerivedGauges(&snapshot);

  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "{\"t_ms\":" << t_ms;

  os << ",\"counters\":{";
  bool first = true;
  for (const MetricSnapshot& m : snapshot) {
    if (m.kind != MetricSnapshot::Kind::kCounter) continue;
    auto [it, inserted] = last_counters_.try_emplace(m.name, 0.0);
    const double delta = m.value - it->second;
    it->second = m.value;
    if (!first) os << ",";
    first = false;
    os << "\"";
    JsonEscape(m.name, os);
    os << "\":{\"v\":" << static_cast<uint64_t>(m.value)
       << ",\"d\":" << static_cast<uint64_t>(delta < 0.0 ? 0.0 : delta)
       << "}";
  }
  os << "},\"gauges\":{";
  first = true;
  for (const MetricSnapshot& m : snapshot) {
    if (m.kind != MetricSnapshot::Kind::kGauge) continue;
    if (!first) os << ",";
    first = false;
    os << "\"";
    JsonEscape(m.name, os);
    os << "\":";
    JsonNumber(m.value, os);
  }
  os << "},\"hist\":{";
  first = true;
  for (const MetricSnapshot& m : snapshot) {
    if (m.kind != MetricSnapshot::Kind::kHistogram) continue;
    if (!first) os << ",";
    first = false;
    os << "\"";
    JsonEscape(m.name, os);
    os << "\":{\"count\":" << m.count << ",\"sum\":";
    JsonNumber(m.value, os);
    os << ",\"bounds\":[";
    for (size_t b = 0; b < m.bounds.size(); ++b) {
      if (b > 0) os << ",";
      os << m.bounds[b];
    }
    os << "],\"buckets\":[";
    for (size_t b = 0; b < m.buckets.size(); ++b) {
      if (b > 0) os << ",";
      os << m.buckets[b];
    }
    os << "]}";
  }
  os << "}";
  // Per-query attribution rows (obs/context.h), keyed by fingerprint hex.
  // Omitted entirely when no query has run, so pre-attribution readers of
  // the JSONL format see identical records.
  const std::vector<AttributionTable::Row> queries =
      AttributionTable::Global().Snapshot();
  if (!queries.empty()) {
    os << ",\"queries\":{";
    first = true;
    for (const AttributionTable::Row& q : queries) {
      if (!first) os << ",";
      first = false;
      os << "\"" << FingerprintHex(q.fingerprint) << "\":{\"tag\":\"";
      JsonEscape(q.tag, os);
      os << "\",\"cpu_ns\":" << q.cpu_ns << ",\"tasks\":" << q.tasks
         << ",\"spans\":" << q.spans << ",\"rows_in\":" << q.rows_in
         << ",\"rows_out\":" << q.rows_out << ",\"vg_draws\":" << q.vg_draws
         << ",\"bundle_bytes\":" << q.bundle_bytes
         << ",\"cache_hits\":" << q.cache_hits << "}";
    }
    os << "}";
  }
  const ProcessMemory mem = SampleProcessMemory();
  if (mem.ok) {
    os << ",\"mem\":{\"rss_kb\":" << mem.rss_kb
       << ",\"peak_rss_kb\":" << mem.peak_rss_kb << "}";
  }
  os << "}\n";
  out_ << os.str();
  out_.flush();
  samples_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mde::obs
