#ifndef MDE_OBS_HTTP_H_
#define MDE_OBS_HTTP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

/// Live diagnostics server: a small dependency-free blocking HTTP/1.1
/// server exposing the obs stack while the process runs — the scrape
/// surface the ROADMAP's serving milestone needs, and the live counterpart
/// of the after-the-fact artifacts (Chrome traces, JSONL samples, flight
/// dumps).
///
/// Endpoints:
///   /            index (HTML)
///   /healthz     "ok"
///   /metrics     Prometheus exposition (PrometheusText: registry +
///                build info + attribution families)
///   /statusz     build info, git hash, simd tier, uptime, RSS, profiler
///                state, thread-pool worker stats (text)
///   /queryz      per-query attribution table (HTML; ?format=json)
///   /tracez      recent span rings (flame summary text; ?format=json for
///                Chrome trace JSON)
///   /flightz     flight-recorder snapshot, without crashing anything
///   /profilez    on-demand CPU profile: ?seconds=N (default 2, clamped to
///                [0.1, 20]), ?query=0x<fp> filters samples to one query,
///                ?hz=N overrides the rate for temporary sessions; returns
///                folded stacks ("frame;...;frame count") ready for any
///                flamegraph tool
///
/// Threading: one accept thread plus a bounded pool of handler threads
/// (kHandlerThreads); accepted sockets queue up to kAcceptBacklog deep and
/// beyond that are answered 503 inline by the accept thread. Handlers only
/// READ side-band obs state (registry snapshots, ring snapshots), so
/// serving traffic cannot change an engine result bit — except /profilez,
/// which may start a temporary profiling session (also side-band).
///
/// Binds 127.0.0.1 only: this is a diagnostics port, not a public API.
/// Port 0 picks an ephemeral port (tests); port() reports the bound one.
///
/// Under -DMDE_OBS_DISABLED the class is a linkable no-op: Start() returns
/// false.
namespace mde::obs {

/// One page produced by a registered diagnostics handler.
struct DiagPage {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Handler for one registered path; receives the raw query string (use
/// DiagQueryParam to pull parameters out of it). Handlers run on DiagServer
/// handler threads and must be thread-safe and read-only with respect to
/// engine state — the same contract as the built-in endpoints.
using DiagHandler = std::function<DiagPage(const std::string& query)>;

/// Registers `handler` for `path` (e.g. "/sessionz") on every DiagServer in
/// the process; upper layers (src/serve sits above obs) use this to export
/// their own endpoints without obs depending on them. Built-in endpoints
/// take precedence over registered ones; registering a path twice replaces
/// the earlier handler. `index_line` (optional, HTML) is appended to the
/// index page. Returns an id for UnregisterDiagHandler. Under
/// MDE_OBS_DISABLED registration is accepted but nothing serves it.
uint64_t RegisterDiagHandler(const std::string& path, DiagHandler handler,
                             const std::string& index_line = "");
void UnregisterDiagHandler(uint64_t id);

/// First value of `key` in a raw query string ("" when absent) —
/// the parameter parser the built-in endpoints use, exposed for handlers.
std::string DiagQueryParam(const std::string& query, const std::string& key);

class DiagServer {
 public:
  static constexpr int kHandlerThreads = 4;
  static constexpr int kAcceptBacklog = 16;

  DiagServer();
  /// Stops the server if running.
  ~DiagServer();

  DiagServer(const DiagServer&) = delete;
  DiagServer& operator=(const DiagServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept and
  /// handler threads. Returns false if already running, on any socket
  /// error, or under MDE_OBS_DISABLED.
  bool Start(uint16_t port);

  /// Joins every thread and closes every socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  /// The bound port (the ephemeral one when Start was given 0); 0 when not
  /// running.
  int port() const { return port_.load(std::memory_order_relaxed); }

  /// Requests served (any status). Test hook.
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Env-knob entry point for drivers and benches. Two independent knobs:
  /// MDE_PROF_HZ (a number > 0, or "default" for Profiler::kDefaultHz)
  /// starts the continuous profiler at that rate — with or without a
  /// server; MDE_DIAG_PORT starts a process-lifetime server on that port
  /// (0 = ephemeral) and returns it (nullptr otherwise). Prints one "mde:
  /// diagnostics on http://127.0.0.1:<port>" line to stderr on server
  /// start. Idempotent — the first call wins; the server is leaked on
  /// purpose (it must outlive main's locals).
  static DiagServer* MaybeStartFromEnv();

 private:
  struct Request {
    std::string method;
    std::string path;    // decoded path without query string
    std::string query;   // raw query string (no '?')
    /// First value of `key` in the query string ("" when absent).
    std::string Param(const std::string& key) const;
  };
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  void AcceptLoop();
  void HandlerLoop();
  void HandleConnection(int fd);
  Response Route(const Request& req);

  std::atomic<bool> running_{false};
  std::atomic<int> port_{0};
  std::atomic<uint64_t> requests_{0};
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;
  bool stopping_ = false;  // guarded by queue_mu_
};

}  // namespace mde::obs

#endif  // MDE_OBS_HTTP_H_
