#ifndef MDE_LINALG_MATRIX_H_
#define MDE_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace mde::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles. Sized for the metamodeling and spline
/// workloads in this library (up to a few thousand rows/columns); all
/// operations are straightforward O(n^3)/O(n^2) loops.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer-style data (rows of equal
  /// length).
  static Matrix FromRows(const std::vector<Vector>& rows);

  /// n x n identity.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t i, size_t j) {
    MDE_CHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    MDE_CHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Raw row pointer (row-major layout).
  const double* row_data(size_t i) const { return &data_[i * cols_]; }

  Matrix Transpose() const;
  Matrix operator*(const Matrix& other) const;
  Vector operator*(const Vector& v) const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix& operator*=(double s);

  /// Frobenius norm.
  double FrobeniusNorm() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Euclidean norm of v.
double Norm(const Vector& v);

/// Dot product (sizes must match).
double Dot(const Vector& a, const Vector& b);

/// a + s*b (sizes must match).
Vector Axpy(const Vector& a, double s, const Vector& b);

}  // namespace mde::linalg

#endif  // MDE_LINALG_MATRIX_H_
