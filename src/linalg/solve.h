#ifndef MDE_LINALG_SOLVE_H_
#define MDE_LINALG_SOLVE_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace mde::linalg {

/// Tridiagonal system in compact band form. For an n x n system:
///   lower: n-1 subdiagonal entries (a_1..a_{n-1}),
///   diag:  n diagonal entries,
///   upper: n-1 superdiagonal entries.
/// This is the form taken by the natural-cubic-spline constant system of
/// Section 2.2 of the paper.
struct Tridiagonal {
  Vector lower;
  Vector diag;
  Vector upper;

  size_t size() const { return diag.size(); }

  /// y = A x for the tridiagonal A.
  Vector Apply(const Vector& x) const;

  /// Expands to a dense matrix (testing / small systems only).
  Matrix ToDense() const;
};

/// Solves the tridiagonal system A x = b by the Thomas algorithm (O(n)).
/// Fails with NumericError on a zero pivot. This is the sequential exact
/// baseline against which the DSGD solver is evaluated.
Result<Vector> SolveTridiagonal(const Tridiagonal& a, const Vector& b);

/// Cholesky factorization of a symmetric positive-definite matrix:
/// returns lower-triangular L with A = L Lᵀ. Fails with NumericError if A is
/// not (numerically) positive definite.
Result<Matrix> Cholesky(const Matrix& a);

/// Solves A x = b given the Cholesky factor L of A.
Vector CholeskySolve(const Matrix& l, const Vector& b);

/// Solves the SPD system A x = b by Cholesky; optionally adds `ridge` to the
/// diagonal first (used by the kriging fitter for ill-conditioned covariance
/// matrices).
Result<Vector> SolveSpd(const Matrix& a, const Vector& b, double ridge = 0.0);

/// LU factorization with partial pivoting, then solve. General square
/// systems; fails with NumericError on singularity.
Result<Vector> SolveLu(const Matrix& a, const Vector& b);

/// Inverse via LU (testing / small matrices).
Result<Matrix> Inverse(const Matrix& a);

/// Ordinary least squares: minimizes ||X beta - y||². Solves the normal
/// equations with a tiny ridge for numerical safety. X must have at least as
/// many rows as columns.
Result<Vector> LeastSquares(const Matrix& x, const Vector& y);

}  // namespace mde::linalg

#endif  // MDE_LINALG_SOLVE_H_
