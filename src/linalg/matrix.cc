#include "linalg/matrix.h"

#include <cmath>

namespace mde::linalg {

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  MDE_CHECK(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    MDE_CHECK_EQ(rows[i].size(), m.cols_);
    for (size_t j = 0; j < m.cols_; ++j) m(i, j) = rows[i][j];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  MDE_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += a * other(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  MDE_CHECK_EQ(cols_, v.size());
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    const double* row = row_data(i);
    for (size_t j = 0; j < cols_; ++j) s += row[j] * v[j];
    out[i] = s;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  MDE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  MDE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Matrix::FrobeniusNorm() const {
  double ss = 0.0;
  for (double x : data_) ss += x * x;
  return std::sqrt(ss);
}

double Norm(const Vector& v) { return std::sqrt(Dot(v, v)); }

double Dot(const Vector& a, const Vector& b) {
  MDE_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Vector Axpy(const Vector& a, double s, const Vector& b) {
  MDE_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

}  // namespace mde::linalg
