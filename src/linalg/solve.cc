#include "linalg/solve.h"

#include <cmath>

namespace mde::linalg {

Vector Tridiagonal::Apply(const Vector& x) const {
  const size_t n = size();
  MDE_CHECK_EQ(x.size(), n);
  Vector y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double s = diag[i] * x[i];
    if (i > 0) s += lower[i - 1] * x[i - 1];
    if (i + 1 < n) s += upper[i] * x[i + 1];
    y[i] = s;
  }
  return y;
}

Matrix Tridiagonal::ToDense() const {
  const size_t n = size();
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    m(i, i) = diag[i];
    if (i > 0) m(i, i - 1) = lower[i - 1];
    if (i + 1 < n) m(i, i + 1) = upper[i];
  }
  return m;
}

Result<Vector> SolveTridiagonal(const Tridiagonal& a, const Vector& b) {
  const size_t n = a.size();
  MDE_CHECK_EQ(b.size(), n);
  MDE_CHECK_EQ(a.lower.size() + 1, n);
  MDE_CHECK_EQ(a.upper.size() + 1, n);
  if (n == 0) return Vector{};
  Vector c(n - 1, 0.0);  // modified superdiagonal
  Vector d(n, 0.0);      // modified rhs
  double pivot = a.diag[0];
  if (pivot == 0.0) return Status::NumericError("zero pivot in Thomas solve");
  if (n > 1) c[0] = a.upper[0] / pivot;
  d[0] = b[0] / pivot;
  for (size_t i = 1; i < n; ++i) {
    pivot = a.diag[i] - a.lower[i - 1] * c[i - 1];
    if (pivot == 0.0) {
      return Status::NumericError("zero pivot in Thomas solve");
    }
    if (i + 1 < n) c[i] = a.upper[i] / pivot;
    d[i] = (b[i] - a.lower[i - 1] * d[i - 1]) / pivot;
  }
  Vector x(n);
  x[n - 1] = d[n - 1];
  for (size_t i = n - 1; i-- > 0;) {
    x[i] = d[i] - c[i] * x[i + 1];
  }
  return x;
}

Result<Matrix> Cholesky(const Matrix& a) {
  MDE_CHECK_EQ(a.rows(), a.cols());
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= 0.0) {
      return Status::NumericError("matrix not positive definite");
    }
    l(j, j) = std::sqrt(d);
    for (size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

Vector CholeskySolve(const Matrix& l, const Vector& b) {
  const size_t n = l.rows();
  MDE_CHECK_EQ(b.size(), n);
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  Vector x(n);
  for (size_t i = n; i-- > 0;) {
    double s = y[i];
    for (size_t k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

Result<Vector> SolveSpd(const Matrix& a, const Vector& b, double ridge) {
  Matrix m = a;
  if (ridge > 0.0) {
    for (size_t i = 0; i < m.rows(); ++i) m(i, i) += ridge;
  }
  MDE_ASSIGN_OR_RETURN(Matrix l, Cholesky(m));
  return CholeskySolve(l, b);
}

namespace {

struct LuFactors {
  Matrix lu;
  std::vector<size_t> perm;
};

Result<LuFactors> LuFactor(const Matrix& a) {
  MDE_CHECK_EQ(a.rows(), a.cols());
  const size_t n = a.rows();
  LuFactors f{a, std::vector<size_t>(n)};
  for (size_t i = 0; i < n; ++i) f.perm[i] = i;
  for (size_t k = 0; k < n; ++k) {
    size_t piv = k;
    double best = std::fabs(f.lu(k, k));
    for (size_t i = k + 1; i < n; ++i) {
      if (std::fabs(f.lu(i, k)) > best) {
        best = std::fabs(f.lu(i, k));
        piv = i;
      }
    }
    if (best == 0.0) return Status::NumericError("singular matrix in LU");
    if (piv != k) {
      for (size_t j = 0; j < n; ++j) std::swap(f.lu(k, j), f.lu(piv, j));
      std::swap(f.perm[k], f.perm[piv]);
    }
    for (size_t i = k + 1; i < n; ++i) {
      f.lu(i, k) /= f.lu(k, k);
      const double m = f.lu(i, k);
      for (size_t j = k + 1; j < n; ++j) f.lu(i, j) -= m * f.lu(k, j);
    }
  }
  return f;
}

Vector LuSolveFactored(const LuFactors& f, const Vector& b) {
  const size_t n = f.lu.rows();
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[f.perm[i]];
    for (size_t k = 0; k < i; ++k) s -= f.lu(i, k) * y[k];
    y[i] = s;
  }
  Vector x(n);
  for (size_t i = n; i-- > 0;) {
    double s = y[i];
    for (size_t k = i + 1; k < n; ++k) s -= f.lu(i, k) * x[k];
    x[i] = s / f.lu(i, i);
  }
  return x;
}

}  // namespace

Result<Vector> SolveLu(const Matrix& a, const Vector& b) {
  MDE_CHECK_EQ(b.size(), a.rows());
  MDE_ASSIGN_OR_RETURN(LuFactors f, LuFactor(a));
  return LuSolveFactored(f, b);
}

Result<Matrix> Inverse(const Matrix& a) {
  const size_t n = a.rows();
  MDE_ASSIGN_OR_RETURN(LuFactors f, LuFactor(a));
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    Vector col = LuSolveFactored(f, e);
    for (size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    e[j] = 0.0;
  }
  return inv;
}

Result<Vector> LeastSquares(const Matrix& x, const Vector& y) {
  MDE_CHECK_EQ(x.rows(), y.size());
  MDE_CHECK_GE(x.rows(), x.cols());
  const Matrix xt = x.Transpose();
  Matrix xtx = xt * x;
  const Vector xty = xt * y;
  // Tiny ridge keeps near-collinear designs solvable without visibly biasing
  // coefficient estimates at the scales used in this library.
  const double ridge = 1e-10 * (xtx.FrobeniusNorm() + 1.0);
  return SolveSpd(xtx, xty, ridge);
}

}  // namespace mde::linalg
