#include "calibrate/estimation.h"

#include <cmath>

#include "calibrate/optimizers.h"
#include "util/stats.h"

namespace mde::calibrate {

Result<double> ExponentialMle(const std::vector<double>& data) {
  if (data.empty()) return Status::InvalidArgument("no data");
  for (double x : data) {
    if (x < 0.0) return Status::InvalidArgument("exponential data must be >= 0");
  }
  const double mean = Mean(data);
  if (mean <= 0.0) return Status::NumericError("degenerate data (mean 0)");
  return 1.0 / mean;
}

Result<NormalParams> NormalMle(const std::vector<double>& data) {
  if (data.size() < 2) return Status::InvalidArgument("need >= 2 points");
  NormalParams p;
  p.mu = Mean(data);
  double ss = 0.0;
  for (double x : data) ss += (x - p.mu) * (x - p.mu);
  p.sigma = std::sqrt(ss / static_cast<double>(data.size()));
  return p;
}

Result<double> GenericMle1D(
    const std::function<double(double)>& log_likelihood, double lo,
    double hi) {
  if (lo >= hi) return Status::InvalidArgument("lo must be < hi");
  OptimResult r = GoldenSection(
      [&](double theta) { return -log_likelihood(theta); }, lo, hi);
  return r.x[0];
}

Result<double> MethodOfMoments1D(
    const std::function<double(double)>& moment_fn, double observed_moment,
    double lo, double hi) {
  if (lo >= hi) return Status::InvalidArgument("lo must be < hi");
  double flo = moment_fn(lo) - observed_moment;
  double fhi = moment_fn(hi) - observed_moment;
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if (flo * fhi > 0.0) {
    return Status::FailedPrecondition(
        "moment equation has no sign change on [lo, hi]");
  }
  double a = lo, b = hi;
  for (int iter = 0; iter < 200 && (b - a) > 1e-12 * (hi - lo); ++iter) {
    const double mid = 0.5 * (a + b);
    const double fm = moment_fn(mid) - observed_moment;
    if (fm == 0.0) return mid;
    if (fm * flo < 0.0) {
      b = mid;
    } else {
      a = mid;
      flo = fm;
    }
  }
  return 0.5 * (a + b);
}

Result<double> ExponentialMm(const std::vector<double>& data) {
  // E[X] = 1/theta => theta = 1/mean: identical to the MLE.
  return ExponentialMle(data);
}

}  // namespace mde::calibrate
