#ifndef MDE_CALIBRATE_MSM_H_
#define MDE_CALIBRATE_MSM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "calibrate/optimizers.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace mde::calibrate {

/// A stochastic simulator reporting the moment vector m-hat(theta) for one
/// run at parameter theta (the expensive object in ABS calibration,
/// Section 3.1).
using MomentSimulator = std::function<Result<std::vector<double>>(
    const std::vector<double>& theta, uint64_t seed)>;

/// Estimates the MSM weight matrix W as the (ridge-regularized) inverse of
/// the sample covariance of observed moment vectors — the standard choice
/// that boosts statistical efficiency (Hansen 1982).
Result<linalg::Matrix> OptimalWeightMatrix(
    const std::vector<std::vector<double>>& moment_samples);

/// The generalized-distance MSM objective
///   J(theta) = G' W G,   G = Ybar - m-hat(theta),
/// where m-hat averages `sim_reps` simulator calls. Counts simulator calls
/// so calibration strategies can be compared on cost.
class MsmObjective {
 public:
  MsmObjective(std::vector<double> observed_moments, linalg::Matrix weight,
               MomentSimulator simulator, size_t sim_reps, uint64_t seed);

  /// J(theta); errors from the simulator propagate.
  Result<double> Evaluate(const std::vector<double>& theta) const;

  /// Adapter usable with the optimizers (returns +inf on simulator error).
  Objective AsObjective() const;

  size_t simulator_calls() const { return calls_; }
  void ResetCallCount() const { calls_ = 0; }

  size_t num_moments() const { return observed_.size(); }

 private:
  std::vector<double> observed_;
  linalg::Matrix weight_;
  MomentSimulator simulator_;
  size_t sim_reps_;
  uint64_t seed_;
  mutable size_t calls_ = 0;
};

/// Outcome of a calibration strategy.
struct CalibrationResult {
  std::vector<double> theta;
  double j_value = 0.0;
  /// Simulator invocations consumed — the cost axis of experiment E8.
  size_t simulator_calls = 0;
};

/// Baseline: uniform random sampling of theta (what the paper calls the
/// approach heuristic optimization vastly improves on).
Result<CalibrationResult> CalibrateRandomSearch(const MsmObjective& objective,
                                                const Bounds& bounds,
                                                size_t evaluations,
                                                uint64_t seed);

/// Nelder-Mead directly on J (Fabretti's approach).
Result<CalibrationResult> CalibrateNelderMead(const MsmObjective& objective,
                                              const Bounds& bounds,
                                              const std::vector<double>& x0,
                                              const NelderMeadOptions& options);

/// DOE + kriging metamodel calibration (Salle & Yildizoglu): evaluate J on
/// a nearly orthogonal Latin hypercube over the bounds, fit a kriging
/// surface to the (design, J) data, minimize the cheap surface with
/// multi-start Nelder-Mead, and confirm the winner with one real J
/// evaluation. Uses dramatically fewer simulator calls than direct search.
struct KrigingCalibrateOptions {
  size_t design_points = 17;
  size_t lh_attempts = 64;
  size_t surface_starts = 8;
  /// EGO-style refinement: after minimizing the surface, evaluate J at the
  /// candidate, add the point to the design, refit, and repeat. Each round
  /// costs one real J evaluation.
  size_t refinement_rounds = 4;
  uint64_t seed = 5150;
};
Result<CalibrationResult> CalibrateKriging(
    const MsmObjective& objective, const Bounds& bounds,
    const KrigingCalibrateOptions& options);

}  // namespace mde::calibrate

#endif  // MDE_CALIBRATE_MSM_H_
