#include "calibrate/optimizers.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/distributions.h"

namespace mde::calibrate {

void Bounds::Clamp(std::vector<double>* x) const {
  MDE_CHECK_EQ(x->size(), lo.size());
  for (size_t i = 0; i < x->size(); ++i) {
    (*x)[i] = std::clamp((*x)[i], lo[i], hi[i]);
  }
}

bool Bounds::Contains(const std::vector<double>& x) const {
  if (x.size() != lo.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] < lo[i] || x[i] > hi[i]) return false;
  }
  return true;
}

Result<OptimResult> NelderMead(const Objective& f,
                               const std::vector<double>& x0,
                               const Bounds& bounds,
                               const NelderMeadOptions& options) {
  const size_t n = x0.size();
  if (n == 0 || bounds.lo.size() != n || bounds.hi.size() != n) {
    return Status::InvalidArgument("dimension mismatch");
  }
  OptimResult result;
  auto eval = [&](std::vector<double> x) {
    bounds.Clamp(&x);
    ++result.evaluations;
    return std::make_pair(f(x), x);
  };

  // Initial simplex: x0 plus steps along each axis.
  std::vector<std::vector<double>> simplex;
  std::vector<double> values;
  {
    auto [v, x] = eval(x0);
    simplex.push_back(x);
    values.push_back(v);
  }
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> x = x0;
    x[i] += options.initial_step * (bounds.hi[i] - bounds.lo[i]);
    auto [v, xc] = eval(x);
    simplex.push_back(xc);
    values.push_back(v);
  }

  constexpr double kAlpha = 1.0;   // reflection
  constexpr double kGamma = 2.0;   // expansion
  constexpr double kRho = 0.5;     // contraction
  constexpr double kSigma = 0.5;   // shrink

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    // Order simplex by value.
    std::vector<size_t> order(simplex.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return values[a] < values[b]; });
    std::vector<std::vector<double>> s2;
    std::vector<double> v2;
    for (size_t i : order) {
      s2.push_back(simplex[i]);
      v2.push_back(values[i]);
    }
    simplex = std::move(s2);
    values = std::move(v2);
    if (values.back() - values.front() < options.tolerance) break;

    // Centroid of all but worst.
    std::vector<double> centroid(n, 0.0);
    for (size_t i = 0; i + 1 < simplex.size(); ++i) {
      for (size_t k = 0; k < n; ++k) centroid[k] += simplex[i][k];
    }
    for (size_t k = 0; k < n; ++k) centroid[k] /= static_cast<double>(n);

    auto affine = [&](double t) {
      std::vector<double> x(n);
      for (size_t k = 0; k < n; ++k) {
        x[k] = centroid[k] + t * (simplex.back()[k] - centroid[k]);
      }
      return x;
    };

    auto [vr, xr] = eval(affine(-kAlpha));  // reflection
    if (vr < values.front()) {
      auto [ve, xe] = eval(affine(-kGamma));  // expansion
      if (ve < vr) {
        simplex.back() = xe;
        values.back() = ve;
      } else {
        simplex.back() = xr;
        values.back() = vr;
      }
      continue;
    }
    if (vr < values[values.size() - 2]) {
      simplex.back() = xr;
      values.back() = vr;
      continue;
    }
    auto [vc, xc] = eval(affine(kRho));  // contraction
    if (vc < values.back()) {
      simplex.back() = xc;
      values.back() = vc;
      continue;
    }
    // Shrink toward the best vertex.
    for (size_t i = 1; i < simplex.size(); ++i) {
      for (size_t k = 0; k < n; ++k) {
        simplex[i][k] =
            simplex[0][k] + kSigma * (simplex[i][k] - simplex[0][k]);
      }
      auto [v, x] = eval(simplex[i]);
      simplex[i] = x;
      values[i] = v;
    }
  }
  size_t best = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] < values[best]) best = i;
  }
  result.x = simplex[best];
  result.value = values[best];
  return result;
}

Result<OptimResult> GeneticMinimize(const Objective& f, const Bounds& bounds,
                                    const GeneticOptions& options) {
  const size_t n = bounds.dims();
  if (n == 0 || options.population < 4) {
    return Status::InvalidArgument("need dims >= 1 and population >= 4");
  }
  Rng rng(options.seed);
  OptimResult result;
  auto eval = [&](const std::vector<double>& x) {
    ++result.evaluations;
    return f(x);
  };

  std::vector<std::vector<double>> pop(options.population,
                                       std::vector<double>(n));
  std::vector<double> fitness(options.population);
  for (auto& ind : pop) {
    for (size_t k = 0; k < n; ++k) {
      ind[k] = SampleUniform(rng, bounds.lo[k], bounds.hi[k]);
    }
  }
  for (size_t i = 0; i < pop.size(); ++i) fitness[i] = eval(pop[i]);

  auto tournament = [&]() -> size_t {
    const size_t a = rng.NextBounded(pop.size());
    const size_t b = rng.NextBounded(pop.size());
    return fitness[a] < fitness[b] ? a : b;
  };

  for (size_t gen = 0; gen < options.generations; ++gen) {
    ++result.iterations;
    std::vector<std::vector<double>> next;
    next.reserve(pop.size());
    // Elitism: carry the best individual.
    size_t best = 0;
    for (size_t i = 1; i < pop.size(); ++i) {
      if (fitness[i] < fitness[best]) best = i;
    }
    next.push_back(pop[best]);
    while (next.size() < pop.size()) {
      const auto& pa = pop[tournament()];
      const auto& pb = pop[tournament()];
      std::vector<double> child(n);
      for (size_t k = 0; k < n; ++k) {
        if (SampleBernoulli(rng, options.crossover_rate)) {
          const double w = rng.NextDouble();
          child[k] = w * pa[k] + (1.0 - w) * pb[k];
        } else {
          child[k] = pa[k];
        }
        if (SampleBernoulli(rng, options.mutation_rate)) {
          child[k] += SampleNormal(
              rng, 0.0,
              options.mutation_sigma * (bounds.hi[k] - bounds.lo[k]));
        }
      }
      bounds.Clamp(&child);
      next.push_back(std::move(child));
    }
    pop = std::move(next);
    for (size_t i = 0; i < pop.size(); ++i) fitness[i] = eval(pop[i]);
  }
  size_t best = 0;
  for (size_t i = 1; i < pop.size(); ++i) {
    if (fitness[i] < fitness[best]) best = i;
  }
  result.x = pop[best];
  result.value = fitness[best];
  return result;
}

OptimResult GoldenSection(const std::function<double(double)>& f, double lo,
                          double hi, double tolerance,
                          size_t max_iterations) {
  MDE_CHECK_LT(lo, hi);
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  OptimResult result;
  double a = lo, b = hi;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = f(c), fd = f(d);
  result.evaluations = 2;
  for (size_t iter = 0; iter < max_iterations && (b - a) > tolerance;
       ++iter) {
    ++result.iterations;
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = f(d);
    }
    ++result.evaluations;
  }
  const double x = fc < fd ? c : d;
  result.x = {x};
  result.value = std::min(fc, fd);
  return result;
}

OptimResult RandomSearch(const Objective& f, const Bounds& bounds,
                         size_t evaluations, uint64_t seed) {
  MDE_CHECK_GT(evaluations, 0u);
  Rng rng(seed);
  OptimResult result;
  const size_t n = bounds.dims();
  std::vector<double> x(n);
  for (size_t e = 0; e < evaluations; ++e) {
    for (size_t k = 0; k < n; ++k) {
      x[k] = SampleUniform(rng, bounds.lo[k], bounds.hi[k]);
    }
    const double v = f(x);
    ++result.evaluations;
    if (result.x.empty() || v < result.value) {
      result.x = x;
      result.value = v;
    }
  }
  return result;
}

}  // namespace mde::calibrate
