#ifndef MDE_CALIBRATE_OPTIMIZERS_H_
#define MDE_CALIBRATE_OPTIMIZERS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace mde::calibrate {

/// Objective to minimize over a real parameter vector.
using Objective = std::function<double(const std::vector<double>&)>;

/// Box bounds for a parameter vector.
struct Bounds {
  std::vector<double> lo;
  std::vector<double> hi;

  size_t dims() const { return lo.size(); }
  /// Clamps x into the box in place.
  void Clamp(std::vector<double>* x) const;
  bool Contains(const std::vector<double>& x) const;
};

/// Result of a derivative-free minimization.
struct OptimResult {
  std::vector<double> x;
  double value = 0.0;
  size_t evaluations = 0;
  size_t iterations = 0;
};

/// Nelder-Mead simplex (the heuristic optimizer Fabretti applies to ABS
/// calibration, Section 3.1), with box-constraint clamping.
struct NelderMeadOptions {
  size_t max_iterations = 300;
  double initial_step = 0.1;  // relative to box width
  double tolerance = 1e-8;    // simplex value spread stopping criterion
};
Result<OptimResult> NelderMead(const Objective& f,
                               const std::vector<double>& x0,
                               const Bounds& bounds,
                               const NelderMeadOptions& options);

/// Simple real-coded genetic algorithm (tournament selection, blend
/// crossover, Gaussian mutation) — the other heuristic of Section 3.1.
struct GeneticOptions {
  size_t population = 40;
  size_t generations = 50;
  double crossover_rate = 0.9;
  double mutation_rate = 0.15;
  double mutation_sigma = 0.1;  // relative to box width
  uint64_t seed = 31;
};
Result<OptimResult> GeneticMinimize(const Objective& f, const Bounds& bounds,
                                    const GeneticOptions& options);

/// Golden-section search for univariate minimization on [lo, hi].
OptimResult GoldenSection(const std::function<double(double)>& f, double lo,
                          double hi, double tolerance = 1e-9,
                          size_t max_iterations = 200);

/// Uniform random search baseline: `evaluations` points in the box.
OptimResult RandomSearch(const Objective& f, const Bounds& bounds,
                         size_t evaluations, uint64_t seed);

}  // namespace mde::calibrate

#endif  // MDE_CALIBRATE_OPTIMIZERS_H_
