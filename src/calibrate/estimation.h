#ifndef MDE_CALIBRATE_ESTIMATION_H_
#define MDE_CALIBRATE_ESTIMATION_H_

#include <functional>
#include <vector>

#include "util/status.h"

namespace mde::calibrate {

/// Maximum likelihood estimation (Section 3.1). Closed forms for the
/// paper's worked examples, plus a generic univariate maximizer for models
/// whose likelihood is available.

/// MLE of the exponential rate theta from i.i.d. data: theta-hat = 1/mean.
Result<double> ExponentialMle(const std::vector<double>& data);

/// MLE of (mu, sigma) for normal data (sigma uses the 1/n ML convention).
struct NormalParams {
  double mu = 0.0;
  double sigma = 1.0;
};
Result<NormalParams> NormalMle(const std::vector<double>& data);

/// Generic univariate MLE: maximizes `log_likelihood(theta)` over
/// [lo, hi] by golden section.
Result<double> GenericMle1D(
    const std::function<double(double)>& log_likelihood, double lo,
    double hi);

/// Method of moments (Section 3.1): solves Ybar - m(theta) = 0 for a
/// univariate theta when the model moment function m is available, by
/// bisection of the monotone moment equation over [lo, hi].
Result<double> MethodOfMoments1D(const std::function<double(double)>& moment_fn,
                                 double observed_moment, double lo, double hi);

/// Method of moments for the exponential: E[X] = 1/theta, so theta-hat =
/// 1/Xbar (coincides with the MLE, as the paper notes).
Result<double> ExponentialMm(const std::vector<double>& data);

}  // namespace mde::calibrate

#endif  // MDE_CALIBRATE_ESTIMATION_H_
