#include "calibrate/msm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "doe/designs.h"
#include "linalg/solve.h"
#include "metamodel/kriging.h"
#include "util/check.h"
#include "util/distributions.h"

namespace mde::calibrate {

Result<linalg::Matrix> OptimalWeightMatrix(
    const std::vector<std::vector<double>>& moment_samples) {
  if (moment_samples.size() < 2) {
    return Status::InvalidArgument("need >= 2 moment samples");
  }
  const size_t m = moment_samples[0].size();
  // Sample covariance of the moment vectors.
  std::vector<double> mean(m, 0.0);
  for (const auto& s : moment_samples) {
    if (s.size() != m) {
      return Status::InvalidArgument("inconsistent moment dimensions");
    }
    for (size_t k = 0; k < m; ++k) mean[k] += s[k];
  }
  for (double& v : mean) v /= static_cast<double>(moment_samples.size());
  linalg::Matrix cov(m, m);
  for (const auto& s : moment_samples) {
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        cov(i, j) += (s[i] - mean[i]) * (s[j] - mean[j]);
      }
    }
  }
  cov *= 1.0 / static_cast<double>(moment_samples.size() - 1);
  // Ridge for invertibility.
  double trace = 0.0;
  for (size_t i = 0; i < m; ++i) trace += cov(i, i);
  const double ridge = 1e-8 * (trace / static_cast<double>(m) + 1.0);
  for (size_t i = 0; i < m; ++i) cov(i, i) += ridge;
  return linalg::Inverse(cov);
}

MsmObjective::MsmObjective(std::vector<double> observed_moments,
                           linalg::Matrix weight, MomentSimulator simulator,
                           size_t sim_reps, uint64_t seed)
    : observed_(std::move(observed_moments)),
      weight_(std::move(weight)),
      simulator_(std::move(simulator)),
      sim_reps_(std::max<size_t>(1, sim_reps)),
      seed_(seed) {
  MDE_CHECK_EQ(weight_.rows(), observed_.size());
  MDE_CHECK_EQ(weight_.cols(), observed_.size());
}

Result<double> MsmObjective::Evaluate(const std::vector<double>& theta) const {
  const size_t m = observed_.size();
  std::vector<double> avg(m, 0.0);
  for (size_t rep = 0; rep < sim_reps_; ++rep) {
    MDE_ASSIGN_OR_RETURN(std::vector<double> sim,
                         simulator_(theta, seed_ + calls_));
    ++calls_;
    if (sim.size() != m) {
      return Status::InvalidArgument("simulator moment dimension mismatch");
    }
    for (size_t k = 0; k < m; ++k) avg[k] += sim[k];
  }
  linalg::Vector g(m);
  for (size_t k = 0; k < m; ++k) {
    g[k] = observed_[k] - avg[k] / static_cast<double>(sim_reps_);
  }
  const linalg::Vector wg = weight_ * g;
  return linalg::Dot(g, wg);
}

Objective MsmObjective::AsObjective() const {
  return [this](const std::vector<double>& theta) {
    auto r = Evaluate(theta);
    return r.ok() ? r.value() : std::numeric_limits<double>::infinity();
  };
}

Result<CalibrationResult> CalibrateRandomSearch(const MsmObjective& objective,
                                                const Bounds& bounds,
                                                size_t evaluations,
                                                uint64_t seed) {
  objective.ResetCallCount();
  OptimResult r =
      RandomSearch(objective.AsObjective(), bounds, evaluations, seed);
  CalibrationResult out;
  out.theta = r.x;
  out.j_value = r.value;
  out.simulator_calls = objective.simulator_calls();
  return out;
}

Result<CalibrationResult> CalibrateNelderMead(
    const MsmObjective& objective, const Bounds& bounds,
    const std::vector<double>& x0, const NelderMeadOptions& options) {
  objective.ResetCallCount();
  MDE_ASSIGN_OR_RETURN(
      OptimResult r, NelderMead(objective.AsObjective(), x0, bounds, options));
  CalibrationResult out;
  out.theta = r.x;
  out.j_value = r.value;
  out.simulator_calls = objective.simulator_calls();
  return out;
}

Result<CalibrationResult> CalibrateKriging(
    const MsmObjective& objective, const Bounds& bounds,
    const KrigingCalibrateOptions& options) {
  objective.ResetCallCount();
  const size_t dims = bounds.dims();
  if (dims == 0) return Status::InvalidArgument("empty bounds");
  if (options.design_points < dims + 2) {
    return Status::InvalidArgument("too few design points");
  }
  // 1. Nearly orthogonal LH design over the box.
  Rng rng(options.seed);
  linalg::Matrix coded = doe::NearlyOrthogonalLatinHypercube(
      dims, options.design_points, options.lh_attempts, rng);
  MDE_ASSIGN_OR_RETURN(linalg::Matrix initial,
                       doe::ScaleDesign(coded, bounds.lo, bounds.hi));
  // 2. Expensive J evaluations at the design points only. The surface is
  // fit to log(1 + J): J often spans orders of magnitude across the box,
  // and the log transform keeps the Gaussian process from being dominated
  // by the worst corner.
  std::vector<linalg::Vector> points;
  std::vector<double> log_j;
  std::vector<double> raw_j;
  auto evaluate_at = [&](const linalg::Vector& theta) -> Status {
    std::vector<double> t(theta.begin(), theta.end());
    MDE_ASSIGN_OR_RETURN(double j, objective.Evaluate(t));
    points.push_back(theta);
    raw_j.push_back(j);
    log_j.push_back(std::log1p(std::max(0.0, j)));
    return Status::OK();
  };
  for (size_t r = 0; r < initial.rows(); ++r) {
    linalg::Vector theta(dims);
    for (size_t k = 0; k < dims; ++k) theta[k] = initial(r, k);
    MDE_RETURN_NOT_OK(evaluate_at(theta));
  }

  // 3-5. Fit the kriging surface, minimize it with multi-start
  // Nelder-Mead, confirm the candidate with a real J evaluation, add it to
  // the design, and refit (a small EGO loop).
  NelderMeadOptions nm;
  nm.max_iterations = 200;
  // The GP is fit in normalized [0,1]^d coordinates so one length-scale
  // grid covers parameters of very different physical scales.
  auto normalize = [&](const std::vector<double>& x) {
    linalg::Vector u(dims);
    for (size_t k = 0; k < dims; ++k) {
      u[k] = (x[k] - bounds.lo[k]) / (bounds.hi[k] - bounds.lo[k]);
    }
    return u;
  };
  for (size_t round = 0; round <= options.refinement_rounds; ++round) {
    std::vector<linalg::Vector> unit_points;
    unit_points.reserve(points.size());
    for (const auto& p : points) {
      unit_points.push_back(
          normalize(std::vector<double>(p.begin(), p.end())));
    }
    metamodel::KrigingModel::Options kopt;
    kopt.fit_hyperparameters = true;
    // J evaluations are noisy (finite sim_reps); a visible nugget keeps
    // the surface from chasing that noise.
    kopt.nugget = 0.02;
    kopt.theta.assign(dims, 1.0);
    MDE_ASSIGN_OR_RETURN(
        metamodel::KrigingModel surface,
        metamodel::KrigingModel::Fit(linalg::Matrix::FromRows(unit_points),
                                     log_j, kopt));
    // Acquisition: negative expected improvement over the incumbent on
    // the log-J scale. The variance term makes later rounds explore
    // under-sampled regions instead of resampling the best design point.
    const double incumbent =
        *std::min_element(log_j.begin(), log_j.end());
    Objective cheap = [&surface, &normalize,
                       incumbent](const std::vector<double>& x) {
      const linalg::Vector u = normalize(x);
      const double mu = surface.Predict(u);
      const double sd = std::sqrt(std::max(surface.PredictVariance(u), 0.0));
      if (sd < 1e-12) return -(std::max(incumbent - mu, 0.0));
      const double z = (incumbent - mu) / sd;
      const double ei = (incumbent - mu) * NormalCdf(z, 0.0, 1.0) +
                        sd * NormalPdf(z, 0.0, 1.0);
      return -ei;
    };
    std::vector<double> best_x;
    double best_v = std::numeric_limits<double>::infinity();
    for (size_t start = 0; start < options.surface_starts; ++start) {
      std::vector<double> x0(dims);
      if (start == 0) {
        // Warm start from the best design point seen so far.
        size_t arg = 0;
        for (size_t i = 1; i < raw_j.size(); ++i) {
          if (raw_j[i] < raw_j[arg]) arg = i;
        }
        x0.assign(points[arg].begin(), points[arg].end());
      } else {
        for (size_t k = 0; k < dims; ++k) {
          x0[k] = SampleUniform(rng, bounds.lo[k], bounds.hi[k]);
        }
      }
      auto r = NelderMead(cheap, x0, bounds, nm);
      if (r.ok() && r.value().value < best_v) {
        best_v = r.value().value;
        best_x = r.value().x;
      }
    }
    if (best_x.empty()) {
      return Status::Internal("surface minimization failed");
    }
    MDE_RETURN_NOT_OK(
        evaluate_at(linalg::Vector(best_x.begin(), best_x.end())));
  }

  size_t arg = 0;
  for (size_t i = 1; i < raw_j.size(); ++i) {
    if (raw_j[i] < raw_j[arg]) arg = i;
  }
  CalibrationResult out;
  out.theta.assign(points[arg].begin(), points[arg].end());
  out.j_value = raw_j[arg];
  out.simulator_calls = objective.simulator_calls();
  return out;
}

}  // namespace mde::calibrate
