#include "doe/main_effects.h"

#include <algorithm>
#include <cmath>

#include "util/distributions.h"

namespace mde::doe {

Result<std::vector<MainEffect>> ComputeMainEffects(
    const linalg::Matrix& design, const linalg::Vector& responses) {
  if (design.rows() != responses.size()) {
    return Status::InvalidArgument("design/response size mismatch");
  }
  if (design.rows() == 0) return Status::InvalidArgument("empty design");
  std::vector<MainEffect> effects;
  effects.reserve(design.cols());
  for (size_t f = 0; f < design.cols(); ++f) {
    double lo_sum = 0.0, hi_sum = 0.0;
    size_t lo_n = 0, hi_n = 0;
    for (size_t r = 0; r < design.rows(); ++r) {
      const double v = design(r, f);
      if (v < 0.0) {
        lo_sum += responses[r];
        ++lo_n;
      } else if (v > 0.0) {
        hi_sum += responses[r];
        ++hi_n;
      } else {
        return Status::InvalidArgument(
            "main effects require a two-level (+-1) design");
      }
    }
    if (lo_n == 0 || hi_n == 0) {
      return Status::InvalidArgument("factor never varies in the design");
    }
    MainEffect e;
    e.factor = f;
    e.low_mean = lo_sum / static_cast<double>(lo_n);
    e.high_mean = hi_sum / static_cast<double>(hi_n);
    e.effect = e.high_mean - e.low_mean;
    effects.push_back(e);
  }
  return effects;
}

Result<std::vector<HalfNormalPoint>> HalfNormalScores(
    const std::vector<MainEffect>& effects) {
  if (effects.empty()) return Status::InvalidArgument("no effects");
  std::vector<HalfNormalPoint> points;
  points.reserve(effects.size());
  for (const MainEffect& e : effects) {
    points.push_back({e.factor, std::fabs(e.effect), 0.0});
  }
  std::sort(points.begin(), points.end(),
            [](const HalfNormalPoint& a, const HalfNormalPoint& b) {
              return a.abs_effect < b.abs_effect;
            });
  const double m = static_cast<double>(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    const double p = 0.5 + 0.5 * (static_cast<double>(i) + 0.5) / m;
    points[i].quantile = NormalQuantile(p);
  }
  return points;
}

std::vector<size_t> ImportantFactors(const std::vector<MainEffect>& effects,
                                     double threshold) {
  std::vector<double> abs_effects;
  abs_effects.reserve(effects.size());
  for (const MainEffect& e : effects) {
    abs_effects.push_back(std::fabs(e.effect));
  }
  std::vector<double> sorted = abs_effects;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  std::vector<size_t> important;
  for (const MainEffect& e : effects) {
    if (std::fabs(e.effect) > threshold * std::max(median, 1e-12)) {
      important.push_back(e.factor);
    }
  }
  return important;
}

}  // namespace mde::doe
