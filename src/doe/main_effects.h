#ifndef MDE_DOE_MAIN_EFFECTS_H_
#define MDE_DOE_MAIN_EFFECTS_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace mde::doe {

/// Per-factor main-effects summary, the data behind a Figure 4 main-effects
/// plot: mean response at the factor's low and high settings, and the
/// effect size.
struct MainEffect {
  size_t factor = 0;
  double low_mean = 0.0;
  double high_mean = 0.0;
  /// high_mean - low_mean (twice the regression coefficient on +-1 coding).
  double effect = 0.0;
};

/// Computes main effects from a two-level design (+-1 coded) and its
/// responses. Works for full and fractional factorials.
Result<std::vector<MainEffect>> ComputeMainEffects(
    const linalg::Matrix& design, const linalg::Vector& responses);

/// Half-normal (Daniel) plot coordinates for effect-significance
/// diagnostics: effects sorted by |effect| paired with half-normal
/// quantiles Phi^-1(0.5 + 0.5 * (i - 0.5) / m). Effects far above the line
/// through the small effects are significant.
struct HalfNormalPoint {
  size_t factor = 0;
  double abs_effect = 0.0;
  double quantile = 0.0;
};

Result<std::vector<HalfNormalPoint>> HalfNormalScores(
    const std::vector<MainEffect>& effects);

/// Classifies factors as important when |effect| exceeds `threshold` times
/// the median |effect| (a simple Lenth-style cutoff).
std::vector<size_t> ImportantFactors(const std::vector<MainEffect>& effects,
                                     double threshold);

}  // namespace mde::doe

#endif  // MDE_DOE_MAIN_EFFECTS_H_
