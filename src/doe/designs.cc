#include "doe/designs.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/check.h"
#include "util/stats.h"

namespace mde::doe {

linalg::Matrix FullFactorial(size_t num_factors) {
  MDE_CHECK_GT(num_factors, 0u);
  MDE_CHECK_LE(num_factors, 20u);
  const size_t runs = size_t{1} << num_factors;
  linalg::Matrix design(runs, num_factors);
  for (size_t r = 0; r < runs; ++r) {
    for (size_t f = 0; f < num_factors; ++f) {
      design(r, f) = (r >> f) & 1 ? 1.0 : -1.0;
    }
  }
  return design;
}

Result<linalg::Matrix> FractionalFactorial(
    size_t base, const std::vector<std::vector<size_t>>& generators) {
  if (base == 0 || base > 20) {
    return Status::InvalidArgument("base factors must be in [1, 20]");
  }
  for (const auto& g : generators) {
    if (g.empty()) return Status::InvalidArgument("empty generator word");
    for (size_t f : g) {
      if (f >= base) {
        return Status::InvalidArgument(
            "generator must reference base factors only");
      }
    }
  }
  const linalg::Matrix full = FullFactorial(base);
  linalg::Matrix design(full.rows(), base + generators.size());
  for (size_t r = 0; r < full.rows(); ++r) {
    for (size_t f = 0; f < base; ++f) design(r, f) = full(r, f);
    for (size_t g = 0; g < generators.size(); ++g) {
      double v = 1.0;
      for (size_t f : generators[g]) v *= full(r, f);
      design(r, base + g) = v;
    }
  }
  return design;
}

linalg::Matrix Resolution3Design7Factors() {
  auto d = FractionalFactorial(3, {{0, 1}, {0, 2}, {1, 2}, {0, 1, 2}});
  MDE_CHECK(d.ok());
  return d.value();
}

linalg::Matrix Resolution4Design8Factors() {
  auto d = FractionalFactorial(
      4, {{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}});
  MDE_CHECK(d.ok());
  return d.value();
}

linalg::Matrix Design7Factors32Runs() {
  auto d = FractionalFactorial(5, {{0, 1, 2, 3}, {0, 1, 3, 4}});
  MDE_CHECK(d.ok());
  return d.value();
}

linalg::Matrix Resolution5Design8Factors() {
  auto d = FractionalFactorial(6, {{0, 1, 2, 3}, {0, 1, 4, 5}});
  MDE_CHECK(d.ok());
  return d.value();
}

size_t DesignResolution(size_t base,
                        const std::vector<std::vector<size_t>>& generators) {
  if (generators.empty()) return 0;
  // Each generator g defining factor base+g gives a defining word
  // I = x_{base+g} * prod(g). The defining relation is the group generated
  // by all products of these words; resolution = min word length over the
  // non-identity elements. Words are factor bitmasks over base+|g| factors.
  const size_t total = base + generators.size();
  std::vector<uint64_t> words;
  for (size_t g = 0; g < generators.size(); ++g) {
    uint64_t w = uint64_t{1} << (base + g);
    for (size_t f : generators[g]) w ^= uint64_t{1} << f;
    words.push_back(w);
  }
  size_t best = total + 1;
  const size_t combos = size_t{1} << words.size();
  for (size_t mask = 1; mask < combos; ++mask) {
    uint64_t w = 0;
    for (size_t g = 0; g < words.size(); ++g) {
      if (mask & (size_t{1} << g)) w ^= words[g];
    }
    const size_t len = static_cast<size_t>(__builtin_popcountll(w));
    if (len > 0) best = std::min(best, len);
  }
  return best;
}

linalg::Matrix RandomLatinHypercube(size_t num_factors, size_t levels,
                                    Rng& rng) {
  MDE_CHECK(num_factors > 0 && levels > 1);
  linalg::Matrix design(levels, num_factors);
  std::vector<double> column(levels);
  const double offset = (static_cast<double>(levels) - 1.0) / 2.0;
  for (size_t f = 0; f < num_factors; ++f) {
    for (size_t l = 0; l < levels; ++l) {
      column[l] = static_cast<double>(l) - offset;
    }
    // Fisher-Yates.
    for (size_t l = levels; l > 1; --l) {
      std::swap(column[l - 1], column[rng.NextBounded(l)]);
    }
    for (size_t r = 0; r < levels; ++r) design(r, f) = column[r];
  }
  return design;
}

linalg::Matrix NearlyOrthogonalLatinHypercube(size_t num_factors,
                                              size_t levels, size_t attempts,
                                              Rng& rng) {
  MDE_CHECK_GT(attempts, 0u);
  linalg::Matrix best = RandomLatinHypercube(num_factors, levels, rng);
  double best_corr = MaxColumnCorrelation(best);
  double best_dist = MaominDistance(best);
  for (size_t a = 1; a < attempts; ++a) {
    linalg::Matrix cand = RandomLatinHypercube(num_factors, levels, rng);
    const double corr = MaxColumnCorrelation(cand);
    const double dist = MaominDistance(cand);
    if (corr < best_corr - 1e-12 ||
        (std::fabs(corr - best_corr) <= 1e-12 && dist > best_dist)) {
      best = std::move(cand);
      best_corr = corr;
      best_dist = dist;
    }
  }
  return best;
}

linalg::Matrix Figure5LatinHypercube() {
  // An orthogonal 9-run LH for two factors with levels -4..4 (the
  // correlation of the two columns is exactly zero).
  const std::vector<std::vector<double>> rows = {
      {-4, -1}, {-3, 2}, {-2, -3}, {-1, 4}, {0, 0},
      {1, -4},  {2, 3},  {3, -2},  {4, 1}};
  return linalg::Matrix::FromRows(rows);
}

double MaxColumnCorrelation(const linalg::Matrix& design) {
  double worst = 0.0;
  for (size_t a = 0; a < design.cols(); ++a) {
    std::vector<double> ca(design.rows());
    for (size_t r = 0; r < design.rows(); ++r) ca[r] = design(r, a);
    for (size_t b = a + 1; b < design.cols(); ++b) {
      std::vector<double> cb(design.rows());
      for (size_t r = 0; r < design.rows(); ++r) cb[r] = design(r, b);
      worst = std::max(worst, std::fabs(Correlation(ca, cb)));
    }
  }
  return worst;
}

double MaominDistance(const linalg::Matrix& design) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < design.rows(); ++i) {
    for (size_t j = i + 1; j < design.rows(); ++j) {
      double ss = 0.0;
      for (size_t f = 0; f < design.cols(); ++f) {
        const double d = design(i, f) - design(j, f);
        ss += d * d;
      }
      best = std::min(best, std::sqrt(ss));
    }
  }
  return best;
}

bool IsLatinHypercube(const linalg::Matrix& design) {
  for (size_t f = 0; f < design.cols(); ++f) {
    std::set<double> seen;
    for (size_t r = 0; r < design.rows(); ++r) {
      if (!seen.insert(design(r, f)).second) return false;
    }
  }
  return true;
}

Result<linalg::Matrix> ScaleDesign(const linalg::Matrix& design,
                                   const std::vector<double>& lo,
                                   const std::vector<double>& hi) {
  if (lo.size() != design.cols() || hi.size() != design.cols()) {
    return Status::InvalidArgument("one (lo, hi) pair per factor");
  }
  linalg::Matrix out(design.rows(), design.cols());
  for (size_t f = 0; f < design.cols(); ++f) {
    if (lo[f] >= hi[f]) {
      return Status::InvalidArgument("lo must be < hi");
    }
    double cmin = design(0, f), cmax = design(0, f);
    for (size_t r = 0; r < design.rows(); ++r) {
      cmin = std::min(cmin, design(r, f));
      cmax = std::max(cmax, design(r, f));
    }
    const double span = cmax > cmin ? cmax - cmin : 1.0;
    for (size_t r = 0; r < design.rows(); ++r) {
      out(r, f) =
          lo[f] + (design(r, f) - cmin) / span * (hi[f] - lo[f]);
    }
  }
  return out;
}

}  // namespace mde::doe
