#include "ckpt/fault.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "obs/flight.h"
#include "obs/metrics.h"

namespace mde::ckpt {

namespace {

const char* Env(const char* name) { return std::getenv(name); }

}  // namespace

FaultInjector::Config FaultInjector::FromEnv() {
  Config c;
  if (const char* p = Env("MDE_FAULT_POINT")) c.point = p;
  if (const char* at = Env("MDE_FAULT_AT")) {
    c.fire_at_hit = std::strtoull(at, nullptr, 10);
    if (c.fire_at_hit > 0) c.enabled = true;
  }
  if (const char* prob = Env("MDE_FAULT_PROB")) {
    c.probability = std::strtod(prob, nullptr);
    if (c.probability > 0.0) c.enabled = true;
  }
  if (const char* seed = Env("MDE_FAULT_SEED")) {
    c.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* mx = Env("MDE_FAULT_MAX")) {
    c.max_faults = std::strtoull(mx, nullptr, 10);
  }
  return c;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector(FromEnv());
  return *injector;
}

void FaultInjector::Configure(const Config& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  rng_ = Rng(config.seed);
  hits_.clear();
  fired_ = 0;
}

bool FaultInjector::ShouldFail(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t hit = ++hits_[point];
  if (!config_.enabled || fired_ >= config_.max_faults) return false;
  if (!config_.point.empty() && config_.point != point) return false;
  bool fire = false;
  if (config_.fire_at_hit > 0) {
    fire = hit == config_.fire_at_hit;
  } else if (config_.probability > 0.0) {
    fire = rng_.NextDouble() < config_.probability;
  }
  if (fire) {
    ++fired_;
    MDE_OBS_COUNT("fault.injected", 1);
  }
  return fire;
}

void FaultInjector::MaybeFail(const std::string& point) {
  if (ShouldFail(point)) {
    uint64_t hit;
    {
      std::lock_guard<std::mutex> lock(mu_);
      hit = hits_[point];
    }
#ifndef MDE_OBS_DISABLED
    // Flight dump BEFORE the throw: the injected fault models a crash, so
    // the recorder must capture what every thread was doing at the fault
    // site, not after unwinding. Dump failures are ignored — the injected
    // fault is the event under test.
    obs::FlightRecorder::Global().DumpToFile(
        obs::FlightRecorder::DefaultPath(), "fault:" + point);
#endif
    throw FaultInjected(point, hit);
  }
}

uint64_t FaultInjector::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

uint64_t FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

double RetryPolicy::BackoffMs(size_t attempt) const {
  return backoff_initial_ms * std::pow(backoff_factor,
                                       static_cast<double>(attempt));
}

Status RetryPolicy::Run(const std::string& what,
                        const std::function<Status()>& fn) const {
  for (size_t attempt = 0;; ++attempt) {
    try {
      return fn();
    } catch (const FaultInjected& fault) {
      if (attempt >= max_retries) {
        return Status::Internal(what + ": retries exhausted after " +
                                std::to_string(max_retries) +
                                " attempts: " + fault.what());
      }
      MDE_OBS_COUNT("fault.retries", 1);
      if (sleep) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            BackoffMs(attempt)));
      }
    }
  }
}

}  // namespace mde::ckpt
