#include "ckpt/recovery.h"

#include <chrono>
#include <thread>

#include "ckpt/snapshot.h"
#include "obs/metrics.h"

namespace mde::ckpt {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Result<RecoveryStats> RunWithRecovery(Checkpointable& engine,
                                      const RecoveryOptions& options) {
  RecoveryStats stats;

  const auto save = [&](std::string* snapshot) -> Status {
    const uint64_t t0 = NowNs();
    MDE_ASSIGN_OR_RETURN(*snapshot, engine.Save());
    MDE_OBS_COUNT("ckpt.saves", 1);
    MDE_OBS_COUNT("ckpt.save_ns", NowNs() - t0);
    MDE_OBS_COUNT("ckpt.bytes", snapshot->size());
    ++stats.saves;
    if (!options.checkpoint_path.empty()) {
      MDE_RETURN_NOT_OK(WriteFileAtomic(options.checkpoint_path, *snapshot));
    }
    return Status::OK();
  };

  // The t=0 snapshot bounds the worst case: a fault on the very first step
  // restores to a clean start instead of failing the run.
  std::string snapshot;
  MDE_RETURN_NOT_OK(save(&snapshot));

  size_t steps_since_save = 0;
  size_t consecutive_failures = 0;
  while (!engine.Done()) {
    try {
      MDE_RETURN_NOT_OK(engine.StepOnce());
    } catch (const FaultInjected&) {
      ++stats.faults;
      if (consecutive_failures >= options.retry.max_retries) {
        return Status::Internal(engine.engine_name() +
                                ": retries exhausted after " +
                                std::to_string(consecutive_failures) +
                                " consecutive faults");
      }
      MDE_OBS_COUNT("fault.retries", 1);
      if (options.retry.sleep) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            options.retry.BackoffMs(consecutive_failures)));
      }
      ++consecutive_failures;
      // Roll back to the last known-good state and replay. The restore is
      // what makes retry sound: a step that faulted after partial mutation
      // is discarded wholesale.
      const uint64_t t0 = NowNs();
      MDE_RETURN_NOT_OK(engine.Restore(snapshot));
      MDE_OBS_COUNT("ckpt.restores", 1);
      MDE_OBS_COUNT("ckpt.restore_ns", NowNs() - t0);
      ++stats.restores;
      steps_since_save = 0;
      continue;
    }
    ++stats.steps;
    ++steps_since_save;
    consecutive_failures = 0;
    if (options.checkpoint_every > 0 &&
        steps_since_save >= options.checkpoint_every && !engine.Done()) {
      MDE_RETURN_NOT_OK(save(&snapshot));
      steps_since_save = 0;
    }
  }
  return stats;
}

}  // namespace mde::ckpt
