#ifndef MDE_CKPT_RECOVERY_H_
#define MDE_CKPT_RECOVERY_H_

#include <cstdint>
#include <string>

#include "ckpt/fault.h"
#include "util/status.h"

/// The crash-safe step loop shared by all checkpointable engines: drive the
/// engine one step at a time, snapshot every k steps, and on an injected
/// fault (or a real exception thrown through a step) restore the last
/// snapshot and replay with bounded exponential-backoff retries. Because
/// every engine's Save captures its complete working state — RNG substream
/// positions, progress cursors, accumulators — replay after restore is
/// bit-identical to a run that never failed, at any thread count.
namespace mde::ckpt {

/// An engine that can make stepwise progress and serialize its complete
/// in-flight state. Implementations: dsgd::DsgdRun, dsgd::
/// MatrixCompletionRun, simsql::ChainRunner, smc::FilterRun,
/// wildfire::AssimilationDriver.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Engine tag written into the snapshot header (e.g. "dsgd").
  virtual std::string engine_name() const = 0;

  /// True when no steps remain.
  virtual bool Done() const = 0;

  /// One unit of progress (a stratum visit, a chain version, a filter
  /// step). May throw FaultInjected from a registered fault point; must
  /// only mutate state it serializes, so Restore + replay is exact.
  virtual Status StepOnce() = 0;

  /// Complete serialized state (ckpt/snapshot.h container).
  virtual Result<std::string> Save() const = 0;

  /// Replaces the engine's state with the snapshot's. The engine must have
  /// been constructed over the same inputs (rows, specs, observations —
  /// checkpoints capture progress, not the immutable problem data).
  virtual Status Restore(const std::string& snapshot) = 0;
};

struct RecoveryOptions {
  /// Snapshot every k successful steps (0 = only the initial snapshot).
  size_t checkpoint_every = 1;
  /// When non-empty, every snapshot is also persisted here atomically.
  std::string checkpoint_path;
  /// Retry budget per incident; consecutive-failure count resets after any
  /// successful step.
  RetryPolicy retry;
};

/// What the recovery loop did (also mirrored on obs counters ckpt.saves,
/// ckpt.restores, ckpt.save_ns, ckpt.restore_ns, fault.retries).
struct RecoveryStats {
  size_t steps = 0;
  size_t saves = 0;
  size_t restores = 0;
  size_t faults = 0;
};

/// Runs `engine` to completion with checkpointing and fault recovery.
/// Returns the recovery statistics, or the first non-retryable error.
Result<RecoveryStats> RunWithRecovery(Checkpointable& engine,
                                      const RecoveryOptions& options);

}  // namespace mde::ckpt

#endif  // MDE_CKPT_RECOVERY_H_
