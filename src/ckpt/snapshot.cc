#include "ckpt/snapshot.h"

#include <cstdio>
#include <cstring>
#include <fstream>

namespace mde::ckpt {

namespace {

constexpr char kMagic[8] = {'M', 'D', 'E', 'C', 'K', 'P', 'T', '\0'};

/// Little-endian encode helpers shared by the header and section payloads.
void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

bool TakeU32(std::string_view data, size_t* pos, uint32_t* out) {
  if (*pos + 4 > data.size()) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[*pos + i]))
         << (8 * i);
  }
  *pos += 4;
  *out = v;
  return true;
}

bool TakeU64(std::string_view data, size_t* pos, uint64_t* out) {
  if (*pos + 8 > data.size()) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data[*pos + i]))
         << (8 * i);
  }
  *pos += 8;
  *out = v;
  return true;
}

bool TakeString(std::string_view data, size_t* pos, std::string* out) {
  uint32_t len = 0;
  if (!TakeU32(data, pos, &len)) return false;
  if (*pos + len > data.size()) return false;
  out->assign(data.data() + *pos, len);
  *pos += len;
  return true;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  // Table generated once from the reflected IEEE 802.3 polynomial.
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xffffffffu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void SectionWriter::PutU32(uint32_t v) { AppendU32(&buf_, v); }
void SectionWriter::PutU64(uint64_t v) { AppendU64(&buf_, v); }

void SectionWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void SectionWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void SectionWriter::PutRngState(const Rng::State& s) {
  for (uint64_t w : s) PutU64(w);
}

void SectionWriter::PutU64Vec(const std::vector<uint64_t>& v) {
  PutU64(v.size());
  for (uint64_t x : v) PutU64(x);
}

void SectionWriter::PutSizeVec(const std::vector<size_t>& v) {
  PutU64(v.size());
  for (size_t x : v) PutU64(static_cast<uint64_t>(x));
}

void SectionWriter::PutDoubleVec(const std::vector<double>& v) {
  PutU64(v.size());
  for (double x : v) PutDouble(x);
}

void SectionWriter::PutBytes(const void* data, size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

bool SectionReader::Take(void* out, size_t n) {
  if (!status_.ok()) return false;
  if (pos_ + n > data_.size()) {
    Fail("section truncated");
    return false;
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

void SectionReader::Fail(const std::string& what) {
  if (status_.ok()) status_ = Status::InvalidArgument("checkpoint: " + what);
}

uint8_t SectionReader::U8() {
  uint8_t v = 0;
  Take(&v, 1);
  return v;
}

uint32_t SectionReader::U32() {
  if (!status_.ok()) return 0;
  uint32_t v = 0;
  if (!TakeU32(data_, &pos_, &v)) Fail("section truncated");
  return v;
}

uint64_t SectionReader::U64() {
  if (!status_.ok()) return 0;
  uint64_t v = 0;
  if (!TakeU64(data_, &pos_, &v)) Fail("section truncated");
  return v;
}

double SectionReader::Double() {
  const uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return status_.ok() ? v : 0.0;
}

std::string SectionReader::String() {
  if (!status_.ok()) return {};
  std::string s;
  if (!TakeString(data_, &pos_, &s)) Fail("section truncated");
  return s;
}

Rng::State SectionReader::RngState() {
  Rng::State s{};
  for (uint64_t& w : s) w = U64();
  return s;
}

std::vector<uint64_t> SectionReader::U64Vec() {
  const uint64_t n = U64();
  if (!status_.ok() || n * 8 > remaining()) {
    Fail("vector length exceeds section");
    return {};
  }
  std::vector<uint64_t> v(n);
  for (uint64_t& x : v) x = U64();
  return v;
}

std::vector<size_t> SectionReader::SizeVec() {
  const std::vector<uint64_t> raw = U64Vec();
  return std::vector<size_t>(raw.begin(), raw.end());
}

std::vector<double> SectionReader::DoubleVec() {
  const uint64_t n = U64();
  if (!status_.ok() || n * 8 > remaining()) {
    Fail("vector length exceeds section");
    return {};
  }
  std::vector<double> v(n);
  for (double& x : v) x = Double();
  return v;
}

Status SectionReader::ExpectEnd() {
  MDE_RETURN_NOT_OK(status_);
  if (remaining() != 0) {
    return Status::InvalidArgument("checkpoint: trailing bytes in section");
  }
  return Status::OK();
}

SectionWriter* SnapshotWriter::AddSection(const std::string& name) {
  sections_.emplace_back(name, SectionWriter{});
  return &sections_.back().second;
}

std::string SnapshotWriter::Finish() {
  std::string out(kMagic, sizeof(kMagic));
  AppendU32(&out, kFormatVersion);
  AppendU32(&out, static_cast<uint32_t>(engine_.size()));
  out.append(engine_);
  AppendU32(&out, static_cast<uint32_t>(sections_.size()));
  for (auto& [name, w] : sections_) {
    AppendU32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
    AppendU64(&out, w.bytes().size());
    out.append(w.bytes());
  }
  AppendU32(&out, Crc32(out.data(), out.size()));
  sections_.clear();
  return out;
}

Result<SnapshotReader> SnapshotReader::Parse(std::string bytes) {
  if (bytes.size() < sizeof(kMagic) + 4 + 4 + 4 + 4) {
    return Status::InvalidArgument("checkpoint: too short");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("checkpoint: bad magic");
  }
  const size_t body = bytes.size() - 4;
  uint32_t stored_crc = 0;
  {
    size_t pos = body;
    TakeU32(bytes, &pos, &stored_crc);
  }
  const uint32_t actual_crc = Crc32(bytes.data(), body);
  if (stored_crc != actual_crc) {
    return Status::FailedPrecondition("checkpoint: CRC mismatch (corrupt)");
  }

  SnapshotReader r;
  r.bytes_ = std::move(bytes);
  const std::string_view data(r.bytes_.data(), body);
  size_t pos = sizeof(kMagic);
  uint32_t version = 0;
  if (!TakeU32(data, &pos, &version)) {
    return Status::InvalidArgument("checkpoint: truncated header");
  }
  if (version != kFormatVersion) {
    return Status::FailedPrecondition(
        "checkpoint: unsupported format version " + std::to_string(version));
  }
  if (!TakeString(data, &pos, &r.engine_)) {
    return Status::InvalidArgument("checkpoint: truncated engine name");
  }
  uint32_t count = 0;
  if (!TakeU32(data, &pos, &count)) {
    return Status::InvalidArgument("checkpoint: truncated section count");
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    uint64_t len = 0;
    if (!TakeString(data, &pos, &name) || !TakeU64(data, &pos, &len) ||
        pos + len > data.size()) {
      return Status::InvalidArgument("checkpoint: truncated section");
    }
    r.sections_.push_back({std::move(name), pos, len});
    pos += len;
  }
  return r;
}

bool SnapshotReader::has_section(const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

Result<SectionReader> SnapshotReader::section(const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) {
      return SectionReader(std::string_view(bytes_.data() + s.offset,
                                            s.length));
    }
  }
  return Status::NotFound("checkpoint: no section '" + name + "'");
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return Status::Internal("cannot open " + tmp);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!f) return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename " + tmp + " -> " + path + " failed");
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::NotFound("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

}  // namespace mde::ckpt
