#ifndef MDE_CKPT_SNAPSHOT_H_
#define MDE_CKPT_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

/// Deterministic checkpoint/restart for the long-running engines (DSGD,
/// matrix completion, SimSQL chains, particle filters, wildfire
/// assimilation). The paper's model-data ecosystems run on infrastructure
/// where worker loss is routine — SimSQL inherits Hadoop's restartable
/// steps, Indemics assumes HPC job preemption — and the engines here already
/// have the per-step determinism (substream RNGs, conflict-free strata) that
/// makes recovery *bit-identical*: kill at step k, restore the snapshot,
/// replay, and the final result equals an uninterrupted run at any thread
/// count.
///
/// Snapshot format (versioned, CRC-checked, little-endian):
///
///   offset  size  field
///   0       8     magic "MDECKPT\0"
///   8       4     format version (u32, currently 1)
///   12      var   engine name (u32 length + bytes)
///   ..      4     section count (u32)
///   per section:
///           var   name (u32 length + bytes)
///           8     payload size (u64)
///           var   payload (typed little-endian fields, engine-defined)
///   tail    4     CRC-32 (IEEE 802.3) over every preceding byte
///
/// Sections are looked up by name, so engines may add sections without
/// breaking older readers; unknown sections are ignored. Doubles are stored
/// bit-exactly (IEEE-754 bits), never formatted — restore must reproduce
/// the working state to the last ulp or downstream replay diverges.
namespace mde::ckpt {

/// Current snapshot format version written by SnapshotWriter.
inline constexpr uint32_t kFormatVersion = 1;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `n` bytes,
/// continuing from `seed` (pass a previous return value to chain).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Typed little-endian append-only buffer: the payload of one section.
class SectionWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// Bit-exact: stores the IEEE-754 bits, not a formatted value.
  void PutDouble(double v);
  void PutString(const std::string& s);
  void PutRngState(const Rng::State& s);

  void PutU64Vec(const std::vector<uint64_t>& v);
  void PutSizeVec(const std::vector<size_t>& v);
  void PutDoubleVec(const std::vector<double>& v);
  void PutBytes(const void* data, size_t n);

  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Typed reader over one section's payload. Reads past the end (or any
/// earlier failure) latch an error status and return zero values, so
/// restore code can decode a full section and check `status()` once.
class SectionReader {
 public:
  explicit SectionReader(std::string_view payload) : data_(payload) {}

  uint8_t U8();
  bool Bool() { return U8() != 0; }
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double Double();
  std::string String();
  Rng::State RngState();

  std::vector<uint64_t> U64Vec();
  std::vector<size_t> SizeVec();
  std::vector<double> DoubleVec();

  /// Error latched by any out-of-bounds read so far.
  const Status& status() const { return status_; }
  /// Remaining unread bytes (0 when fully consumed).
  size_t remaining() const { return data_.size() - pos_; }
  /// Fails the reader if any payload bytes were left unread.
  Status ExpectEnd();

 private:
  bool Take(void* out, size_t n);
  void Fail(const std::string& what);

  std::string_view data_;
  size_t pos_ = 0;
  Status status_;
};

/// Builds one snapshot: header, named sections, trailing CRC.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::string engine) : engine_(std::move(engine)) {}

  /// Adds a section; returns the writer for its payload. The pointer stays
  /// valid until Finish(). Section names must be unique per snapshot.
  SectionWriter* AddSection(const std::string& name);

  /// Serializes header + sections + CRC. The writer is exhausted after.
  std::string Finish();

 private:
  std::string engine_;
  std::vector<std::pair<std::string, SectionWriter>> sections_;
};

/// Parses and validates a snapshot (magic, version, CRC) and exposes its
/// sections by name.
class SnapshotReader {
 public:
  /// Validates the container; fails with InvalidArgument on a bad magic or
  /// truncation, FailedPrecondition on a version or CRC mismatch.
  static Result<SnapshotReader> Parse(std::string bytes);

  const std::string& engine() const { return engine_; }
  bool has_section(const std::string& name) const;
  /// Reader over the named section's payload; NotFound if absent.
  Result<SectionReader> section(const std::string& name) const;

 private:
  SnapshotReader() = default;

  std::string bytes_;  // owns the payload the section offsets point into
  std::string engine_;
  /// (name, payload offset into bytes_, payload length) — offsets rather
  /// than views so the reader stays valid across moves.
  struct Section {
    std::string name;
    size_t offset = 0;
    size_t length = 0;
  };
  std::vector<Section> sections_;
};

/// Writes `bytes` to `path` atomically (temp file + rename), so a crash
/// mid-write never leaves a truncated checkpoint behind.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

/// Reads a whole file; NotFound if it cannot be opened.
Result<std::string> ReadFile(const std::string& path);

}  // namespace mde::ckpt

#endif  // MDE_CKPT_SNAPSHOT_H_
