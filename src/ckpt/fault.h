#ifndef MDE_CKPT_FAULT_H_
#define MDE_CKPT_FAULT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/rng.h"
#include "util/status.h"

/// Deterministic fault injection for the engine loops. Engines register
/// fault points (`MDE_FAULT_POINT("dsgd.round")`) at step boundaries; the
/// process-wide FaultInjector decides — deterministically, off its own RNG
/// substream or an exact hit count — whether the point fires, simulating a
/// worker loss by throwing FaultInjected. The recovery runner
/// (ckpt/recovery.h) catches the throw, restores the last snapshot, and
/// replays; because injection is keyed on per-point hit counts rather than
/// wall clock, a faulty run is exactly reproducible.
///
/// Environment knobs (read once by FaultInjector::Global()):
///   MDE_FAULT_POINT  fire only at this point name (empty/unset = any)
///   MDE_FAULT_AT     fire on the k-th hit of the matching point (1-based)
///   MDE_FAULT_PROB   per-hit fire probability in [0,1] (alternative to _AT)
///   MDE_FAULT_SEED   RNG seed for MDE_FAULT_PROB mode (default 0xfau17)
///   MDE_FAULT_MAX    stop firing after this many faults (default 1)
/// Setting MDE_FAULT_AT or MDE_FAULT_PROB enables injection.
namespace mde::ckpt {

/// Thrown by a firing fault point: simulates losing the worker mid-step.
class FaultInjected : public std::runtime_error {
 public:
  FaultInjected(const std::string& point, uint64_t hit)
      : std::runtime_error("injected fault at '" + point + "' (hit " +
                          std::to_string(hit) + ")"),
        point_(point),
        hit_(hit) {}

  const std::string& point() const { return point_; }
  uint64_t hit() const { return hit_; }

 private:
  std::string point_;
  uint64_t hit_;
};

class FaultInjector {
 public:
  struct Config {
    bool enabled = false;
    /// Fire only at this point ("" = any registered point).
    std::string point;
    /// Fire on exactly the k-th hit of the matching point (1-based;
    /// 0 = disabled, use probability instead).
    uint64_t fire_at_hit = 0;
    /// Per-hit fire probability; drawn from a dedicated RNG substream so
    /// fault schedules are reproducible run to run.
    double probability = 0.0;
    uint64_t seed = 0xfa;
    /// Total faults to inject before going quiet (bounded injection lets
    /// retried steps eventually succeed).
    uint64_t max_faults = 1;
  };

  FaultInjector() : FaultInjector(Config{}) {}
  explicit FaultInjector(const Config& config) { Configure(config); }

  /// Parses the MDE_FAULT_* environment variables.
  static Config FromEnv();

  /// Process-wide injector, configured from the environment on first use.
  /// Tests and tools reconfigure it via Configure().
  static FaultInjector& Global();

  /// Replaces the configuration and resets all hit/fire counters.
  void Configure(const Config& config);

  /// Counts a hit at `point`; returns true if a fault fires now.
  bool ShouldFail(const std::string& point);

  /// Throws FaultInjected if ShouldFail(point).
  void MaybeFail(const std::string& point);

  /// Faults fired since the last Configure.
  uint64_t faults_fired() const;
  /// Hits recorded at `point` since the last Configure.
  uint64_t hits(const std::string& point) const;

 private:
  mutable std::mutex mu_;
  Config config_;
  Rng rng_{0xfa};
  std::map<std::string, uint64_t> hits_;
  uint64_t fired_ = 0;
};

/// Bounded retry with exponential backoff, the graceful-degradation wrapper
/// around an engine step: a step that throws FaultInjected (worker loss) is
/// retried up to `max_retries` times, sleeping backoff_initial_ms *
/// backoff_factor^attempt between attempts. Retries are counted on the
/// `fault.retries` obs counter.
struct RetryPolicy {
  size_t max_retries = 3;
  double backoff_initial_ms = 1.0;
  double backoff_factor = 2.0;
  /// Tests disable real sleeping; the backoff schedule is still computed.
  bool sleep = true;

  /// Backoff before retry `attempt` (0-based), in milliseconds.
  double BackoffMs(size_t attempt) const;

  /// Runs `fn`, retrying on FaultInjected. Returns fn's first OK/non-OK
  /// Status, or Internal after exhausting retries.
  Status Run(const std::string& what, const std::function<Status()>& fn) const;
};

}  // namespace mde::ckpt

/// Registers a fault point: counts a hit on the global injector and throws
/// FaultInjected when the configured fault fires. Call at step boundaries
/// (before the step mutates engine state) so a retry replays cleanly.
#define MDE_FAULT_POINT(name) \
  ::mde::ckpt::FaultInjector::Global().MaybeFail(name)

#endif  // MDE_CKPT_FAULT_H_
