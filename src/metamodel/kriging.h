#ifndef MDE_METAMODEL_KRIGING_H_
#define MDE_METAMODEL_KRIGING_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/solve.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mde::metamodel {

/// Gaussian-process (kriging) metamodel of Section 4.1, equations (4)-(6):
///   Y(x) = beta_0 + M(x),
/// with M a stationary Gaussian process whose covariance is the product
/// exponential of equation (5):
///   Cov[M(x_i), M(x_j)] = tau^2 prod_k exp(-theta_k (x_ik - x_jk)^2).
/// The predictor (6) interpolates the design points exactly (deterministic
/// simulation) unless per-point noise variances are supplied, in which case
/// the stochastic-kriging correction [Sigma_M + Sigma_eps]^{-1} applies.
class KrigingModel {
 public:
  struct Options {
    /// Process variance tau^2.
    double tau2 = 1.0;
    /// Per-dimension inverse length-scales theta_k; a single value is
    /// broadcast to all dimensions.
    std::vector<double> theta = {1.0};
    /// Diagonal jitter added to Sigma for numerical stability.
    double nugget = 1e-8;
    /// When true, tau2 and theta are tuned by maximizing the concentrated
    /// Gaussian log-likelihood (coordinate search over log theta).
    bool fit_hyperparameters = false;
    /// Executor for the O(r^2 d) covariance-matrix assembly (each design
    /// row fills a disjoint band of R, so assembly parallelizes without
    /// affecting the result); nullptr assembles serially. Not owned.
    ThreadPool* pool = nullptr;
  };

  /// Deterministic-simulation kriging: exact responses at design points.
  static Result<KrigingModel> Fit(const linalg::Matrix& x,
                                  const linalg::Vector& y,
                                  const Options& options);

  /// Stochastic kriging (Ankenman-Nelson-Staum): `y` holds the average
  /// response over the replications at each design point and
  /// `point_variances` the variance OF that average (V(x_i)/n_i), forming
  /// the diagonal Sigma_eps.
  static Result<KrigingModel> FitStochastic(
      const linalg::Matrix& x, const linalg::Vector& y,
      const std::vector<double>& point_variances, const Options& options);

  /// BLUP prediction (6) at a point.
  double Predict(const linalg::Vector& point) const;

  /// Kriging mean-squared prediction error at a point (0 at design points
  /// of a deterministic fit).
  double PredictVariance(const linalg::Vector& point) const;

  double beta0() const { return beta0_; }
  const std::vector<double>& theta() const { return theta_; }
  double tau2() const { return tau2_; }

 private:
  KrigingModel() = default;

  static Result<KrigingModel> FitImpl(const linalg::Matrix& x,
                                      const linalg::Vector& y,
                                      const std::vector<double>& noise_diag,
                                      const Options& options);

  double Covariance(const linalg::Vector& a, const linalg::Vector& b) const;

  linalg::Matrix design_;  // r x n design points
  linalg::Vector alpha_;   // Sigma^{-1} (y - beta0 1)
  linalg::Matrix chol_;    // Cholesky factor of Sigma (for variance)
  double beta0_ = 0.0;
  double tau2_ = 1.0;
  std::vector<double> theta_;
};

/// Concentrated log-likelihood of a correlation-parameter vector, used for
/// hyperparameter fitting and exposed for tests. `pool` (optional)
/// parallelizes the R(theta) assembly.
Result<double> KrigingLogLikelihood(const linalg::Matrix& x,
                                    const linalg::Vector& y,
                                    const std::vector<double>& theta,
                                    double nugget,
                                    ThreadPool* pool = nullptr);

}  // namespace mde::metamodel

#endif  // MDE_METAMODEL_KRIGING_H_
