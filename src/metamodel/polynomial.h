#ifndef MDE_METAMODEL_POLYNOMIAL_H_
#define MDE_METAMODEL_POLYNOMIAL_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace mde::metamodel {

/// Polynomial metamodel of Section 4.1, equation (3):
///   Y(x) = beta_0 + sum_i beta_i x_i + sum_{i<j} beta_ij x_i x_j + ...
/// Interaction terms are products of distinct factors up to
/// `max_interaction_order` (1 = linear / main effects only, 2 = two-way
/// interactions, ..., n = the full model). Fit by OLS over design points.
class PolynomialMetamodel {
 public:
  struct Options {
    size_t max_interaction_order = 1;
  };

  /// Fits to r design points (rows of `x`) and responses `y`.
  static Result<PolynomialMetamodel> Fit(const linalg::Matrix& x,
                                         const linalg::Vector& y,
                                         const Options& options);

  /// Predicted response at a point.
  double Predict(const linalg::Vector& point) const;

  /// All coefficients (intercept first, then terms in term_names order).
  const linalg::Vector& coefficients() const { return beta_; }

  /// Human-readable term labels: "1", "x1", "x2", "x1*x2", ...
  const std::vector<std::string>& term_names() const { return names_; }

  /// Main-effect coefficient of factor i (0-based).
  double MainEffect(size_t i) const;

  /// R^2 on the training design.
  double r_squared() const { return r_squared_; }

  size_t num_factors() const { return num_factors_; }

 private:
  PolynomialMetamodel() = default;

  /// Index sets of the factors in each term (empty set = intercept).
  std::vector<std::vector<size_t>> terms_;
  std::vector<std::string> names_;
  linalg::Vector beta_;
  size_t num_factors_ = 0;
  double r_squared_ = 0.0;
};

}  // namespace mde::metamodel

#endif  // MDE_METAMODEL_POLYNOMIAL_H_
