#include "metamodel/polynomial.h"

#include <cmath>

#include "linalg/solve.h"
#include "util/check.h"
#include "util/stats.h"

namespace mde::metamodel {
namespace {

void CombinationsFrom(size_t n, size_t order, size_t start,
                      std::vector<size_t>* current,
                      std::vector<std::vector<size_t>>* out) {
  if (current->size() == order) {
    out->push_back(*current);
    return;
  }
  for (size_t f = start; f < n; ++f) {
    current->push_back(f);
    CombinationsFrom(n, order, f + 1, current, out);
    current->pop_back();
  }
}

/// Enumerates all subsets of {0..n-1} of size 0..max_order, in order of
/// increasing size then lexicographic; the empty set is the intercept.
std::vector<std::vector<size_t>> EnumerateTerms(size_t n, size_t max_order) {
  std::vector<std::vector<size_t>> terms;
  terms.push_back({});  // intercept
  std::vector<size_t> current;
  for (size_t order = 1; order <= std::min(max_order, n); ++order) {
    CombinationsFrom(n, order, 0, &current, &terms);
  }
  return terms;
}

double EvalTerm(const std::vector<size_t>& term,
                const linalg::Vector& point) {
  double v = 1.0;
  for (size_t f : term) v *= point[f];
  return v;
}

std::string TermName(const std::vector<size_t>& term) {
  if (term.empty()) return "1";
  std::string name;
  for (size_t i = 0; i < term.size(); ++i) {
    if (i > 0) name += "*";
    name += "x" + std::to_string(term[i] + 1);
  }
  return name;
}

}  // namespace

Result<PolynomialMetamodel> PolynomialMetamodel::Fit(const linalg::Matrix& x,
                                                     const linalg::Vector& y,
                                                     const Options& options) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("design/response size mismatch");
  }
  if (x.rows() == 0) return Status::InvalidArgument("empty design");
  PolynomialMetamodel model;
  model.num_factors_ = x.cols();
  model.terms_ = EnumerateTerms(x.cols(), options.max_interaction_order);
  if (x.rows() < model.terms_.size()) {
    return Status::InvalidArgument(
        "design has fewer runs than metamodel terms (" +
        std::to_string(x.rows()) + " < " +
        std::to_string(model.terms_.size()) + ")");
  }
  for (const auto& t : model.terms_) model.names_.push_back(TermName(t));
  linalg::Matrix design(x.rows(), model.terms_.size());
  linalg::Vector point(x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) point[c] = x(r, c);
    for (size_t t = 0; t < model.terms_.size(); ++t) {
      design(r, t) = EvalTerm(model.terms_[t], point);
    }
  }
  MDE_ASSIGN_OR_RETURN(model.beta_, linalg::LeastSquares(design, y));
  // Training R^2.
  double ss_res = 0.0;
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) point[c] = x(r, c);
    const double e = y[r] - model.Predict(point);
    ss_res += e * e;
  }
  const double var_y = Variance(y);
  const double ss_tot = var_y * static_cast<double>(y.size() - 1);
  model.r_squared_ = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return model;
}

double PolynomialMetamodel::Predict(const linalg::Vector& point) const {
  MDE_CHECK_EQ(point.size(), num_factors_);
  double y = 0.0;
  for (size_t t = 0; t < terms_.size(); ++t) {
    y += beta_[t] * EvalTerm(terms_[t], point);
  }
  return y;
}

double PolynomialMetamodel::MainEffect(size_t i) const {
  MDE_CHECK_LT(i, num_factors_);
  // Terms are ordered intercept first, then singletons in factor order.
  return beta_[1 + i];
}

}  // namespace mde::metamodel
