#include "metamodel/kriging.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mde::metamodel {
namespace {

/// Product-exponential correlation of equation (5) with tau^2 factored out.
double Correlation(const linalg::Vector& a, const linalg::Vector& b,
                   const std::vector<double>& theta) {
  double log_r = 0.0;
  for (size_t k = 0; k < a.size(); ++k) {
    const double d = a[k] - b[k];
    log_r -= theta[k] * d * d;
  }
  return std::exp(log_r);
}

linalg::Vector RowOf(const linalg::Matrix& m, size_t i) {
  linalg::Vector v(m.cols());
  for (size_t j = 0; j < m.cols(); ++j) v[j] = m(i, j);
  return v;
}

std::vector<double> BroadcastTheta(const std::vector<double>& theta,
                                   size_t dims) {
  if (theta.size() == dims) return theta;
  MDE_CHECK_EQ(theta.size(), 1u);
  return std::vector<double>(dims, theta[0]);
}

/// Builds the correlation matrix R(theta) with nugget and noise on the
/// diagonal (noise relative to tau2). Row band i (cells (i, j>=i) and
/// (j>=i, i)) touches no cell of band i' != i, so bands fill in parallel on
/// `pool` with every cell written exactly once — the result cannot depend
/// on scheduling.
linalg::Matrix BuildR(const linalg::Matrix& x,
                      const std::vector<double>& theta, double nugget,
                      const std::vector<double>& noise_over_tau2,
                      ThreadPool* pool) {
  const size_t r = x.rows();
  linalg::Matrix R(r, r);
  auto fill_band = [&](size_t i) {
    const linalg::Vector xi = RowOf(x, i);
    for (size_t j = i; j < r; ++j) {
      const double c = Correlation(xi, RowOf(x, j), theta);
      R(i, j) = c;
      R(j, i) = c;
    }
    R(i, i) += nugget + (noise_over_tau2.empty() ? 0.0 : noise_over_tau2[i]);
  };
  if (pool != nullptr) {
    pool->ParallelFor(r, fill_band);
  } else {
    for (size_t i = 0; i < r; ++i) fill_band(i);
  }
  return R;
}

}  // namespace

Result<double> KrigingLogLikelihood(const linalg::Matrix& x,
                                    const linalg::Vector& y,
                                    const std::vector<double>& theta,
                                    double nugget, ThreadPool* pool) {
  const size_t r = x.rows();
  if (r == 0 || r != y.size()) {
    return Status::InvalidArgument("bad design/response sizes");
  }
  const std::vector<double> th = BroadcastTheta(theta, x.cols());
  linalg::Matrix R = BuildR(x, th, nugget, {}, pool);
  MDE_ASSIGN_OR_RETURN(linalg::Matrix l, linalg::Cholesky(R));
  // log det R from the Cholesky factor.
  double log_det = 0.0;
  for (size_t i = 0; i < r; ++i) log_det += 2.0 * std::log(l(i, i));
  // GLS mean: beta0 = (1' R^-1 y) / (1' R^-1 1).
  const linalg::Vector ones(r, 1.0);
  const linalg::Vector ri_y = linalg::CholeskySolve(l, y);
  const linalg::Vector ri_1 = linalg::CholeskySolve(l, ones);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < r; ++i) {
    num += ri_y[i];
    den += ri_1[i];
  }
  const double beta0 = den != 0.0 ? num / den : 0.0;
  linalg::Vector resid(r);
  for (size_t i = 0; i < r; ++i) resid[i] = y[i] - beta0;
  const linalg::Vector ri_resid = linalg::CholeskySolve(l, resid);
  double quad = 0.0;
  for (size_t i = 0; i < r; ++i) quad += resid[i] * ri_resid[i];
  const double sigma2 = std::max(quad / static_cast<double>(r), 1e-300);
  // Concentrated log-likelihood (up to constants).
  return -0.5 * (static_cast<double>(r) * std::log(sigma2) + log_det);
}

Result<KrigingModel> KrigingModel::Fit(const linalg::Matrix& x,
                                       const linalg::Vector& y,
                                       const Options& options) {
  return FitImpl(x, y, {}, options);
}

Result<KrigingModel> KrigingModel::FitStochastic(
    const linalg::Matrix& x, const linalg::Vector& y,
    const std::vector<double>& point_variances, const Options& options) {
  if (point_variances.size() != x.rows()) {
    return Status::InvalidArgument("one noise variance per design point");
  }
  return FitImpl(x, y, point_variances, options);
}

Result<KrigingModel> KrigingModel::FitImpl(
    const linalg::Matrix& x, const linalg::Vector& y,
    const std::vector<double>& noise_diag, const Options& options) {
  const size_t r = x.rows();
  if (r == 0 || r != y.size()) {
    return Status::InvalidArgument("bad design/response sizes");
  }
  KrigingModel model;
  model.design_ = x;
  model.theta_ = BroadcastTheta(options.theta, x.cols());
  model.tau2_ = options.tau2;

  if (options.fit_hyperparameters && noise_diag.empty()) {
    // Coordinate search over log10(theta_k) maximizing the concentrated
    // likelihood; 3 sweeps over a bracketing grid is plenty for metamodel
    // use.
    for (int sweep = 0; sweep < 3; ++sweep) {
      for (size_t k = 0; k < model.theta_.size(); ++k) {
        double best_ll = -1e300;
        double best_theta = model.theta_[k];
        for (double log_th = -3.0; log_th <= 3.0; log_th += 0.25) {
          std::vector<double> trial = model.theta_;
          trial[k] = std::pow(10.0, log_th);
          auto ll =
              KrigingLogLikelihood(x, y, trial, options.nugget, options.pool);
          if (ll.ok() && ll.value() > best_ll) {
            best_ll = ll.value();
            best_theta = trial[k];
          }
        }
        model.theta_[k] = best_theta;
      }
    }
    // Profile estimate of tau^2 under the chosen theta.
    linalg::Matrix R =
        BuildR(x, model.theta_, options.nugget, {}, options.pool);
    MDE_ASSIGN_OR_RETURN(linalg::Matrix l, linalg::Cholesky(R));
    const linalg::Vector ones(r, 1.0);
    const linalg::Vector ri_y = linalg::CholeskySolve(l, y);
    const linalg::Vector ri_1 = linalg::CholeskySolve(l, ones);
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < r; ++i) {
      num += ri_y[i];
      den += ri_1[i];
    }
    const double beta0 = den != 0.0 ? num / den : 0.0;
    linalg::Vector resid(r);
    for (size_t i = 0; i < r; ++i) resid[i] = y[i] - beta0;
    const linalg::Vector ri_resid = linalg::CholeskySolve(l, resid);
    double quad = 0.0;
    for (size_t i = 0; i < r; ++i) quad += resid[i] * ri_resid[i];
    model.tau2_ = std::max(quad / static_cast<double>(r), 1e-12);
  }

  // Sigma = tau^2 R + Sigma_eps (+ nugget).
  std::vector<double> noise_over_tau2;
  if (!noise_diag.empty()) {
    noise_over_tau2.resize(r);
    for (size_t i = 0; i < r; ++i) {
      noise_over_tau2[i] = noise_diag[i] / model.tau2_;
    }
  }
  linalg::Matrix R =
      BuildR(x, model.theta_, options.nugget, noise_over_tau2, options.pool);
  R *= model.tau2_;
  MDE_ASSIGN_OR_RETURN(model.chol_, linalg::Cholesky(R));

  // GLS beta0 then alpha = Sigma^{-1}(y - beta0 1).
  const linalg::Vector ones(r, 1.0);
  const linalg::Vector si_y = linalg::CholeskySolve(model.chol_, y);
  const linalg::Vector si_1 = linalg::CholeskySolve(model.chol_, ones);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < r; ++i) {
    num += si_y[i];
    den += si_1[i];
  }
  model.beta0_ = den != 0.0 ? num / den : 0.0;
  linalg::Vector resid(r);
  for (size_t i = 0; i < r; ++i) resid[i] = y[i] - model.beta0_;
  model.alpha_ = linalg::CholeskySolve(model.chol_, resid);
  return model;
}

double KrigingModel::Covariance(const linalg::Vector& a,
                                const linalg::Vector& b) const {
  return tau2_ * Correlation(a, b, theta_);
}

double KrigingModel::Predict(const linalg::Vector& point) const {
  MDE_CHECK_EQ(point.size(), design_.cols());
  double y = beta0_;
  for (size_t i = 0; i < design_.rows(); ++i) {
    y += Covariance(point, RowOf(design_, i)) * alpha_[i];
  }
  return y;
}

double KrigingModel::PredictVariance(const linalg::Vector& point) const {
  MDE_CHECK_EQ(point.size(), design_.cols());
  const size_t r = design_.rows();
  linalg::Vector k(r);
  for (size_t i = 0; i < r; ++i) {
    k[i] = Covariance(point, RowOf(design_, i));
  }
  const linalg::Vector si_k = linalg::CholeskySolve(chol_, k);
  double quad = 0.0;
  for (size_t i = 0; i < r; ++i) quad += k[i] * si_k[i];
  return std::max(0.0, tau2_ - quad);
}

}  // namespace mde::metamodel
