#include "composite/experiment.h"

#include "doe/designs.h"
#include "util/stats.h"

namespace mde::composite {

Result<table::Table> ExperimentResult::AsTable(
    const std::vector<ParameterSpec>& params) const {
  if (params.size() != scaled_design.cols()) {
    return Status::InvalidArgument("one ParameterSpec per design column");
  }
  std::vector<table::ColumnSpec> cols;
  cols.push_back({"point", table::DataType::kInt64});
  for (const auto& p : params) {
    cols.push_back({p.name, table::DataType::kDouble});
  }
  cols.push_back({"mean_response", table::DataType::kDouble});
  cols.push_back({"response_variance", table::DataType::kDouble});
  table::Table t{table::Schema(std::move(cols))};
  for (size_t r = 0; r < scaled_design.rows(); ++r) {
    table::Row row;
    row.push_back(table::Value(static_cast<int64_t>(r)));
    for (size_t c = 0; c < scaled_design.cols(); ++c) {
      row.push_back(table::Value(scaled_design(r, c)));
    }
    row.push_back(table::Value(mean_response[r]));
    row.push_back(table::Value(response_variance[r]));
    t.Append(std::move(row));
  }
  return t;
}

Result<ExperimentResult> RunExperiment(
    const linalg::Matrix& coded_design,
    const std::vector<ParameterSpec>& params,
    const ParameterizedSimulation& sim, const ExperimentOptions& options) {
  if (params.size() != coded_design.cols()) {
    return Status::InvalidArgument("one ParameterSpec per design column");
  }
  if (options.replications == 0) {
    return Status::InvalidArgument("need >= 1 replication");
  }
  std::vector<double> lo, hi;
  for (const auto& p : params) {
    if (p.lo >= p.hi) {
      return Status::InvalidArgument("parameter range empty: " + p.name);
    }
    lo.push_back(p.lo);
    hi.push_back(p.hi);
  }
  ExperimentResult out;
  out.coded_design = coded_design;
  MDE_ASSIGN_OR_RETURN(out.scaled_design,
                       doe::ScaleDesign(coded_design, lo, hi));
  out.mean_response.assign(coded_design.rows(), 0.0);
  out.response_variance.assign(coded_design.rows(), 0.0);
  for (size_t point = 0; point < out.scaled_design.rows(); ++point) {
    // Templating: bind this design point's values to the parameter names.
    std::map<std::string, double> bound;
    for (size_t c = 0; c < params.size(); ++c) {
      bound[params[c].name] = out.scaled_design(point, c);
    }
    RunningStat stat;
    for (size_t rep = 0; rep < options.replications; ++rep) {
      Rng rng = Rng::Substream(
          options.seed + point * 1000003ULL, rep);
      MDE_ASSIGN_OR_RETURN(double y, sim(bound, rng));
      stat.Add(y);
    }
    out.mean_response[point] = stat.mean();
    out.response_variance[point] = stat.variance();
  }
  return out;
}

}  // namespace mde::composite
