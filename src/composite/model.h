#ifndef MDE_COMPOSITE_MODEL_H_
#define MDE_COMPOSITE_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace mde::composite {

/// A component simulation model in a Splash-style composite (Section 2.3,
/// Figure 2): consumes an input dataset, produces an output dataset, and
/// may be stochastic. Datasets are modeled as numeric vectors (a component
/// model's serialized output file).
class Model {
 public:
  virtual ~Model() = default;

  virtual const std::string& name() const = 0;

  /// Runs the model once on `input` using randomness from `rng`.
  virtual Result<std::vector<double>> Execute(const std::vector<double>& input,
                                              Rng& rng) const = 0;

  /// Declared cost of one execution in abstract work units (c1 / c2 in the
  /// paper's analysis). Used by the optimizer and by budgeted runs; wall
  /// clock would inject noise into the reproducibility of experiments.
  virtual double cost() const { return 1.0; }

  /// True when the model's output is a deterministic function of its input
  /// (the V2 = V1 corner of the analysis).
  virtual bool deterministic() const { return false; }
};

/// Adapter wrapping a lambda as a Model.
class FunctionModel : public Model {
 public:
  using Fn = std::function<Result<std::vector<double>>(
      const std::vector<double>&, Rng&)>;

  FunctionModel(std::string name, Fn fn, double cost = 1.0,
                bool deterministic = false)
      : name_(std::move(name)),
        fn_(std::move(fn)),
        cost_(cost),
        deterministic_(deterministic) {}

  const std::string& name() const override { return name_; }
  Result<std::vector<double>> Execute(const std::vector<double>& input,
                                      Rng& rng) const override {
    return fn_(input, rng);
  }
  double cost() const override { return cost_; }
  bool deterministic() const override { return deterministic_; }

 private:
  std::string name_;
  Fn fn_;
  double cost_;
  bool deterministic_;
};

}  // namespace mde::composite

#endif  // MDE_COMPOSITE_MODEL_H_
