#include "composite/result_caching.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/stats.h"

namespace mde::composite {

double GAlpha(double alpha, const CostStats& s) {
  MDE_CHECK(alpha > 0.0 && alpha <= 1.0);
  const double r = std::floor(1.0 / alpha);
  return (alpha * s.c1 + s.c2) *
         (s.v1 + (2.0 * r - alpha * r * (r + 1.0)) * s.v2);
}

double GTildeAlpha(double alpha, const CostStats& s) {
  MDE_CHECK(alpha > 0.0 && alpha <= 1.0);
  return (alpha * s.c1 + s.c2) * (s.v1 + (1.0 / alpha - 1.0) * s.v2);
}

double OptimalAlpha(const CostStats& s, double min_alpha) {
  MDE_CHECK(min_alpha > 0.0 && min_alpha <= 1.0);
  if (s.v2 <= 0.0) return min_alpha;       // M2 insensitive to M1's output
  if (s.v2 >= s.v1) return 1.0;            // M2 is a transformer of M1
  if (s.c1 <= 0.0) return 1.0;             // M1 free: no reason to cache
  const double ratio = (s.c2 / s.c1) / (s.v1 / s.v2 - 1.0);
  return std::clamp(std::sqrt(ratio), min_alpha, 1.0);
}

Result<RcRunResult> RunResultCaching(const Model& m1, const Model& m2,
                                     const std::vector<double>& m1_input,
                                     double alpha, size_t n, uint64_t seed) {
  if (!(alpha > 0.0 && alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (n == 0) return Status::InvalidArgument("n must be positive");
  RcRunResult result;
  const size_t m_n = std::min<size_t>(
      n, static_cast<size_t>(std::ceil(alpha * static_cast<double>(n))));
  // Phase 1: run M1 m_n times, caching the outputs (the "write to disk"
  // step of the RC strategy).
  std::vector<std::vector<double>> cache;
  cache.reserve(m_n);
  Rng rng1 = Rng::Substream(seed, 0);
  for (size_t i = 0; i < m_n; ++i) {
    MDE_ASSIGN_OR_RETURN(std::vector<double> y1, m1.Execute(m1_input, rng1));
    cache.push_back(std::move(y1));
  }
  // Phase 2: n runs of M2, cycling deterministically through the cached M1
  // outputs — the stratified-sampling cycling scheme of the paper.
  Rng rng2 = Rng::Substream(seed, 1);
  result.outputs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double>& y1 = cache[i % m_n];
    MDE_ASSIGN_OR_RETURN(std::vector<double> y2, m2.Execute(y1, rng2));
    if (y2.empty()) {
      return Status::FailedPrecondition("M2 produced empty output");
    }
    result.outputs.push_back(y2[0]);
  }
  result.m1_runs = m_n;
  result.m2_runs = n;
  result.total_cost = static_cast<double>(m_n) * m1.cost() +
                      static_cast<double>(n) * m2.cost();
  result.estimate = Mean(result.outputs);
  return result;
}

Result<RcRunResult> RunWithBudget(const Model& m1, const Model& m2,
                                  const std::vector<double>& m1_input,
                                  double alpha, double budget,
                                  uint64_t seed) {
  if (budget <= 0.0) return Status::InvalidArgument("budget must be > 0");
  // C_n = ceil(alpha n) c1 + n c2; find N(c) = sup{n : C_n <= c}.
  size_t n = 0;
  while (true) {
    const size_t next = n + 1;
    const double cost =
        std::ceil(alpha * static_cast<double>(next)) * m1.cost() +
        static_cast<double>(next) * m2.cost();
    if (cost > budget) break;
    n = next;
  }
  if (n == 0) {
    return Status::FailedPrecondition("budget too small for a single run");
  }
  return RunResultCaching(m1, m2, m1_input, alpha, n, seed);
}

Result<CostStats> EstimateStatistics(const Model& m1, const Model& m2,
                                     const std::vector<double>& m1_input,
                                     size_t pilot_m1, size_t pilot_m2_per,
                                     uint64_t seed) {
  if (pilot_m1 < 2 || pilot_m2_per < 2) {
    return Status::InvalidArgument("pilot sizes must be >= 2");
  }
  Rng rng1 = Rng::Substream(seed, 0);
  Rng rng2 = Rng::Substream(seed, 1);
  RunningStat overall;
  std::vector<double> group_means;
  group_means.reserve(pilot_m1);
  double within_ss = 0.0;
  for (size_t i = 0; i < pilot_m1; ++i) {
    MDE_ASSIGN_OR_RETURN(std::vector<double> y1, m1.Execute(m1_input, rng1));
    RunningStat group;
    for (size_t j = 0; j < pilot_m2_per; ++j) {
      MDE_ASSIGN_OR_RETURN(std::vector<double> y2, m2.Execute(y1, rng2));
      if (y2.empty()) {
        return Status::FailedPrecondition("M2 produced empty output");
      }
      overall.Add(y2[0]);
      group.Add(y2[0]);
    }
    group_means.push_back(group.mean());
    within_ss += group.variance();
  }
  CostStats s;
  s.c1 = m1.cost();
  s.c2 = m2.cost();
  s.v1 = overall.variance();
  // One-way ANOVA: Var(E[Y2 | Y1]) = Var(group means) - Var(within)/k is an
  // unbiased estimate of V2 = Cov of two outputs sharing an input.
  const double between = Variance(group_means);
  const double within = within_ss / static_cast<double>(pilot_m1);
  s.v2 = std::max(0.0, between - within / static_cast<double>(pilot_m2_per));
  return s;
}

Result<CostStats> MetadataStore::Lookup(const std::string& pair_key) const {
  auto it = store_.find(pair_key);
  if (it == store_.end()) {
    return Status::NotFound("no metadata for: " + pair_key);
  }
  return it->second;
}

void MetadataStore::Store(const std::string& pair_key,
                          const CostStats& stats) {
  store_[pair_key] = stats;
}

void MetadataStore::Refine(const std::string& pair_key,
                           const CostStats& observed, double w) {
  MDE_CHECK(w >= 0.0 && w <= 1.0);
  auto it = store_.find(pair_key);
  if (it == store_.end()) {
    store_[pair_key] = observed;
    return;
  }
  CostStats& s = it->second;
  s.c1 = (1.0 - w) * s.c1 + w * observed.c1;
  s.c2 = (1.0 - w) * s.c2 + w * observed.c2;
  s.v1 = (1.0 - w) * s.v1 + w * observed.v1;
  s.v2 = (1.0 - w) * s.v2 + w * observed.v2;
}

}  // namespace mde::composite
