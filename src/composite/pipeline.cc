#include "composite/pipeline.h"

#include "util/check.h"

namespace mde::composite {

void Pipeline::AddStage(std::shared_ptr<const Model> model,
                        Transformation transform) {
  MDE_CHECK(model != nullptr);
  stages_.push_back({std::move(model), std::move(transform)});
}

Result<std::vector<double>> Pipeline::Execute(
    const std::vector<double>& input, Rng& rng) const {
  if (stages_.empty()) {
    return Status::FailedPrecondition("pipeline has no stages");
  }
  std::vector<double> data = input;
  for (const Stage& stage : stages_) {
    if (stage.transform) {
      MDE_ASSIGN_OR_RETURN(data, stage.transform(data));
    }
    MDE_ASSIGN_OR_RETURN(data, stage.model->Execute(data, rng));
  }
  return data;
}

Result<std::vector<double>> Pipeline::MonteCarlo(
    const std::vector<double>& input, size_t n, uint64_t seed) const {
  std::vector<double> outputs;
  outputs.reserve(n);
  for (size_t rep = 0; rep < n; ++rep) {
    Rng rng = Rng::Substream(seed, rep);
    MDE_ASSIGN_OR_RETURN(std::vector<double> out, Execute(input, rng));
    if (out.empty()) {
      return Status::FailedPrecondition("pipeline produced empty output");
    }
    outputs.push_back(out[0]);
  }
  return outputs;
}

double Pipeline::CostPerRun() const {
  double c = 0.0;
  for (const Stage& stage : stages_) c += stage.model->cost();
  return c;
}

}  // namespace mde::composite
