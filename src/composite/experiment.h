#ifndef MDE_COMPOSITE_EXPERIMENT_H_
#define MDE_COMPOSITE_EXPERIMENT_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "table/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace mde::composite {

/// Splash's experiment-management layer (Section 4.2): metadata gives the
/// experimenter a unified view of composite-model parameters, a designed
/// experiment chooses which parameter combinations to simulate, and the
/// runtime "templating" support sets each component model's parameters per
/// run. Here a parameterized simulation receives its parameters as a named
/// map — the in-memory analogue of synthesizing per-model input files.
using ParameterizedSimulation = std::function<Result<double>(
    const std::map<std::string, double>& params, Rng& rng)>;

/// One tunable parameter with its feasible range (the experimenter's
/// "low/high values" in coded-design terms).
struct ParameterSpec {
  std::string name;
  double lo = 0.0;
  double hi = 1.0;
};

struct ExperimentOptions {
  /// Monte Carlo replications per design point.
  size_t replications = 3;
  uint64_t seed = 1;
};

/// Results of one designed experiment.
struct ExperimentResult {
  /// The coded design that was run (one row per design point).
  linalg::Matrix coded_design;
  /// The same design in physical parameter units.
  linalg::Matrix scaled_design;
  /// Mean response per design point (over replications).
  linalg::Vector mean_response;
  /// Sample variance of the response per design point.
  linalg::Vector response_variance;

  /// Unified tabular view: one row per design point with parameter columns
  /// plus mean/variance columns — the "experiment browser" relation.
  Result<table::Table> AsTable(
      const std::vector<ParameterSpec>& params) const;
};

/// Runs `sim` at every row of `coded_design` (scaled onto the parameter
/// ranges), with `replications` independent replications per point. Coded
/// designs may come from any generator in mde::doe (factorial, fractional,
/// LH, NOLH). Replication r of design point p uses substream (p, r) of the
/// seed, so results are reproducible and extendable.
Result<ExperimentResult> RunExperiment(
    const linalg::Matrix& coded_design,
    const std::vector<ParameterSpec>& params,
    const ParameterizedSimulation& sim, const ExperimentOptions& options);

}  // namespace mde::composite

#endif  // MDE_COMPOSITE_EXPERIMENT_H_
