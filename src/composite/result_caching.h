#ifndef MDE_COMPOSITE_RESULT_CACHING_H_
#define MDE_COMPOSITE_RESULT_CACHING_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "composite/model.h"
#include "util/status.h"

namespace mde::composite {

/// The statistics S = (c1, c2, V1, V2) driving the result-caching
/// optimization (Section 2.3): expected per-run costs of M1 and M2, the
/// variance V1 of an M2 output, and the covariance V2 of two M2 outputs
/// sharing an M1 input.
struct CostStats {
  double c1 = 1.0;
  double c2 = 1.0;
  double v1 = 1.0;
  double v2 = 0.0;
};

/// Asymptotic variance-cost product
///   g(alpha) = (alpha c1 + c2) * (V1 + [2 r - alpha r (r+1)] V2),
/// with r = floor(1/alpha). 1/g(alpha) is the (asymptotic) efficiency of
/// the budget-constrained estimator.
double GAlpha(double alpha, const CostStats& s);

/// The paper's smooth approximation g~(alpha) obtained by r ~ 1/alpha:
///   g~(alpha) = (alpha c1 + c2) * (V1 + (1/alpha - 1) V2).
double GTildeAlpha(double alpha, const CostStats& s);

/// The closed-form minimizer of g~:
///   alpha* = sqrt( (c2/c1) / (V1/V2 - 1) ),
/// truncated into [min_alpha, 1]. Degenerate cases: V2 <= 0 -> min_alpha
/// (run M1 as rarely as allowed); V2 >= V1 -> 1 (M2 is a transformer; rerun
/// M1 every time).
double OptimalAlpha(const CostStats& s, double min_alpha = 1e-3);

/// Outcome of a result-caching run.
struct RcRunResult {
  /// theta_n: mean of the n M2 outputs.
  double estimate = 0.0;
  size_t m1_runs = 0;
  size_t m2_runs = 0;
  /// Declared-cost total: m1_runs * c1 + m2_runs * c2.
  double total_cost = 0.0;
  /// The individual M2 outputs (first component of each output vector).
  std::vector<double> outputs;
};

/// Runs the two-model series composite of Figure 2 under result caching:
/// executes M1 only m_n = ceil(alpha * n) times, writes those outputs to
/// the cache, and cycles through them deterministically as inputs to the n
/// executions of M2. alpha = 1 recovers the no-caching baseline. M2's
/// scalar output is the first component of its output vector.
Result<RcRunResult> RunResultCaching(const Model& m1, const Model& m2,
                                     const std::vector<double>& m1_input,
                                     double alpha, size_t n, uint64_t seed);

/// Budget-constrained variant: chooses N(c) = sup{n : C_n <= c} for the
/// declared costs and runs result caching with that n.
Result<RcRunResult> RunWithBudget(const Model& m1, const Model& m2,
                                  const std::vector<double>& m1_input,
                                  double alpha, double budget, uint64_t seed);

/// Pilot estimation of S: runs M1 `pilot_m1` times and M2 `pilot_m2_per`
/// times per cached M1 output. V1 is the overall output variance; V2 is
/// estimated from the between-group variance of the per-M1-input means
/// (one-way ANOVA decomposition). Costs are taken from the models'
/// declared costs.
Result<CostStats> EstimateStatistics(const Model& m1, const Model& m2,
                                     const std::vector<double>& m1_input,
                                     size_t pilot_m1, size_t pilot_m2_per,
                                     uint64_t seed);

/// Splash-style model-metadata store: remembers per-model-pair statistics
/// across runs so pilot costs are amortized, and refines them with
/// observations from production runs (exponential moving average).
class MetadataStore {
 public:
  /// Returns stored statistics for the pair, if any.
  Result<CostStats> Lookup(const std::string& pair_key) const;

  /// Records fresh statistics (overwrites).
  void Store(const std::string& pair_key, const CostStats& stats);

  /// Blends new observations into stored statistics with weight `w` on the
  /// new data (continual refinement during production use).
  void Refine(const std::string& pair_key, const CostStats& observed,
              double w);

  size_t size() const { return store_.size(); }

 private:
  std::map<std::string, CostStats> store_;
};

}  // namespace mde::composite

#endif  // MDE_COMPOSITE_RESULT_CACHING_H_
