#ifndef MDE_COMPOSITE_PIPELINE_H_
#define MDE_COMPOSITE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "composite/model.h"
#include "util/status.h"

namespace mde::composite {

/// Data transformation inserted between two component models in a
/// composite (the Splash data-harmonization step): rescaling, reshaping,
/// time alignment, etc.
using Transformation =
    std::function<Result<std::vector<double>>(const std::vector<double>&)>;

/// A series composite model M = M_k o T_{k-1} o ... o T_1 o M_1: models
/// communicate only by reading and writing datasets (loose coupling), with
/// a transformation harmonizing each dataset hand-off.
class Pipeline {
 public:
  /// Appends a stage; `transform` harmonizes this stage's input (identity
  /// if null). The first stage's transform applies to the pipeline input.
  void AddStage(std::shared_ptr<const Model> model,
                Transformation transform = nullptr);

  size_t num_stages() const { return stages_.size(); }

  /// One end-to-end execution (one Monte Carlo repetition).
  Result<std::vector<double>> Execute(const std::vector<double>& input,
                                      Rng& rng) const;

  /// n independent repetitions; returns the first component of each final
  /// output.
  Result<std::vector<double>> MonteCarlo(const std::vector<double>& input,
                                         size_t n, uint64_t seed) const;

  /// Total declared cost of one end-to-end execution.
  double CostPerRun() const;

 private:
  struct Stage {
    std::shared_ptr<const Model> model;
    Transformation transform;
  };
  std::vector<Stage> stages_;
};

}  // namespace mde::composite

#endif  // MDE_COMPOSITE_PIPELINE_H_
