#ifndef MDE_DSGD_MATRIX_COMPLETION_H_
#define MDE_DSGD_MATRIX_COMPLETION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/recovery.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mde::dsgd {

/// The problem DSGD was invented for (Gemulla et al., paper reference
/// [21]): low-rank matrix completion for recommender systems. Observed
/// entries (i, j, v) of an m x n matrix are factorized as V ~ W H' by SGD
/// over the squared error; DSGD partitions the matrix into d x d blocks
/// and runs SGD in parallel over "diagonal" strata — block sets sharing no
/// rows or columns — so workers never conflict and no factor data is
/// shuffled mid-stratum.

/// One observed matrix entry.
struct RatingEntry {
  size_t row = 0;
  size_t col = 0;
  double value = 0.0;
};

/// Rank-k factor model: predicted(i, j) = w_i . h_j.
class FactorModel {
 public:
  FactorModel(size_t rows, size_t cols, size_t rank, uint64_t seed);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t rank() const { return rank_; }

  double Predict(size_t i, size_t j) const;

  /// Root-mean-squared error over the given entries.
  double Rmse(const std::vector<RatingEntry>& entries) const;

  /// Row factor w_i (length rank), mutable for the SGD kernels.
  double* RowFactor(size_t i) { return &w_[i * rank_]; }
  double* ColFactor(size_t j) { return &h_[j * rank_]; }
  const double* RowFactor(size_t i) const { return &w_[i * rank_]; }
  const double* ColFactor(size_t j) const { return &h_[j * rank_]; }

  /// Flat factor storage (rows x rank / cols x rank), for checkpoint
  /// serialization.
  const std::vector<double>& row_data() const { return w_; }
  const std::vector<double>& col_data() const { return h_; }
  /// Replaces the factor storage; sizes must match the model's shape.
  Status SetData(std::vector<double> w, std::vector<double> h);

 private:
  size_t rows_, cols_, rank_;
  std::vector<double> w_;  // rows x rank
  std::vector<double> h_;  // cols x rank
};

struct CompletionOptions {
  size_t rank = 8;
  /// L2 regularization on the factors.
  double lambda = 0.01;
  /// SGD step size (decays per epoch by decay).
  double step = 0.05;
  double decay = 0.98;
  size_t epochs = 40;
  /// Blocking factor d: the matrix is partitioned into d x d blocks and
  /// each epoch runs d "sub-epochs", one per diagonal stratum.
  size_t blocks = 4;
  uint64_t seed = 7;
};

struct CompletionResult {
  FactorModel model;
  /// Training RMSE after each epoch.
  std::vector<double> rmse_per_epoch;
};

/// Sequential SGD baseline: one pass over shuffled entries per epoch.
Result<CompletionResult> CompleteSgd(const std::vector<RatingEntry>& train,
                                     size_t rows, size_t cols,
                                     const CompletionOptions& options);

/// Resumable DSGD matrix completion: one StepOnce() per diagonal stratum
/// ("sub-epoch"), with a (epoch, stratum) block cursor, the per-epoch
/// column permutation, the decayed step size, the schedule RNG position,
/// and both factor matrices captured in the snapshot — restore finishes
/// bit-identically to an uninterrupted run at any pool width. Fault point:
/// "mc.sub_epoch". The rating entries are immutable problem data and are
/// not serialized.
class MatrixCompletionRun : public ckpt::Checkpointable {
 public:
  /// Fails (via status()) on invalid entries; check before stepping.
  MatrixCompletionRun(const std::vector<RatingEntry>& train, size_t rows,
                      size_t cols, ThreadPool& pool,
                      const CompletionOptions& options);

  /// Construction-time validation result.
  const Status& status() const { return status_; }

  std::string engine_name() const override { return "matrix_completion"; }
  bool Done() const override { return epoch_ >= options_.epochs; }
  /// One diagonal stratum (d blocks in parallel).
  Status StepOnce() override;
  Result<std::string> Save() const override;
  Status Restore(const std::string& snapshot) override;

  size_t epoch() const { return epoch_; }
  size_t sub_epoch() const { return sub_; }
  Result<CompletionResult> Finish();

 private:
  const std::vector<RatingEntry>& train_;
  size_t rows_, cols_;
  ThreadPool& pool_;
  CompletionOptions options_;
  Status status_;
  size_t d_ = 1;
  /// Entries bucketed into d x d blocks (derived from train_, rebuilt on
  /// construction — not serialized).
  std::vector<std::vector<RatingEntry>> block_;
  CompletionResult result_;
  Rng rng_;
  double step_ = 0.0;
  std::vector<size_t> perm_;
  /// Block cursor: next stratum `sub_` of epoch `epoch_`.
  size_t epoch_ = 0;
  size_t sub_ = 0;
};

/// DSGD: each epoch visits `blocks` diagonal strata; within a stratum the
/// blocks touch disjoint row and column factors and are processed in
/// parallel on `pool`. Converges to the same solution quality as
/// sequential SGD (the Gemulla et al. result) while shuffling no factor
/// state between workers. One-shot wrapper over MatrixCompletionRun.
Result<CompletionResult> CompleteDsgd(const std::vector<RatingEntry>& train,
                                      size_t rows, size_t cols,
                                      ThreadPool& pool,
                                      const CompletionOptions& options);

/// Synthetic low-rank ratings: a rank-r ground truth plus Gaussian noise,
/// sampled at `density` of the cells. Returns (train, test) split.
struct RatingsDataset {
  std::vector<RatingEntry> train;
  std::vector<RatingEntry> test;
  size_t rows = 0;
  size_t cols = 0;
};
RatingsDataset SyntheticRatings(size_t rows, size_t cols, size_t true_rank,
                                double density, double noise_sd,
                                uint64_t seed);

}  // namespace mde::dsgd

#endif  // MDE_DSGD_MATRIX_COMPLETION_H_
