#include "dsgd/dsgd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "ckpt/snapshot.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/stat.h"
#include "obs/trace.h"
#include "util/check.h"

namespace mde::dsgd {

double SparseRow::Dot(const std::vector<double>& x) const {
  double s = 0.0;
  for (const auto& [j, a] : entries) s += a * x[j];
  return s;
}

double ResidualNorm(const std::vector<SparseRow>& rows,
                    const std::vector<double>& x) {
  double ss = 0.0;
  for (const SparseRow& r : rows) {
    const double e = r.Dot(x) - r.b;
    ss += e * e;
  }
  return std::sqrt(ss);
}

namespace {

/// One downhill step on row `r`. `m` is the total row count (the paper's
/// gradient-scale factor for the kSgd rule); `eps` is the current step size.
inline void Step(const SparseRow& r, StepRule rule, double eps, double m,
                 std::vector<double>& x) {
  const double err = r.Dot(x) - r.b;
  if (rule == StepRule::kSgd) {
    // grad L_I(x) = 2 (a.x - b) a; overall gradient approximated by m*grad.
    const double scale = eps * 2.0 * m * err;
    for (const auto& [j, a] : r.entries) x[j] -= scale * a;
  } else {
    double norm2 = 0.0;
    for (const auto& [j, a] : r.entries) norm2 += a * a;
    if (norm2 == 0.0) return;
    const double scale = eps * err / norm2;
    for (const auto& [j, a] : r.entries) x[j] -= scale * a;
  }
}

inline double StepSize(const SgdOptions& opt, size_t n) {
  if (opt.rule == StepRule::kKaczmarz) return opt.step0;
  return opt.step0 * std::pow(static_cast<double>(n + 1), -opt.alpha);
}

}  // namespace

SgdResult SolveSgd(const std::vector<SparseRow>& rows, size_t dim,
                   const SgdOptions& options) {
  MDE_CHECK(!rows.empty());
  Rng rng(options.seed);
  SgdResult result;
  result.x.assign(dim, 0.0);
  const double m = static_cast<double>(rows.size());
  for (size_t n = 0; n < options.iterations; ++n) {
    const size_t i = rng.NextBounded(rows.size());
    Step(rows[i], options.rule, StepSize(options, n), m, result.x);
    ++result.updates;
    if (options.trace_every > 0 && (n + 1) % options.trace_every == 0) {
      result.residual_trace.push_back(ResidualNorm(rows, result.x));
    }
  }
  result.residual = ResidualNorm(rows, result.x);
  return result;
}

std::vector<SparseRow> RowsFromTridiagonal(const linalg::Tridiagonal& a,
                                           const linalg::Vector& b) {
  const size_t n = a.size();
  MDE_CHECK_EQ(b.size(), n);
  std::vector<SparseRow> rows(n);
  for (size_t i = 0; i < n; ++i) {
    SparseRow& r = rows[i];
    if (i > 0) r.entries.push_back({i - 1, a.lower[i - 1]});
    r.entries.push_back({i, a.diag[i]});
    if (i + 1 < n) r.entries.push_back({i + 1, a.upper[i]});
    r.b = b[i];
  }
  return rows;
}

std::vector<std::vector<size_t>> TridiagonalStrata(size_t num_rows) {
  std::vector<std::vector<size_t>> strata(std::min<size_t>(3, num_rows));
  for (size_t i = 0; i < num_rows; ++i) {
    strata[i % strata.size()].push_back(i);
  }
  return strata;
}

bool StrataAreConflictFree(const std::vector<SparseRow>& rows,
                           const std::vector<std::vector<size_t>>& strata) {
  for (const auto& stratum : strata) {
    std::unordered_set<size_t> touched;
    for (size_t ri : stratum) {
      for (const auto& [j, a] : rows[ri].entries) {
        (void)a;
        if (!touched.insert(j).second) return false;
      }
    }
  }
  return true;
}

DsgdRun::DsgdRun(const std::vector<SparseRow>& rows, size_t dim,
                 const std::vector<std::vector<size_t>>& strata,
                 ThreadPool& pool, const DsgdOptions& options)
    : rows_(rows),
      dim_(dim),
      strata_(strata),
      pool_(pool),
      options_(options),
      rng_(options.sgd.seed),
      health_("dsgd") {
  MDE_CHECK(!rows.empty());
  MDE_CHECK(!strata.empty());
  result_.x.assign(dim, 0.0);
  // Regenerative stratum schedule: each cycle visits every stratum exactly
  // once in (optionally random) order, so equal time is spent in each
  // stratum in the long run — the condition for w.p.-1 convergence.
  order_.resize(strata.size());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
#ifndef MDE_OBS_DISABLED
  uint64_t fp = obs::FingerprintString("dsgd.run");
  fp = obs::FingerprintMix(fp, dim);
  fp = obs::FingerprintMix(fp, strata.size());
  fp = obs::FingerprintMix(fp, options.rounds);
  fingerprint_ = obs::FingerprintMix(fp, options.sgd.seed);
#endif
}

Status DsgdRun::StepOnce() {
  if (Done()) return Status::FailedPrecondition("dsgd: already finished");
  // Per-round attribution root: the per-stratum worker tasks inherit this
  // context through ThreadPool::Submit.
  MDE_OBS_QUERY_SCOPE("dsgd.run", fingerprint_);
  // Fault point before any mutation: a throw here leaves the run exactly
  // at the last round boundary, so restore + replay is bit-identical.
  MDE_FAULT_POINT("dsgd.round");
  const size_t round = round_;
  if (round % strata_.size() == 0 && options_.random_stratum_order) {
    for (size_t i = order_.size(); i > 1; --i) {
      std::swap(order_[i - 1], order_[rng_.NextBounded(i)]);
    }
  }
  const auto& stratum = strata_[order_[round % strata_.size()]];
  if (stratum.empty()) {
    ++round_;
    return Status::OK();
  }
  MDE_TRACE_SPAN("dsgd.stratum_visit");
  MDE_OBS_COUNT("dsgd.stratum_visits", 1);
  const size_t visit_updates = options_.updates_per_visit == 0
                                   ? stratum.size()
                                   : options_.updates_per_visit;
  // Within a stratum no two rows share an unknown, so the stratum's rows
  // can be partitioned across workers and updated in parallel with no
  // locks and no data shuffling. Worker RNGs are derived per (round,
  // worker), never carried across rounds — the checkpoint only needs the
  // schedule RNG.
  const size_t workers = pool_.num_threads();
  const double m = static_cast<double>(rows_.size());
  const double eps = StepSize(options_.sgd, global_updates_);
  std::vector<Rng> worker_rngs;
  worker_rngs.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    worker_rngs.push_back(Rng::Substream(options_.sgd.seed + round, w));
  }
  pool_.ParallelFor(workers, [&](size_t w) {
    Rng& wr = worker_rngs[w];
    // Worker w owns the contiguous block of the stratum's rows.
    const size_t per = (stratum.size() + workers - 1) / workers;
    const size_t lo = std::min(stratum.size(), w * per);
    const size_t hi = std::min(stratum.size(), lo + per);
    if (lo >= hi) return;
    const size_t updates =
        (visit_updates * (hi - lo) + stratum.size() - 1) / stratum.size();
    for (size_t u = 0; u < updates; ++u) {
      const size_t idx = lo + wr.NextBounded(hi - lo);
      Step(rows_[stratum[idx]], options_.sgd.rule, eps, m, result_.x);
    }
  });
  global_updates_ += visit_updates;
  result_.updates += visit_updates;
  MDE_OBS_COUNT("dsgd.updates", visit_updates);
  if (options_.sgd.trace_every > 0 &&
      (round + 1) % options_.sgd.trace_every == 0) {
    const double res = ResidualNorm(rows_, result_.x);
    result_.residual_trace.push_back(res);
    MDE_OBS_GAUGE_SET("dsgd.epoch_loss", res);
    health_.Add(res);
  }
  ++round_;
  return Status::OK();
}

Result<std::string> DsgdRun::Save() const {
  ckpt::SnapshotWriter snap(engine_name());
  ckpt::SectionWriter* s = snap.AddSection("state");
  s->PutU64(round_);
  s->PutU64(global_updates_);
  s->PutRngState(rng_.state());
  s->PutSizeVec(order_);
  s->PutDoubleVec(result_.x);
  s->PutU64(result_.updates);
  s->PutDoubleVec(result_.residual_trace);
  const obs::ConvergenceMonitor::State h = health_.state();
  s->PutU64(h.n);
  s->PutDouble(h.best);
  s->PutU64(h.since_improvement);
  s->PutU8(h.verdict);
  return snap.Finish();
}

Status DsgdRun::Restore(const std::string& snapshot) {
  MDE_ASSIGN_OR_RETURN(ckpt::SnapshotReader snap,
                       ckpt::SnapshotReader::Parse(snapshot));
  if (snap.engine() != engine_name()) {
    return Status::InvalidArgument("checkpoint is for engine '" +
                                   snap.engine() + "', not dsgd");
  }
  MDE_ASSIGN_OR_RETURN(ckpt::SectionReader s, snap.section("state"));
  round_ = s.U64();
  global_updates_ = s.U64();
  rng_.set_state(s.RngState());
  order_ = s.SizeVec();
  result_.x = s.DoubleVec();
  result_.updates = s.U64();
  result_.residual_trace = s.DoubleVec();
  obs::ConvergenceMonitor::State h;
  h.n = s.U64();
  h.best = s.Double();
  h.since_improvement = s.U64();
  h.verdict = s.U8();
  MDE_RETURN_NOT_OK(s.ExpectEnd());
  if (order_.size() != strata_.size() || result_.x.size() != dim_) {
    return Status::InvalidArgument(
        "dsgd checkpoint does not match this problem");
  }
  health_.set_state(h);
  return Status::OK();
}

SgdResult DsgdRun::Finish() {
  result_.residual = ResidualNorm(rows_, result_.x);
  MDE_OBS_GAUGE_SET("dsgd.epoch_loss", result_.residual);
  health_.Add(result_.residual);
  return result_;
}

SgdResult SolveDsgd(const std::vector<SparseRow>& rows, size_t dim,
                    const std::vector<std::vector<size_t>>& strata,
                    ThreadPool& pool, const DsgdOptions& options) {
  DsgdRun run(rows, dim, strata, pool, options);
  while (!run.Done()) {
    const Status st = run.StepOnce();
    MDE_CHECK_MSG(st.ok(), st.message().c_str());
  }
  return run.Finish();
}

SgdResult SolveTridiagonalDsgd(const linalg::Tridiagonal& a,
                               const linalg::Vector& b, ThreadPool& pool,
                               const DsgdOptions& options) {
  const auto rows = RowsFromTridiagonal(a, b);
  const auto strata = TridiagonalStrata(rows.size());
  return SolveDsgd(rows, a.size(), strata, pool, options);
}

}  // namespace mde::dsgd
