#include "dsgd/matrix_completion.h"

#include <algorithm>
#include <cmath>

#include "ckpt/snapshot.h"
#include "util/check.h"
#include "util/distributions.h"

namespace mde::dsgd {

FactorModel::FactorModel(size_t rows, size_t cols, size_t rank,
                         uint64_t seed)
    : rows_(rows), cols_(cols), rank_(rank) {
  MDE_CHECK(rows > 0 && cols > 0 && rank > 0);
  Rng rng(seed);
  w_.resize(rows * rank);
  h_.resize(cols * rank);
  const double scale = 1.0 / std::sqrt(static_cast<double>(rank));
  for (double& v : w_) v = scale * (rng.NextDouble() - 0.5);
  for (double& v : h_) v = scale * (rng.NextDouble() - 0.5);
}

double FactorModel::Predict(size_t i, size_t j) const {
  const double* wi = RowFactor(i);
  const double* hj = ColFactor(j);
  double s = 0.0;
  for (size_t k = 0; k < rank_; ++k) s += wi[k] * hj[k];
  return s;
}

Status FactorModel::SetData(std::vector<double> w, std::vector<double> h) {
  if (w.size() != rows_ * rank_ || h.size() != cols_ * rank_) {
    return Status::InvalidArgument("factor data does not match model shape");
  }
  w_ = std::move(w);
  h_ = std::move(h);
  return Status::OK();
}

double FactorModel::Rmse(const std::vector<RatingEntry>& entries) const {
  MDE_CHECK(!entries.empty());
  double ss = 0.0;
  for (const RatingEntry& e : entries) {
    const double err = Predict(e.row, e.col) - e.value;
    ss += err * err;
  }
  return std::sqrt(ss / static_cast<double>(entries.size()));
}

namespace {

/// One SGD update on entry e: gradient of (w.h - v)^2 + lambda(|w|^2+|h|^2).
inline void SgdUpdate(FactorModel* model, const RatingEntry& e, double step,
                      double lambda) {
  double* w = model->RowFactor(e.row);
  double* h = model->ColFactor(e.col);
  const size_t rank = model->rank();
  double pred = 0.0;
  for (size_t k = 0; k < rank; ++k) pred += w[k] * h[k];
  const double err = pred - e.value;
  for (size_t k = 0; k < rank; ++k) {
    const double wk = w[k];
    w[k] -= step * (err * h[k] + lambda * wk);
    h[k] -= step * (err * wk + lambda * h[k]);
  }
}

Status ValidateEntries(const std::vector<RatingEntry>& train, size_t rows,
                       size_t cols) {
  if (train.empty()) return Status::InvalidArgument("no training entries");
  for (const RatingEntry& e : train) {
    if (e.row >= rows || e.col >= cols) {
      return Status::OutOfRange("rating entry outside matrix");
    }
  }
  return Status::OK();
}

}  // namespace

Result<CompletionResult> CompleteSgd(const std::vector<RatingEntry>& train,
                                     size_t rows, size_t cols,
                                     const CompletionOptions& options) {
  MDE_RETURN_NOT_OK(ValidateEntries(train, rows, cols));
  CompletionResult result{FactorModel(rows, cols, options.rank,
                                      options.seed),
                          {}};
  Rng rng(options.seed + 1);
  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  double step = options.step;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    for (size_t i : order) {
      SgdUpdate(&result.model, train[i], step, options.lambda);
    }
    step *= options.decay;
    result.rmse_per_epoch.push_back(result.model.Rmse(train));
  }
  return result;
}

MatrixCompletionRun::MatrixCompletionRun(
    const std::vector<RatingEntry>& train, size_t rows, size_t cols,
    ThreadPool& pool, const CompletionOptions& options)
    : train_(train),
      rows_(rows),
      cols_(cols),
      pool_(pool),
      options_(options),
      status_(ValidateEntries(train, rows, cols)),
      d_(std::max<size_t>(1, options.blocks)),
      result_{FactorModel(rows, cols, options.rank, options.seed), {}},
      rng_(options.seed + 1),
      step_(options.step) {
  if (!status_.ok()) return;
  // Bucket entries into d x d blocks (derived data; never serialized).
  block_.resize(d_ * d_);
  const size_t row_span = (rows + d_ - 1) / d_;
  const size_t col_span = (cols + d_ - 1) / d_;
  for (const RatingEntry& e : train) {
    block_[(e.row / row_span) * d_ + e.col / col_span].push_back(e);
  }
  perm_.resize(d_);
  for (size_t i = 0; i < d_; ++i) perm_[i] = i;
}

Status MatrixCompletionRun::StepOnce() {
  MDE_RETURN_NOT_OK(status_);
  if (Done()) {
    return Status::FailedPrecondition("matrix completion: already finished");
  }
  MDE_FAULT_POINT("mc.sub_epoch");
  if (sub_ == 0) {
    // A fresh random column permutation per epoch: the strata are
    // {(b, perm[(b + s) mod d]) : b} for sub-epoch s. Within a stratum the
    // blocks share no rows or columns, so the parallel updates commute.
    for (size_t i = d_; i > 1; --i) {
      std::swap(perm_[i - 1], perm_[rng_.NextBounded(i)]);
    }
  }
  const size_t sub = sub_;
  pool_.ParallelFor(d_, [&](size_t b) {
    const size_t col_block = perm_[(b + sub) % d_];
    for (const RatingEntry& e : block_[b * d_ + col_block]) {
      SgdUpdate(&result_.model, e, step_, options_.lambda);
    }
  });
  if (++sub_ == d_) {
    sub_ = 0;
    ++epoch_;
    step_ *= options_.decay;
    result_.rmse_per_epoch.push_back(result_.model.Rmse(train_));
  }
  return Status::OK();
}

Result<std::string> MatrixCompletionRun::Save() const {
  MDE_RETURN_NOT_OK(status_);
  ckpt::SnapshotWriter snap(engine_name());
  ckpt::SectionWriter* s = snap.AddSection("state");
  s->PutU64(epoch_);
  s->PutU64(sub_);
  s->PutDouble(step_);
  s->PutRngState(rng_.state());
  s->PutSizeVec(perm_);
  s->PutDoubleVec(result_.model.row_data());
  s->PutDoubleVec(result_.model.col_data());
  s->PutDoubleVec(result_.rmse_per_epoch);
  return snap.Finish();
}

Status MatrixCompletionRun::Restore(const std::string& snapshot) {
  MDE_RETURN_NOT_OK(status_);
  MDE_ASSIGN_OR_RETURN(ckpt::SnapshotReader snap,
                       ckpt::SnapshotReader::Parse(snapshot));
  if (snap.engine() != engine_name()) {
    return Status::InvalidArgument("checkpoint is for engine '" +
                                   snap.engine() +
                                   "', not matrix_completion");
  }
  MDE_ASSIGN_OR_RETURN(ckpt::SectionReader s, snap.section("state"));
  epoch_ = s.U64();
  sub_ = s.U64();
  step_ = s.Double();
  rng_.set_state(s.RngState());
  perm_ = s.SizeVec();
  std::vector<double> w = s.DoubleVec();
  std::vector<double> h = s.DoubleVec();
  result_.rmse_per_epoch = s.DoubleVec();
  MDE_RETURN_NOT_OK(s.ExpectEnd());
  if (perm_.size() != d_) {
    return Status::InvalidArgument(
        "matrix-completion checkpoint does not match this problem");
  }
  return result_.model.SetData(std::move(w), std::move(h));
}

Result<CompletionResult> MatrixCompletionRun::Finish() {
  MDE_RETURN_NOT_OK(status_);
  return result_;
}

Result<CompletionResult> CompleteDsgd(const std::vector<RatingEntry>& train,
                                      size_t rows, size_t cols,
                                      ThreadPool& pool,
                                      const CompletionOptions& options) {
  MatrixCompletionRun run(train, rows, cols, pool, options);
  MDE_RETURN_NOT_OK(run.status());
  while (!run.Done()) MDE_RETURN_NOT_OK(run.StepOnce());
  return run.Finish();
}

RatingsDataset SyntheticRatings(size_t rows, size_t cols, size_t true_rank,
                                double density, double noise_sd,
                                uint64_t seed) {
  MDE_CHECK(density > 0.0 && density <= 1.0);
  Rng rng(seed);
  // Ground-truth factors.
  std::vector<double> u(rows * true_rank), v(cols * true_rank);
  for (double& x : u) x = SampleNormal(rng, 0.0, 1.0);
  for (double& x : v) x = SampleNormal(rng, 0.0, 1.0);
  RatingsDataset ds;
  ds.rows = rows;
  ds.cols = cols;
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (!SampleBernoulli(rng, density)) continue;
      double value = 0.0;
      for (size_t k = 0; k < true_rank; ++k) {
        value += u[i * true_rank + k] * v[j * true_rank + k];
      }
      value += SampleNormal(rng, 0.0, noise_sd);
      // 85/15 train/test split.
      if (SampleBernoulli(rng, 0.85)) {
        ds.train.push_back({i, j, value});
      } else {
        ds.test.push_back({i, j, value});
      }
    }
  }
  return ds;
}

}  // namespace mde::dsgd
