#ifndef MDE_DSGD_DSGD_H_
#define MDE_DSGD_DSGD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/recovery.h"
#include "linalg/solve.h"
#include "obs/stat.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mde::dsgd {

/// One row of a sparse least-squares system: minimize
/// L(x) = sum_i (a_i . x - b_i)^2. Rows of the spline tridiagonal system
/// have at most three entries.
struct SparseRow {
  /// (column index, coefficient) pairs.
  std::vector<std::pair<size_t, double>> entries;
  double b = 0.0;

  /// a_i . x
  double Dot(const std::vector<double>& x) const;
};

/// Update rule used for the downhill step.
enum class StepRule {
  /// The paper's plain SGD step: x <- x - eps_n * m * grad L_I(x), with
  /// eps_n = step0 * (n + 1)^{-alpha}.
  kSgd,
  /// Randomized-Kaczmarz style normalized step:
  /// x <- x - omega * (a.x - b) / ||a||^2 * a. Robust without tuning; used
  /// as the production default.
  kKaczmarz,
};

/// Options for the sequential and distributed solvers.
struct SgdOptions {
  StepRule rule = StepRule::kKaczmarz;
  /// kSgd: eps_n = step0 * (n+1)^{-alpha}; kKaczmarz: relaxation omega.
  double step0 = 1.0;
  double alpha = 0.75;
  /// Total number of row updates.
  size_t iterations = 100000;
  uint64_t seed = 42;
  /// Record ||Ax - b|| every `trace_every` updates (0 = no trace).
  size_t trace_every = 0;
};

/// Result of an iterative solve.
struct SgdResult {
  std::vector<double> x;
  /// Final residual norm ||Ax - b||.
  double residual = 0.0;
  /// Residual trace (empty unless trace_every > 0).
  std::vector<double> residual_trace;
  size_t updates = 0;
};

/// Residual norm ||Ax - b|| for the row system.
double ResidualNorm(const std::vector<SparseRow>& rows,
                    const std::vector<double>& x);

/// Sequential stochastic gradient descent over the row system (Section 2.2):
/// rows are sampled uniformly at random and a downhill step is taken per
/// sample.
SgdResult SolveSgd(const std::vector<SparseRow>& rows, size_t dim,
                   const SgdOptions& options);

/// Converts the spline tridiagonal system A x = b into sparse rows.
std::vector<SparseRow> RowsFromTridiagonal(const linalg::Tridiagonal& a,
                                           const linalg::Vector& b);

/// Partition of rows into strata such that, within a stratum, no two rows
/// touch a common unknown — so within-stratum updates commute and can be
/// executed in parallel with no shuffling. For a tridiagonal system the
/// paper's strata are rows {1,4,7,...}, {2,5,8,...}, {3,6,9,...}.
std::vector<std::vector<size_t>> TridiagonalStrata(size_t num_rows);

/// Verifies the disjoint-touch property of a stratification (used by tests
/// and by DistributedSolve in debug mode).
bool StrataAreConflictFree(const std::vector<SparseRow>& rows,
                           const std::vector<std::vector<size_t>>& strata);

/// Options specific to the distributed (stratified) solver.
struct DsgdOptions {
  SgdOptions sgd;
  /// Number of stratum visits ("rounds"). Each visit performs
  /// updates_per_visit row updates spread across the pool.
  size_t rounds = 300;
  size_t updates_per_visit = 0;  // 0 = one sweep of the stratum
  /// Visit strata in independent random order per regeneration cycle
  /// (the paper's regenerative switching); false = round robin. Both spend
  /// equal expected time per stratum, satisfying the convergence condition.
  bool random_stratum_order = true;
};

/// Resumable DSGD solve: one StepOnce() per stratum visit ("round"), with
/// complete state capture — schedule RNG position, stratum visit order,
/// epoch cursor, iterate x, residual trace, convergence-monitor
/// accumulators — so a snapshot taken between rounds restores to a solver
/// that finishes bit-identically to one that never stopped, at any pool
/// width (within-stratum updates are conflict-free, PR 1). Fault point:
/// "dsgd.round". The rows/strata are the immutable problem data and are
/// NOT serialized; Restore expects a run constructed over the same inputs.
class DsgdRun : public ckpt::Checkpointable {
 public:
  DsgdRun(const std::vector<SparseRow>& rows, size_t dim,
          const std::vector<std::vector<size_t>>& strata, ThreadPool& pool,
          const DsgdOptions& options);

  std::string engine_name() const override { return "dsgd"; }
  bool Done() const override { return round_ >= options_.rounds; }
  /// One stratum visit.
  Status StepOnce() override;
  Result<std::string> Save() const override;
  Status Restore(const std::string& snapshot) override;

  size_t round() const { return round_; }
  /// Final residual + solution; call after Done() (or early to inspect).
  SgdResult Finish();

 private:
  const std::vector<SparseRow>& rows_;
  size_t dim_;
  const std::vector<std::vector<size_t>>& strata_;
  ThreadPool& pool_;
  DsgdOptions options_;
  Rng rng_;
  std::vector<size_t> order_;
  size_t round_ = 0;
  size_t global_updates_ = 0;
  /// Attribution fingerprint: (dim, strata count, rounds, seed), computed
  /// once in the constructor.
  uint64_t fingerprint_ = 0;
  SgdResult result_;
  /// Stall/divergence detector over the residual trace; publishes the
  /// obs.health.dsgd verdict and dsgd.loss gauges as the solve progresses.
  obs::ConvergenceMonitor health_;
};

/// Distributed stratified SGD (DSGD, Section 2.2 / Gemulla et al.): runs
/// SGD within one stratum at a time, partitioning the stratum's rows across
/// the thread pool; switches strata per a regenerative schedule. Converges
/// to the least-squares solution with probability 1 while shuffling no data
/// between workers. One-shot wrapper over DsgdRun.
SgdResult SolveDsgd(const std::vector<SparseRow>& rows, size_t dim,
                    const std::vector<std::vector<size_t>>& strata,
                    ThreadPool& pool, const DsgdOptions& options);

/// Convenience: solve the natural-cubic-spline constant system with DSGD.
SgdResult SolveTridiagonalDsgd(const linalg::Tridiagonal& a,
                               const linalg::Vector& b, ThreadPool& pool,
                               const DsgdOptions& options);

}  // namespace mde::dsgd

#endif  // MDE_DSGD_DSGD_H_
