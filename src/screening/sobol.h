#ifndef MDE_SCREENING_SOBOL_H_
#define MDE_SCREENING_SOBOL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "util/status.h"

namespace mde::screening {

/// Variance-based global sensitivity analysis: first-order and total-order
/// Sobol indices by the Saltelli pick-freeze estimator. This extends the
/// Section 4.3 screening toolbox beyond metamodel coefficients: S_j is the
/// fraction of output variance explained by factor j alone, ST_j includes
/// all interactions involving j. Unlike main effects, Sobol indices need
/// no linearity assumption.
struct SobolIndices {
  /// First-order indices S_j.
  std::vector<double> first_order;
  /// Total-order indices ST_j.
  std::vector<double> total_order;
  /// Output variance used for normalization.
  double output_variance = 0.0;
  /// Model evaluations consumed: n * (dims + 2).
  size_t evaluations = 0;
};

/// The model under analysis: factors supplied in [0,1]^d (callers scale
/// internally).
using SensitivityModel =
    std::function<double(const std::vector<double>& unit_point)>;

/// Computes Sobol indices with `base_samples` pick-freeze sample pairs.
/// Indices are clipped to [0, 1]; small negative estimates (sampling
/// noise) become 0.
Result<SobolIndices> ComputeSobolIndices(const SensitivityModel& model,
                                         size_t dims, size_t base_samples,
                                         uint64_t seed);

}  // namespace mde::screening

#endif  // MDE_SCREENING_SOBOL_H_
