#include "screening/screening.h"

#include <algorithm>
#include <map>

#include "metamodel/kriging.h"
#include "util/check.h"

namespace mde::screening {
namespace {

/// Memoized staircase evaluator: y(k) = mean response with factors [0, k)
/// high and the rest low.
class StaircaseOracle {
 public:
  StaircaseOracle(const ScreeningResponse& response, size_t num_factors,
                  size_t replications, uint64_t seed)
      : response_(response),
        num_factors_(num_factors),
        replications_(std::max<size_t>(1, replications)),
        rng_(seed) {}

  double Eval(size_t k) {
    auto it = cache_.find(k);
    if (it != cache_.end()) return it->second;
    std::vector<int> levels(num_factors_, -1);
    for (size_t f = 0; f < k; ++f) levels[f] = 1;
    double total = 0.0;
    for (size_t rep = 0; rep < replications_; ++rep) {
      total += response_(levels, rng_);
      ++runs_;
    }
    const double mean = total / static_cast<double>(replications_);
    cache_.emplace(k, mean);
    return mean;
  }

  size_t runs() const { return runs_; }

 private:
  const ScreeningResponse& response_;
  size_t num_factors_;
  size_t replications_;
  Rng rng_;
  std::map<size_t, double> cache_;
  size_t runs_ = 0;
};

void Bifurcate(StaircaseOracle* oracle, size_t lo, size_t hi,
               double effect_threshold, std::vector<size_t>* important) {
  // Group effect over factors (lo, hi]: (y(hi) - y(lo)) / 2 under the
  // first-order positive-effects model.
  const double group_effect = (oracle->Eval(hi) - oracle->Eval(lo)) / 2.0;
  if (group_effect <= effect_threshold) return;  // group has no important factor
  if (hi - lo == 1) {
    important->push_back(lo);  // factor index lo (0-based)
    return;
  }
  const size_t mid = lo + (hi - lo) / 2;
  Bifurcate(oracle, lo, mid, effect_threshold, important);
  Bifurcate(oracle, mid, hi, effect_threshold, important);
}

}  // namespace

ScreeningResult SequentialBifurcation(const ScreeningResponse& response,
                                      size_t num_factors,
                                      double effect_threshold,
                                      size_t replications, uint64_t seed) {
  MDE_CHECK_GT(num_factors, 0u);
  StaircaseOracle oracle(response, num_factors, replications, seed);
  ScreeningResult result;
  Bifurcate(&oracle, 0, num_factors, effect_threshold, &result.important);
  std::sort(result.important.begin(), result.important.end());
  result.runs_used = oracle.runs();
  return result;
}

ScreeningResult OneAtATimeScreening(const ScreeningResponse& response,
                                    size_t num_factors,
                                    double effect_threshold,
                                    size_t replications, uint64_t seed) {
  MDE_CHECK_GT(num_factors, 0u);
  const size_t reps = std::max<size_t>(1, replications);
  Rng rng(seed);
  ScreeningResult result;
  auto eval = [&](const std::vector<int>& levels) {
    double total = 0.0;
    for (size_t rep = 0; rep < reps; ++rep) {
      total += response(levels, rng);
      ++result.runs_used;
    }
    return total / static_cast<double>(reps);
  };
  std::vector<int> base(num_factors, -1);
  const double y0 = eval(base);
  for (size_t f = 0; f < num_factors; ++f) {
    std::vector<int> levels = base;
    levels[f] = 1;
    const double effect = (eval(levels) - y0) / 2.0;
    if (effect > effect_threshold) result.important.push_back(f);
  }
  return result;
}

Result<std::vector<size_t>> GpThetaScreening(const linalg::Matrix& design,
                                             const linalg::Vector& responses,
                                             double theta_threshold) {
  metamodel::KrigingModel::Options options;
  options.theta.assign(design.cols(), 1.0);
  options.fit_hyperparameters = true;
  options.nugget = 1e-6;
  MDE_ASSIGN_OR_RETURN(metamodel::KrigingModel model,
                       metamodel::KrigingModel::Fit(design, responses,
                                                    options));
  std::vector<size_t> important;
  for (size_t j = 0; j < model.theta().size(); ++j) {
    if (model.theta()[j] > theta_threshold) important.push_back(j);
  }
  return important;
}

}  // namespace mde::screening
