#ifndef MDE_SCREENING_SCREENING_H_
#define MDE_SCREENING_SCREENING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace mde::screening {

/// A screening experiment's black box: maps factor settings (one entry per
/// factor, -1 = low, +1 = high) to a (possibly noisy) scalar response.
using ScreeningResponse =
    std::function<double(const std::vector<int>& levels, Rng& rng)>;

/// Result of a factor-screening procedure.
struct ScreeningResult {
  /// Indices of the factors declared important.
  std::vector<size_t> important;
  /// Number of simulation runs consumed (the quantity screening exists to
  /// minimize).
  size_t runs_used = 0;
};

/// Sequential bifurcation (Section 4.3): assumes a first-order metamodel
/// with non-negative main effects. Evaluates the response only at
/// "staircase" settings y(k) = (factors 1..k high, rest low); the combined
/// effect of group (i, j] is (y(j) - y(i)) / 2, and groups whose effect
/// exceeds `effect_threshold` are split recursively until single factors
/// are isolated. With k important factors among n, run count is
/// O(k log n) vs n+1 for one-at-a-time.
///
/// `replications` responses are averaged per staircase point to suppress
/// observation noise. Staircase evaluations are memoized.
ScreeningResult SequentialBifurcation(const ScreeningResponse& response,
                                      size_t num_factors,
                                      double effect_threshold,
                                      size_t replications, uint64_t seed);

/// Baseline: one-at-a-time screening (estimates every main effect by
/// flipping each factor individually; n+1 staircase... i.e. 2n runs with
/// replications). Declares factor i important when its estimated effect
/// exceeds the threshold.
ScreeningResult OneAtATimeScreening(const ScreeningResponse& response,
                                    size_t num_factors,
                                    double effect_threshold,
                                    size_t replications, uint64_t seed);

/// Gaussian-process screening (Section 4.3): fits a kriging metamodel with
/// per-dimension theta_j to (design, responses) and declares factor j
/// important when theta_j exceeds `theta_threshold` — a very low theta_j
/// means the correlation in dimension j is ~1 everywhere, i.e. the response
/// does not vary with factor j.
Result<std::vector<size_t>> GpThetaScreening(const linalg::Matrix& design,
                                             const linalg::Vector& responses,
                                             double theta_threshold);

}  // namespace mde::screening

#endif  // MDE_SCREENING_SCREENING_H_
