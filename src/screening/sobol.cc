#include "screening/sobol.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace mde::screening {

Result<SobolIndices> ComputeSobolIndices(const SensitivityModel& model,
                                         size_t dims, size_t base_samples,
                                         uint64_t seed) {
  if (dims == 0) return Status::InvalidArgument("need >= 1 dimension");
  if (base_samples < 16) {
    return Status::InvalidArgument("need >= 16 base samples");
  }
  Rng rng(seed);
  const size_t n = base_samples;

  // Two independent sample matrices A, B (n x d) and the model outputs at
  // A, B, and the "pick-freeze" hybrids AB_j (column j of A replaced by
  // column j of B).
  std::vector<std::vector<double>> a(n, std::vector<double>(dims));
  std::vector<std::vector<double>> b(n, std::vector<double>(dims));
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < dims; ++k) {
      a[i][k] = rng.NextDouble();
      b[i][k] = rng.NextDouble();
    }
  }
  std::vector<double> ya(n), yb(n);
  for (size_t i = 0; i < n; ++i) {
    ya[i] = model(a[i]);
    yb[i] = model(b[i]);
  }
  // Total variance from the pooled A/B outputs.
  std::vector<double> pooled = ya;
  pooled.insert(pooled.end(), yb.begin(), yb.end());
  const double var_y = Variance(pooled);
  const double mean_y = Mean(pooled);

  SobolIndices out;
  out.output_variance = var_y;
  out.first_order.assign(dims, 0.0);
  out.total_order.assign(dims, 0.0);
  out.evaluations = n * (dims + 2);
  if (var_y <= 0.0) return out;  // constant model: all indices zero

  std::vector<double> yab(n);
  for (size_t j = 0; j < dims; ++j) {
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> hybrid = a[i];
      hybrid[j] = b[i][j];
      yab[i] = model(hybrid);
    }
    // Saltelli 2010 estimators:
    //   S_j  = (1/n) sum yb_i (yab_i - ya_i) / Var(Y)
    //   ST_j = (1/2n) sum (ya_i - yab_i)^2 / Var(Y)
    double s_num = 0.0, st_num = 0.0;
    for (size_t i = 0; i < n; ++i) {
      s_num += yb[i] * (yab[i] - ya[i]);
      st_num += (ya[i] - yab[i]) * (ya[i] - yab[i]);
    }
    (void)mean_y;
    out.first_order[j] =
        std::clamp(s_num / static_cast<double>(n) / var_y, 0.0, 1.0);
    out.total_order[j] = std::clamp(
        st_num / (2.0 * static_cast<double>(n)) / var_y, 0.0, 1.0);
  }
  return out;
}

}  // namespace mde::screening
