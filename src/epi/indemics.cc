#include "epi/indemics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"
#include "util/distributions.h"

namespace mde::epi {

using table::CmpOp;
using table::DataType;
using table::Query;
using table::Row;
using table::Schema;
using table::Table;
using table::Value;

EpidemicSim::EpidemicSim(ContactNetwork network, const DiseaseConfig& config)
    : network_(std::move(network)), config_(config), rng_(config.seed) {
  SeedInfections();
}

void EpidemicSim::SeedInfections() {
  const size_t n = network_.num_people();
  MDE_CHECK_GT(n, 0u);
  size_t seeded = 0;
  while (seeded < std::min(config_.initial_infections, n)) {
    const size_t i = rng_.NextBounded(n);
    Person& p = network_.person(i);
    if (p.health == Health::kSusceptible) {
      p.health = Health::kInfectious;
      p.days_in_state = 1 + static_cast<int>(SampleGeometric(
                                rng_, 1.0 / config_.mean_infectious_days));
      ++seeded;
    }
  }
}

DailyStats EpidemicSim::Advance(size_t days) {
  for (size_t d = 0; d < days; ++d) {
    ++day_;
    DailyStats stats;
    stats.day = day_;
    // Behavioral sweep: fear tracks infectious prevalence among contacts.
    if (config_.behavioral_adaptation) {
      std::vector<double> new_fear(network_.num_people(), 0.0);
      for (size_t i = 0; i < network_.num_people(); ++i) {
        const auto& edges = network_.incident(i);
        size_t infectious_contacts = 0;
        for (size_t e : edges) {
          const Contact& c = network_.contact(e);
          const size_t other = c.a == i ? c.b : c.a;
          if (network_.person(other).health == Health::kInfectious) {
            ++infectious_contacts;
          }
        }
        const double prevalence =
            edges.empty() ? 0.0
                          : static_cast<double>(infectious_contacts) /
                                static_cast<double>(edges.size());
        new_fear[i] = std::min(
            1.0, config_.fear_decay * network_.person(i).fear +
                     config_.fear_gain * prevalence);
      }
      for (size_t i = 0; i < network_.num_people(); ++i) {
        network_.person(i).fear = new_fear[i];
      }
    }
    // Transmission sweep: each infectious person exposes susceptible
    // neighbors with probability 1 - (1-t)^hours per edge; fearful pairs
    // shorten their contact time.
    std::vector<size_t> newly_exposed;
    for (size_t i = 0; i < network_.num_people(); ++i) {
      const Person& p = network_.person(i);
      if (p.health != Health::kInfectious || p.quarantined) continue;
      for (size_t e : network_.incident(i)) {
        const Contact& c = network_.contact(e);
        if (!type_active_[static_cast<size_t>(c.type)]) continue;
        const size_t other = c.a == i ? c.b : c.a;
        Person& q = network_.person(other);
        if (q.health != Health::kSusceptible || q.quarantined) continue;
        double hours = c.hours;
        if (config_.behavioral_adaptation) {
          const double pair_fear = 0.5 * (p.fear + q.fear);
          hours *= 1.0 - config_.max_contact_reduction * pair_fear;
        }
        const double p_infect =
            1.0 - std::pow(1.0 - config_.transmissibility, hours);
        if (SampleBernoulli(rng_, p_infect)) newly_exposed.push_back(other);
      }
    }
    for (size_t i : newly_exposed) {
      Person& q = network_.person(i);
      if (q.health == Health::kSusceptible) {
        q.health = Health::kExposed;
        q.days_in_state = 1 + static_cast<int>(SampleGeometric(
                                  rng_, 1.0 / config_.mean_latent_days));
        ++stats.new_infections;
      }
    }
    // Progression sweep.
    for (size_t i = 0; i < network_.num_people(); ++i) {
      Person& p = network_.person(i);
      if (p.health == Health::kExposed || p.health == Health::kInfectious) {
        if (--p.days_in_state <= 0) {
          if (p.health == Health::kExposed) {
            p.health = Health::kInfectious;
            p.days_in_state = 1 + static_cast<int>(SampleGeometric(
                                      rng_, 1.0 / config_.mean_infectious_days));
          } else {
            p.health = Health::kRecovered;
          }
        }
      }
    }
    for (const Person& p : network_.people()) {
      switch (p.health) {
        case Health::kSusceptible:
          ++stats.susceptible;
          break;
        case Health::kExposed:
          ++stats.exposed;
          break;
        case Health::kInfectious:
          ++stats.infectious;
          break;
        case Health::kRecovered:
          ++stats.recovered;
          break;
      }
    }
    history_.push_back(stats);
  }
  return history_.empty() ? DailyStats{} : history_.back();
}

size_t EpidemicSim::TotalInfected() const {
  size_t total = 0;
  for (const Person& p : network_.people()) {
    if (p.health != Health::kSusceptible && !p.immunized_by_vaccine) ++total;
  }
  return total;
}

size_t EpidemicSim::PeakInfectious() const {
  size_t peak = 0;
  for (const DailyStats& s : history_) peak = std::max(peak, s.infectious);
  return peak;
}

std::shared_ptr<const table::ColumnarTable> EpidemicSim::PersonColumnar()
    const {
  table::ColumnarTableBuilder b{Schema({{"pid", DataType::kInt64},
                                        {"age", DataType::kInt64},
                                        {"household", DataType::kInt64},
                                        {"health", DataType::kString},
                                        {"vaccinated", DataType::kBool},
                                        {"quarantined", DataType::kBool},
                                        {"fear", DataType::kDouble}})};
  b.Reserve(network_.num_people());
  auto health_name = [](Health h) -> const char* {
    switch (h) {
      case Health::kSusceptible:
        return "S";
      case Health::kExposed:
        return "E";
      case Health::kInfectious:
        return "I";
      case Health::kRecovered:
        return "R";
    }
    return "?";
  };
  for (const Person& p : network_.people()) {
    b.column(0).AppendInt64(p.pid);
    b.column(1).AppendInt64(static_cast<int64_t>(p.age));
    b.column(2).AppendInt64(p.household);
    b.column(3).AppendString(health_name(p.health));
    b.column(4).AppendBool(p.vaccinated);
    b.column(5).AppendBool(p.quarantined);
    b.column(6).AppendDouble(p.fear);
  }
  auto cols = b.Finish();
  MDE_CHECK(cols.ok());
  return std::move(cols).value();
}

std::shared_ptr<const table::ColumnarTable>
EpidemicSim::InfectedPersonColumnar() const {
  table::ColumnarTableBuilder b{Schema({{"pid", DataType::kInt64}})};
  for (const Person& p : network_.people()) {
    if (p.health == Health::kInfectious) b.column(0).AppendInt64(p.pid);
  }
  auto cols = b.Finish();
  MDE_CHECK(cols.ok());
  return std::move(cols).value();
}

table::Table EpidemicSim::PersonTable() const {
  return Table::FromColumnar(PersonColumnar());
}

table::Table EpidemicSim::InfectedPersonTable() const {
  return Table::FromColumnar(InfectedPersonColumnar());
}

size_t EpidemicSim::Vaccinate(const std::vector<int64_t>& pids) {
  size_t immunized = 0;
  for (int64_t pid : pids) {
    MDE_CHECK(pid >= 0 &&
              static_cast<size_t>(pid) < network_.num_people());
    Person& p = network_.person(static_cast<size_t>(pid));
    if (p.vaccinated) continue;
    p.vaccinated = true;
    if (p.health == Health::kSusceptible &&
        SampleBernoulli(rng_, config_.vaccine_efficacy)) {
      p.health = Health::kRecovered;  // immune
      p.immunized_by_vaccine = true;
      ++immunized;
    }
  }
  return immunized;
}

void EpidemicSim::SetContactTypeActive(ContactType type, bool active) {
  type_active_[static_cast<size_t>(type)] = active;
}

bool EpidemicSim::ContactTypeActive(ContactType type) const {
  return type_active_[static_cast<size_t>(type)];
}

void EpidemicSim::Quarantine(const std::vector<int64_t>& pids) {
  for (int64_t pid : pids) {
    MDE_CHECK(pid >= 0 &&
              static_cast<size_t>(pid) < network_.num_people());
    network_.person(static_cast<size_t>(pid)).quarantined = true;
  }
}

Result<std::vector<int64_t>> EpidemicSim::PidsOf(const table::Table& t) {
  MDE_ASSIGN_OR_RETURN(size_t idx, t.schema().IndexOf("pid"));
  std::vector<int64_t> pids;
  pids.reserve(t.num_rows());
  const auto& cols = t.columnar();
  if (cols != nullptr &&
      cols->col(idx).type == table::DataType::kInt64 &&
      cols->col(idx).valid.empty()) {
    // Columnar-backed result: read the typed block, skip row boxing.
    const auto& c = cols->col(idx);
    pids.assign(c.i64.begin(), c.i64.end());
    return pids;
  }
  for (const Row& r : t.rows()) pids.push_back(r[idx].AsInt());
  return pids;
}

Result<std::vector<DailyStats>> RunWithPolicy(
    EpidemicSim& sim, size_t total_days, size_t observe_every,
    const InterventionPolicy& policy) {
  if (observe_every == 0) {
    return Status::InvalidArgument("observe_every must be positive");
  }
  size_t elapsed = 0;
  while (elapsed < total_days) {
    const size_t chunk = std::min(observe_every, total_days - elapsed);
    sim.Advance(chunk);
    elapsed += chunk;
    if (policy) MDE_RETURN_NOT_OK(policy(sim, sim.current_day()));
  }
  return sim.history();
}

InterventionPolicy VaccinatePreschoolersPolicy(double trigger_fraction) {
  return [trigger_fraction](EpidemicSim& sim, size_t /*day*/) -> Status {
    // CREATE TABLE Preschool AS SELECT pid FROM Person WHERE 0 <= age <= 4.
    MDE_ASSIGN_OR_RETURN(
        table::Table preschool,
        Query(sim.PersonTable())
            .Where("age", CmpOp::kGe, int64_t{0})
            .Where("age", CmpOp::kLe, int64_t{4})
            .Select({"pid"})
            .Execute());
    const double n_preschool = static_cast<double>(preschool.num_rows());
    if (n_preschool == 0) return Status::OK();
    // WITH InfectedPreschool AS (SELECT pid FROM Preschool JOIN
    // InfectedPerson USING (pid)).
    MDE_ASSIGN_OR_RETURN(
        table::Table infected_preschool,
        Query(preschool)
            .Join(sim.InfectedPersonTable(), {"pid"}, {"pid"})
            .Execute());
    const double n_infected =
        static_cast<double>(infected_preschool.num_rows());
    // IF nInfectedPreschool > trigger * nPreschool THEN vaccinate Preschool.
    if (n_infected > trigger_fraction * n_preschool) {
      MDE_ASSIGN_OR_RETURN(std::vector<int64_t> pids,
                           EpidemicSim::PidsOf(preschool));
      sim.Vaccinate(pids);
    }
    return Status::OK();
  };
}

}  // namespace mde::epi
