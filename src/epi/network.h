#ifndef MDE_EPI_NETWORK_H_
#define MDE_EPI_NETWORK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace mde::epi {

/// Disease/health state of an individual (SEIR).
enum class Health { kSusceptible, kExposed, kInfectious, kRecovered };

/// A node: one individual with static demographics and dynamic health /
/// behavioral state (Indemics' network model, Section 2.4).
struct Person {
  int64_t pid = 0;
  int age = 0;
  int64_t household = 0;
  Health health = Health::kSusceptible;
  bool vaccinated = false;
  /// True when a vaccination moved this person directly to Recovered
  /// (distinguishes vaccine immunity from post-infection immunity).
  bool immunized_by_vaccine = false;
  bool quarantined = false;
  /// Behavioral state (Indemics models "changes in behavioral status
  /// (e.g., fear level)"): in [0, 1]; high fear reduces this person's
  /// effective contact time.
  double fear = 0.0;
  /// Days remaining in the current transient state (E or I).
  int days_in_state = 0;
};

/// Contact edge kinds, scaling transmission intensity.
enum class ContactType { kHousehold, kSchool, kWork, kCommunity };

/// An undirected contact between two individuals with a type and a daily
/// contact duration in hours.
struct Contact {
  size_t a = 0;
  size_t b = 0;
  ContactType type = ContactType::kCommunity;
  double hours = 1.0;
};

/// The social contact network: people plus typed weighted edges, with an
/// adjacency index for the transmission sweep.
class ContactNetwork {
 public:
  ContactNetwork() = default;

  size_t AddPerson(Person p);
  void AddContact(size_t a, size_t b, ContactType type, double hours);

  size_t num_people() const { return people_.size(); }
  size_t num_contacts() const { return contacts_.size(); }

  Person& person(size_t i) { return people_[i]; }
  const Person& person(size_t i) const { return people_[i]; }
  const std::vector<Person>& people() const { return people_; }

  const Contact& contact(size_t e) const { return contacts_[e]; }
  /// Edge ids incident to person i.
  const std::vector<size_t>& incident(size_t i) const { return adj_[i]; }

 private:
  std::vector<Person> people_;
  std::vector<Contact> contacts_;
  std::vector<std::vector<size_t>> adj_;
};

/// Synthetic population generator standing in for the real demographic data
/// Indemics consumes: households of size 1-6 with age structure, school
/// contact groups for ages 0-18, workplace groups for adults, plus sparse
/// random community contacts.
struct PopulationConfig {
  size_t num_people = 10000;
  double mean_household = 3.0;
  size_t school_size = 30;
  size_t workplace_size = 12;
  /// Expected random community contacts per person.
  double community_degree = 4.0;
  uint64_t seed = 20140622;
};

ContactNetwork GeneratePopulation(const PopulationConfig& config);

}  // namespace mde::epi

#endif  // MDE_EPI_NETWORK_H_
