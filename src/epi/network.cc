#include "epi/network.h"

#include <algorithm>

#include "util/check.h"
#include "util/distributions.h"

namespace mde::epi {

size_t ContactNetwork::AddPerson(Person p) {
  people_.push_back(p);
  adj_.emplace_back();
  return people_.size() - 1;
}

void ContactNetwork::AddContact(size_t a, size_t b, ContactType type,
                                double hours) {
  MDE_CHECK(a < people_.size() && b < people_.size());
  MDE_CHECK_NE(a, b);
  contacts_.push_back({a, b, type, hours});
  const size_t e = contacts_.size() - 1;
  adj_[a].push_back(e);
  adj_[b].push_back(e);
}

ContactNetwork GeneratePopulation(const PopulationConfig& config) {
  MDE_CHECK_GT(config.num_people, 0u);
  Rng rng(config.seed);
  ContactNetwork net;

  // Households: sizes ~ 1 + Poisson(mean - 1); ages assigned so that
  // households mix children and adults.
  int64_t household = 0;
  while (net.num_people() < config.num_people) {
    const size_t size = std::min<size_t>(
        config.num_people - net.num_people(),
        1 + static_cast<size_t>(
                SamplePoisson(rng, std::max(0.0, config.mean_household - 1.0))));
    std::vector<size_t> members;
    for (size_t k = 0; k < size; ++k) {
      Person p;
      p.pid = static_cast<int64_t>(net.num_people());
      p.household = household;
      if (k < 2) {
        p.age = 22 + static_cast<int>(rng.NextBounded(48));  // adults
      } else {
        p.age = static_cast<int>(rng.NextBounded(19));  // children
      }
      members.push_back(net.AddPerson(p));
    }
    // Full household clique with long contact hours.
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        net.AddContact(members[i], members[j], ContactType::kHousehold, 8.0);
      }
    }
    ++household;
  }

  // School groups: children are assigned to classes of school_size and meet
  // a subset of classmates daily.
  std::vector<size_t> children, adults;
  for (size_t i = 0; i < net.num_people(); ++i) {
    (net.person(i).age <= 18 ? children : adults).push_back(i);
  }
  auto group_contacts = [&](const std::vector<size_t>& pool,
                            size_t group_size, ContactType type,
                            double hours, double degree) {
    for (size_t start = 0; start < pool.size(); start += group_size) {
      const size_t end = std::min(pool.size(), start + group_size);
      const size_t n = end - start;
      if (n < 2) continue;
      // Each member gets ~`degree` random in-group contacts.
      const size_t edges =
          static_cast<size_t>(degree * static_cast<double>(n) / 2.0);
      for (size_t e = 0; e < edges; ++e) {
        const size_t a = start + rng.NextBounded(n);
        size_t b = start + rng.NextBounded(n);
        if (a == b) continue;
        net.AddContact(a, b, type, hours);
      }
    }
  };
  group_contacts(children, config.school_size, ContactType::kSchool, 5.0,
                 6.0);
  group_contacts(adults, config.workplace_size, ContactType::kWork, 6.0,
                 4.0);

  // Sparse random community contacts across everyone.
  const size_t community_edges = static_cast<size_t>(
      config.community_degree * static_cast<double>(config.num_people) / 2.0);
  for (size_t e = 0; e < community_edges; ++e) {
    const size_t a = rng.NextBounded(net.num_people());
    const size_t b = rng.NextBounded(net.num_people());
    if (a == b) continue;
    net.AddContact(a, b, ContactType::kCommunity, 1.0);
  }
  return net;
}

}  // namespace mde::epi
