#ifndef MDE_EPI_INDEMICS_H_
#define MDE_EPI_INDEMICS_H_

#include <functional>
#include <string>
#include <vector>

#include "epi/network.h"
#include "table/columnar.h"
#include "table/query.h"
#include "table/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace mde::epi {

/// SEIR disease dynamics over the contact network.
struct DiseaseConfig {
  /// Per-contact-hour transmission probability from an infectious to a
  /// susceptible individual.
  double transmissibility = 0.004;
  /// Mean days in Exposed (latent) state; durations are geometric.
  double mean_latent_days = 2.0;
  /// Mean days infectious.
  double mean_infectious_days = 5.0;
  /// Vaccine efficacy: probability a vaccination immunizes a susceptible.
  double vaccine_efficacy = 0.9;
  /// Initial infectious seeds.
  size_t initial_infections = 10;
  /// Behavioral adaptation: when true, each person's fear level tracks the
  /// infectious prevalence among their contacts, and fearful people cut
  /// their contact hours (the Indemics behavioral-transition functions).
  bool behavioral_adaptation = false;
  /// Fear update: fear <- fear_decay * fear + fear_gain * local_prevalence.
  double fear_gain = 2.0;
  double fear_decay = 0.9;
  /// Maximum fraction of contact time a fully fearful pair avoids.
  double max_contact_reduction = 0.8;
  uint64_t seed = 99;
};

/// Daily epidemic counts.
struct DailyStats {
  size_t day = 0;
  size_t susceptible = 0;
  size_t exposed = 0;
  size_t infectious = 0;
  size_t recovered = 0;
  size_t new_infections = 0;
};

/// The Indemics architecture (Section 2.4): a compute engine (the "HPC"
/// side) advances the network disease state between observation times; at
/// each observation time the experimenter queries the state through the
/// relational engine and can apply query-specified interventions before
/// resuming the simulation.
class EpidemicSim {
 public:
  EpidemicSim(ContactNetwork network, const DiseaseConfig& config);

  /// Advances `days` simulated days (the HPC phase). Returns the stats of
  /// the last simulated day.
  DailyStats Advance(size_t days);

  size_t current_day() const { return day_; }
  const ContactNetwork& network() const { return network_; }
  const std::vector<DailyStats>& history() const { return history_; }

  /// Total individuals ever infected (attack count).
  size_t TotalInfected() const;
  /// Maximum simultaneous infectious count over the run.
  size_t PeakInfectious() const;

  /// Exports the current person state as a relation
  /// (pid, age, household, health, vaccinated, quarantined) for SQL-style
  /// interrogation — the RDBMS side of Indemics. Built columnar: the
  /// returned Table is backed by typed column blocks, so observation
  /// queries run on the vectorized operators without ever boxing rows.
  table::Table PersonTable() const;
  /// Relation of currently infectious people: (pid).
  table::Table InfectedPersonTable() const;

  /// The columnar form of the relations above, for callers driving the
  /// vectorized kernels directly.
  std::shared_ptr<const table::ColumnarTable> PersonColumnar() const;
  std::shared_ptr<const table::ColumnarTable> InfectedPersonColumnar() const;

  /// Intervention: vaccinate the given pids (immunizes susceptibles with
  /// the configured efficacy). Returns how many were immunized.
  size_t Vaccinate(const std::vector<int64_t>& pids);
  /// Intervention: quarantine the given pids (their contacts stop
  /// transmitting).
  void Quarantine(const std::vector<int64_t>& pids);

  /// Intervention on the contact structure itself (Indemics models
  /// "deletion of edges due to quarantine" and similar): deactivates or
  /// reactivates every contact of the given type. Deactivated contacts do
  /// not transmit.
  void SetContactTypeActive(ContactType type, bool active);
  bool ContactTypeActive(ContactType type) const;

  /// Extracts the pid column from a query result table.
  static Result<std::vector<int64_t>> PidsOf(const table::Table& t);

 private:
  void SeedInfections();
  Health health(size_t i) const { return network_.person(i).health; }

  ContactNetwork network_;
  DiseaseConfig config_;
  Rng rng_;
  size_t day_ = 0;
  std::vector<DailyStats> history_;
  /// Per-ContactType activation flags (all active initially).
  bool type_active_[4] = {true, true, true, true};
};

/// A policy evaluated at each observation time: sees the simulator (for
/// queries and interventions) and the current day. This is how Algorithm 1
/// ("vaccinate preschoolers when >1% are sick") plugs in.
using InterventionPolicy = std::function<Status(EpidemicSim&, size_t day)>;

/// Runs `total_days` with an observation (and possible intervention) every
/// `observe_every` days. Returns the full daily history.
Result<std::vector<DailyStats>> RunWithPolicy(EpidemicSim& sim,
                                              size_t total_days,
                                              size_t observe_every,
                                              const InterventionPolicy& policy);

/// The paper's Algorithm 1, expressed with the query engine: every
/// observation, if more than `trigger_fraction` of preschoolers (age 0-4)
/// are currently infectious, vaccinate all preschoolers.
InterventionPolicy VaccinatePreschoolersPolicy(double trigger_fraction);

}  // namespace mde::epi

#endif  // MDE_EPI_INDEMICS_H_
