#ifndef MDE_MCDB_MCDB_H_
#define MDE_MCDB_MCDB_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mcdb/vg_function.h"
#include "table/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace mde::mcdb {

/// A realized (ordinary) database: one concrete table per registered name.
using DatabaseInstance = std::map<std::string, table::Table>;

/// Declarative specification of a stochastic table, mirroring MCDB's
///   CREATE TABLE name AS FOR EACH row IN outer
///     WITH X AS VG(<param query>) SELECT <projection>
/// The FOR EACH loop runs over `outer_table`; for each outer row the
/// `param_binder` produces the VG parameter row (it may consult the whole
/// deterministic database, which is how "parametrized by an SQL query over
/// the non-random relations" is modeled); `projector` combines the outer
/// row with each VG output row into an output row, and the per-row results
/// are UNIONed into the realization.
struct StochasticTableSpec {
  std::string name;
  std::string outer_table;
  std::shared_ptr<const VgFunction> vg;
  std::function<Result<table::Row>(const table::Row& outer,
                                   const DatabaseInstance& det)>
      param_binder;
  table::Schema output_schema;
  std::function<table::Row(const table::Row& outer, const table::Row& vg_row)>
      projector;
};

/// The Monte Carlo Database (Section 2.1): ordinary deterministic tables
/// plus stochastic table specifications. Instantiate() realizes every
/// stochastic table, yielding an ordinary database instance; running a
/// query over successive instances yields samples from the query-result
/// distribution.
class MonteCarloDb {
 public:
  /// Registers a deterministic table. Fails on duplicate names.
  Status AddTable(const std::string& name, table::Table t);

  /// Registers a stochastic table spec (its outer table must exist).
  Status AddStochasticTable(StochasticTableSpec spec);

  const table::Table* FindTable(const std::string& name) const;

  /// Realizes all stochastic tables using replication substream `rep` of
  /// `seed`, returning the deterministic tables plus realized stochastic
  /// tables.
  Result<DatabaseInstance> Instantiate(uint64_t seed, uint64_t rep) const;

  /// A query evaluated against a realized instance, returning one real
  /// scalar (e.g. total revenue).
  using ScalarQuery =
      std::function<Result<double>(const DatabaseInstance&)>;

  /// Naive Monte Carlo loop: instantiate + run the query plan once per
  /// repetition. This is the baseline the tuple-bundle executor beats.
  Result<std::vector<double>> RunNaive(const ScalarQuery& query,
                                       size_t repetitions,
                                       uint64_t seed) const;

  const std::vector<StochasticTableSpec>& stochastic_specs() const {
    return specs_;
  }

 private:
  DatabaseInstance deterministic_;
  std::vector<StochasticTableSpec> specs_;
};

}  // namespace mde::mcdb

#endif  // MDE_MCDB_MCDB_H_
