#include "mcdb/mcdb.h"

#include "util/check.h"

namespace mde::mcdb {

Status MonteCarloDb::AddTable(const std::string& name, table::Table t) {
  if (deterministic_.count(name) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  // Columnar-backed tables make the per-repetition copy in Instantiate()
  // a shared-pointer copy; tables only read through queries never pay for
  // row materialization.
  if (auto cols = t.ToColumnar(); cols.ok()) {
    t = table::Table::FromColumnar(std::move(cols).value());
  }
  deterministic_.emplace(name, std::move(t));
  return Status::OK();
}

Status MonteCarloDb::AddStochasticTable(StochasticTableSpec spec) {
  if (deterministic_.count(spec.name) > 0) {
    return Status::AlreadyExists("table exists: " + spec.name);
  }
  for (const auto& s : specs_) {
    if (s.name == spec.name) {
      return Status::AlreadyExists("stochastic table exists: " + spec.name);
    }
  }
  if (deterministic_.count(spec.outer_table) == 0) {
    return Status::NotFound("FOR EACH table not found: " + spec.outer_table);
  }
  if (!spec.vg || !spec.param_binder || !spec.projector) {
    return Status::InvalidArgument("incomplete stochastic table spec");
  }
  specs_.push_back(std::move(spec));
  return Status::OK();
}

const table::Table* MonteCarloDb::FindTable(const std::string& name) const {
  auto it = deterministic_.find(name);
  return it == deterministic_.end() ? nullptr : &it->second;
}

Result<DatabaseInstance> MonteCarloDb::Instantiate(uint64_t seed,
                                                   uint64_t rep) const {
  DatabaseInstance instance = deterministic_;
  Rng rng = Rng::Substream(seed, rep);
  for (const auto& spec : specs_) {
    const table::Table& outer = instance.at(spec.outer_table);
    table::Table realized(spec.output_schema);
    realized.Reserve(outer.num_rows());  // >= one realized row per outer row
    std::vector<table::Row> vg_rows;
    for (const table::Row& outer_row : outer.rows()) {
      MDE_ASSIGN_OR_RETURN(table::Row params,
                           spec.param_binder(outer_row, instance));
      vg_rows.clear();
      MDE_RETURN_NOT_OK(spec.vg->Generate(params, rng, &vg_rows));
      for (const table::Row& vg_row : vg_rows) {
        realized.Append(spec.projector(outer_row, vg_row));
      }
    }
    instance.emplace(spec.name, std::move(realized));
  }
  return instance;
}

Result<std::vector<double>> MonteCarloDb::RunNaive(const ScalarQuery& query,
                                                   size_t repetitions,
                                                   uint64_t seed) const {
  std::vector<double> samples;
  samples.reserve(repetitions);
  for (size_t rep = 0; rep < repetitions; ++rep) {
    MDE_ASSIGN_OR_RETURN(DatabaseInstance instance, Instantiate(seed, rep));
    MDE_ASSIGN_OR_RETURN(double value, query(instance));
    samples.push_back(value);
  }
  return samples;
}

}  // namespace mde::mcdb
