#ifndef MDE_MCDB_ESTIMATORS_H_
#define MDE_MCDB_ESTIMATORS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"

namespace mde::mcdb {

/// Summary of samples from a query-result distribution (Section 2.1: the
/// features of interest are moments and quantiles of the query result over
/// database instances).
struct MonteCarloSummary {
  size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;
  double std_error = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q05 = 0.0;
  double q95 = 0.0;
};

/// Computes the summary; errors on empty input.
Result<MonteCarloSummary> Summarize(const std::vector<double>& samples);

/// P(result > threshold) with a normal-approximation confidence half-width
/// at the given level — the primitive behind MCDB's threshold queries
/// ("which regions decline by > 2% with >= 50% probability?").
struct ThresholdEstimate {
  double probability = 0.0;
  double half_width = 0.0;
};
Result<ThresholdEstimate> ThresholdProbability(
    const std::vector<double>& samples, double threshold, double level);

/// Extreme-quantile estimate (MCDB-R risk analysis): for p near 0 or 1,
/// returns the order-statistic estimate of the p-quantile together with a
/// distribution-free (binomial) confidence interval on the quantile.
struct QuantileEstimate {
  double value = 0.0;
  double ci_low = 0.0;
  double ci_high = 0.0;
};
Result<QuantileEstimate> ExtremeQuantile(std::vector<double> samples,
                                         double p, double level);

/// Nonparametric bootstrap confidence interval for an arbitrary statistic
/// of the Monte Carlo samples (median, quantile, trimmed mean, ...):
/// percentile method over `resamples` bootstrap replicates.
///
/// Each replicate draws from its own RNG substream, so the replicates are
/// embarrassingly parallel: pass a `pool` to fan them out. Results are
/// identical with and without a pool, for any thread count. `statistic`
/// must be safe to call concurrently (pure) when a pool is given.
struct BootstrapCi {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};
Result<BootstrapCi> BootstrapConfidenceInterval(
    const std::vector<double>& samples,
    const std::function<double(const std::vector<double>&)>& statistic,
    size_t resamples, double level, uint64_t seed,
    ThreadPool* pool = nullptr);

/// Per-group threshold query: given (group id, per-repetition result) rows,
/// returns the ids of groups whose P(result > threshold) >= min_probability.
struct GroupSamples {
  std::string group;
  std::vector<double> samples;
};
Result<std::vector<std::string>> GroupsExceedingThreshold(
    const std::vector<GroupSamples>& groups, double threshold,
    double min_probability);

}  // namespace mde::mcdb

#endif  // MDE_MCDB_ESTIMATORS_H_
