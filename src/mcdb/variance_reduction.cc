#include "mcdb/variance_reduction.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mde::mcdb {

McEstimate PlainMonteCarlo(const std::function<double(double)>& f, size_t n,
                           uint64_t seed) {
  MDE_CHECK_GT(n, 0u);
  Rng rng(seed);
  RunningStat stat;
  for (size_t i = 0; i < n; ++i) stat.Add(f(rng.NextDouble()));
  McEstimate e;
  e.mean = stat.mean();
  e.variance = stat.variance();
  e.std_error = stat.std_error();
  e.samples = n;
  return e;
}

McEstimate AntitheticMonteCarlo(const std::function<double(double)>& f,
                                size_t pairs, uint64_t seed) {
  MDE_CHECK_GT(pairs, 0u);
  Rng rng(seed);
  RunningStat stat;
  for (size_t i = 0; i < pairs; ++i) {
    const double u = rng.NextDouble();
    stat.Add(0.5 * (f(u) + f(1.0 - u)));
  }
  McEstimate e;
  e.mean = stat.mean();
  e.variance = stat.variance();
  e.std_error = stat.std_error();
  e.samples = 2 * pairs;
  return e;
}

Result<CrnComparison> CompareWithCrn(
    const std::function<double(int, Rng&)>& run, size_t reps,
    uint64_t seed) {
  if (reps < 3) return Status::InvalidArgument("need >= 3 replications");
  RunningStat diff_crn;
  RunningCovariance paired;
  RunningStat a_ind, b_ind;
  for (size_t r = 0; r < reps; ++r) {
    // CRN: both configurations replay substream r.
    Rng rng_a = Rng::Substream(seed, r);
    Rng rng_b = Rng::Substream(seed, r);
    const double ya = run(0, rng_a);
    const double yb = run(1, rng_b);
    diff_crn.Add(ya - yb);
    paired.Add(ya, yb);
    // Independent baseline: disjoint substreams.
    Rng rng_ai = Rng::Substream(seed + 0x9e3779b9, 2 * r);
    Rng rng_bi = Rng::Substream(seed + 0x9e3779b9, 2 * r + 1);
    a_ind.Add(run(0, rng_ai));
    b_ind.Add(run(1, rng_bi));
  }
  CrnComparison out;
  out.mean_difference = diff_crn.mean();
  out.crn_std_error = diff_crn.std_error();
  const double ind_var =
      (a_ind.variance() + b_ind.variance()) / static_cast<double>(reps);
  out.independent_std_error = std::sqrt(ind_var);
  const double crn_var = diff_crn.variance() / static_cast<double>(reps);
  out.variance_reduction_factor =
      crn_var > 0.0 ? ind_var / crn_var : 1.0;
  return out;
}

Result<ControlVariateEstimate> ControlVariate(const std::vector<double>& y,
                                              const std::vector<double>& x,
                                              double x_mean) {
  if (y.size() != x.size() || y.size() < 3) {
    return Status::InvalidArgument("need >= 3 paired samples");
  }
  const double var_x = Variance(x);
  if (var_x <= 0.0) {
    return Status::FailedPrecondition("control variate is constant");
  }
  ControlVariateEstimate est;
  est.beta = Covariance(y, x) / var_x;
  const double ybar = Mean(y);
  const double xbar = Mean(x);
  est.mean = ybar - est.beta * (xbar - x_mean);
  const double rho = Correlation(y, x);
  const double var_y = Variance(y);
  const double adj_var = var_y * (1.0 - rho * rho);
  est.std_error = std::sqrt(adj_var / static_cast<double>(y.size()));
  est.variance_reduction_factor =
      adj_var > 0.0 ? var_y / adj_var : 1.0;
  return est;
}

}  // namespace mde::mcdb
