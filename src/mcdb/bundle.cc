#include "mcdb/bundle.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "simd/simd.h"
#include "util/check.h"

namespace mde::mcdb {
namespace {

/// Per-repetition sums and active counts, reduced together so AVG needs a
/// single pass over the value block.
struct SumCount {
  std::vector<double> sums;
  std::vector<double> counts;
};

}  // namespace

BundleTable::BundleTable(table::Schema det_schema,
                         std::vector<std::string> stoch_names,
                         size_t num_reps)
    : det_schema_(std::move(det_schema)),
      stoch_names_(std::move(stoch_names)),
      num_reps_(num_reps),
      words_per_row_((num_reps + 63) / 64),
      stoch_(stoch_names_.size()) {
  MDE_CHECK_GT(num_reps_, 0u);
  for (auto& block : stoch_) {
    block = std::make_shared<AlignedVector<double>>();
  }
}

uint64_t BundleTable::ApproxBytes() const {
  uint64_t b = det_rows_.capacity() * sizeof(table::Row);
  for (const auto& blockv : stoch_) {
    // A block shared with another table is charged only to its first owner,
    // mirroring how the columnar layer excludes shared string dictionaries.
    if (blockv != nullptr && blockv.use_count() == 1) {
      b += blockv->capacity() * sizeof(double);
    }
  }
  b += active_.capacity() * sizeof(uint64_t);
  return b;
}

Result<size_t> BundleTable::StochIndex(const std::string& name) const {
  for (size_t i = 0; i < stoch_names_.size(); ++i) {
    if (stoch_names_[i] == name) return i;
  }
  return Status::NotFound("stochastic attribute not found: " + name);
}

void BundleTable::Append(BundleRow row) {
  MDE_CHECK_EQ(row.det.size(), det_schema_.num_columns());
  MDE_CHECK_EQ(row.stoch.size(), stoch_names_.size());
  for (const auto& v : row.stoch) MDE_CHECK_EQ(v.size(), num_reps_);
  if (row.active.empty()) row.active.assign(num_reps_, 1);
  MDE_CHECK_EQ(row.active.size(), num_reps_);
  det_rows_.push_back(std::move(row.det));
  for (size_t k = 0; k < stoch_.size(); ++k) {
    AlignedVector<double>& block = MutableStoch(k);
    block.insert(block.end(), row.stoch[k].begin(), row.stoch[k].end());
  }
  for (size_t w = 0; w < words_per_row_; ++w) {
    uint64_t word = 0;
    const size_t base = w * 64;
    const size_t lim = std::min<size_t>(64, num_reps_ - base);
    for (size_t b = 0; b < lim; ++b) {
      word |= static_cast<uint64_t>(row.active[base + b] != 0) << b;
    }
    active_.push_back(word);
  }
  AccountStorage();
}

BundleTable::BundleRow BundleTable::row(size_t i) const {
  BundleRow r;
  r.det = det_rows_[i];
  r.stoch.resize(stoch_.size());
  for (size_t k = 0; k < stoch_.size(); ++k) {
    const double* v = stoch_[k]->data() + i * num_reps_;
    r.stoch[k].assign(v, v + num_reps_);
  }
  r.active.resize(num_reps_);
  for (size_t rep = 0; rep < num_reps_; ++rep) {
    r.active[rep] = is_active(i, rep) ? 1 : 0;
  }
  return r;
}

void BundleTable::RunRowChunks(
    size_t n,
    const std::function<void(size_t, size_t, size_t)>& fn) const {
  if (n == 0) return;
  if (pool_ != nullptr) {
    pool_->ParallelForChunks(n, kRowGrain, fn);
    return;
  }
  const size_t chunks = (n + kRowGrain - 1) / kRowGrain;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * kRowGrain;
    fn(c, begin, std::min(n, begin + kRowGrain));
  }
}

void BundleTable::GatherRows(const std::vector<uint32_t>& keep,
                             const uint64_t* masks, BundleTable* out) const {
  const size_t m = keep.size();
  // `keep` is strictly ascending indices into [0, num_rows), so m == n
  // means the identity gather: every value block survives unchanged and is
  // SHARED with the source instead of copied (the masks may still differ —
  // a stochastic filter that kills repetitions but no whole row). This is
  // the common FilterStoch outcome at realistic repetition counts.
  const bool identity = m == num_rows();
  if (identity) {
    out->det_rows_ = det_rows_;
    out->stoch_ = stoch_;
  } else {
    // reserve + tail-insert rather than resize + overwrite: the gather
    // output is written exactly once, so value-initializing it first would
    // double the first-touch traffic on the largest allocation in the
    // filter pipeline.
    out->det_rows_.reserve(m);
    for (size_t k = 0; k < stoch_.size(); ++k) {
      out->stoch_[k]->reserve(m * num_reps_);
    }
  }
  out->active_.reserve(m * words_per_row_);
  for (size_t j = 0; j < m; ++j) {
    const size_t i = keep[j];
    if (!identity) {
      out->det_rows_.push_back(det_rows_[i]);
      for (size_t k = 0; k < stoch_.size(); ++k) {
        const double* src = stoch_[k]->data() + i * num_reps_;
        out->stoch_[k]->insert(out->stoch_[k]->end(), src, src + num_reps_);
      }
    }
    const uint64_t* msrc = masks + i * words_per_row_;
    out->active_.insert(out->active_.end(), msrc, msrc + words_per_row_);
  }
  out->AccountStorage();
}

BundleTable BundleTable::FilterDet(const table::RowPredicate& pred) const {
  BundleTable out(det_schema_, stoch_names_, num_reps_);
  out.pool_ = pool_;
  const size_t n = num_rows();
  std::vector<uint8_t> match(n, 0);
  RunRowChunks(n, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      match[i] = pred(det_rows_[i]) ? 1 : 0;
    }
  });
  std::vector<uint32_t> keep;
  keep.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (match[i]) keep.push_back(static_cast<uint32_t>(i));
  }
  GatherRows(keep, active_.data(), &out);
  return out;
}

namespace {

/// Computes, for every row, the conjunction of the existing mask with the
/// per-repetition comparison result — the columnar core of FilterStoch.
/// One dispatched comparison kernel per packed word, ANDed with the old
/// mask: evaluating the masked-off lanes too is output-identical (their
/// bits are cleared by the AND) and keeps the hot loop branch-free.
void FilterMaskKernel(const double* block, const uint64_t* active,
                      size_t num_reps, size_t wpr, size_t begin, size_t end,
                      simd::Cmp op, double threshold, uint64_t* new_active,
                      uint8_t* any) {
  for (size_t i = begin; i < end; ++i) {
    const double* v = block + i * num_reps;
    uint64_t row_any = 0;
    for (size_t w = 0; w < wpr; ++w) {
      const uint64_t old_word = active[i * wpr + w];
      uint64_t word = 0;
      if (old_word != 0) {
        const size_t base = w * 64;
        const size_t lim = std::min<size_t>(64, num_reps - base);
        word = simd::CmpF64MaskWord(v + base, lim, op, threshold) & old_word;
      }
      new_active[i * wpr + w] = word;
      row_any |= word;
    }
    any[i] = row_any != 0 ? 1 : 0;
  }
}

}  // namespace

Result<BundleTable> BundleTable::FilterStoch(const std::string& attr,
                                             table::CmpOp op,
                                             double threshold) const {
  MDE_ASSIGN_OR_RETURN(size_t k, StochIndex(attr));
  BundleTable out(det_schema_, stoch_names_, num_reps_);
  out.pool_ = pool_;
  const size_t n = num_rows();
  const double* block = stoch_[k]->data();
  AlignedVector<uint64_t> new_active(active_.size());
  std::vector<uint8_t> any(n, 0);
  // table::CmpOp and simd::Cmp enumerate the six comparisons in the same
  // order (checked in simd_test); the kernel gets the dispatched form.
  const auto sop = static_cast<simd::Cmp>(op);
  simd::CountKernel(simd::KernelId::kCmpF64MaskWord);
  RunRowChunks(n, [&](size_t, size_t begin, size_t end) {
    FilterMaskKernel(block, active_.data(), num_reps_, words_per_row_, begin,
                     end, sop, threshold, new_active.data(), any.data());
  });
  std::vector<uint32_t> keep;
  keep.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (any[i]) keep.push_back(static_cast<uint32_t>(i));
  }
  GatherRows(keep, new_active.data(), &out);
  return out;
}

Result<BundleTable> BundleTable::MapStoch(
    const std::string& name,
    const std::function<double(const table::Row&, const std::vector<double>&)>&
        fn) const {
  std::vector<std::string> names = stoch_names_;
  names.push_back(name);
  BundleTable out(det_schema_, std::move(names), num_reps_);
  out.pool_ = pool_;
  const size_t n = num_rows();
  const size_t num_k = stoch_names_.size();
  out.det_rows_ = det_rows_;
  // Inherited value blocks are shared, not copied (clone-on-write guards
  // any later mutation).
  for (size_t k = 0; k < num_k; ++k) out.stoch_[k] = stoch_[k];
  out.active_ = active_;
  out.stoch_[num_k]->resize(n * num_reps_);
  double* computed = out.stoch_[num_k]->data();
  RunRowChunks(n, [&](size_t, size_t begin, size_t end) {
    std::vector<double> at_rep(num_k);  // per-chunk scratch
    for (size_t i = begin; i < end; ++i) {
      for (size_t rep = 0; rep < num_reps_; ++rep) {
        for (size_t k = 0; k < num_k; ++k) {
          at_rep[k] = (*stoch_[k])[i * num_reps_ + rep];
        }
        computed[i * num_reps_ + rep] = fn(det_rows_[i], at_rep);
      }
    }
  });
  out.AccountStorage();
  return out;
}

namespace {

/// Adds the active values of rows [begin, end) into sums[0..num_reps),
/// optionally counting actives. The all-active full-word fast path uses the
/// dispatched dense add kernel; partial words go through the masked-add
/// kernels, which visit only set bits in ascending order — the same
/// accumulation order as a full scan, so the result is unchanged.
void MaskedSumKernel(const double* block, const uint64_t* active,
                     size_t num_reps, size_t wpr, size_t begin, size_t end,
                     double* sums, double* counts) {
  for (size_t i = begin; i < end; ++i) {
    const double* v = block + i * num_reps;
    const uint64_t* m = active + i * wpr;
    for (size_t w = 0; w < wpr; ++w) {
      const uint64_t word = m[w];
      if (word == 0) continue;
      const size_t base = w * 64;
      const size_t lim = std::min<size_t>(64, num_reps - base);
      if (word == ~0ULL && lim == 64) {
        simd::AddF64(sums + base, v + base, 64);
        if (counts != nullptr) simd::AddConstF64(counts + base, 1.0, 64);
      } else {
        simd::MaskedAddF64Word(sums + base, v + base, word);
        if (counts != nullptr) {
          simd::MaskedAddConstF64Word(counts + base, 1.0, word);
        }
      }
    }
  }
}

}  // namespace

Result<std::vector<double>> BundleTable::AggregateSum(
    const std::string& attr) const {
  MDE_ASSIGN_OR_RETURN(size_t k, StochIndex(attr));
  const double* block = stoch_[k]->data();
  simd::CountKernel(simd::KernelId::kMaskedAddF64);
  return ReduceRows<std::vector<double>>(
      std::vector<double>(num_reps_, 0.0),
      [&](size_t begin, size_t end) {
        std::vector<double> sums(num_reps_, 0.0);
        MaskedSumKernel(block, active_.data(), num_reps_, words_per_row_,
                        begin, end, sums.data(), nullptr);
        return sums;
      },
      [](std::vector<double> a, std::vector<double> b) {
        for (size_t rep = 0; rep < a.size(); ++rep) a[rep] += b[rep];
        return a;
      });
}

Result<std::vector<double>> BundleTable::AggregateAvg(
    const std::string& attr) const {
  MDE_ASSIGN_OR_RETURN(size_t k, StochIndex(attr));
  const double* block = stoch_[k]->data();
  simd::CountKernel(simd::KernelId::kMaskedAddF64);
  SumCount zero{std::vector<double>(num_reps_, 0.0),
                std::vector<double>(num_reps_, 0.0)};
  SumCount total = ReduceRows<SumCount>(
      zero,
      [&](size_t begin, size_t end) {
        SumCount sc{std::vector<double>(num_reps_, 0.0),
                    std::vector<double>(num_reps_, 0.0)};
        MaskedSumKernel(block, active_.data(), num_reps_, words_per_row_,
                        begin, end, sc.sums.data(), sc.counts.data());
        return sc;
      },
      [](SumCount a, SumCount b) {
        for (size_t rep = 0; rep < a.sums.size(); ++rep) {
          a.sums[rep] += b.sums[rep];
          a.counts[rep] += b.counts[rep];
        }
        return a;
      });
  for (size_t rep = 0; rep < num_reps_; ++rep) {
    total.sums[rep] =
        total.counts[rep] > 0.0 ? total.sums[rep] / total.counts[rep] : 0.0;
  }
  return std::move(total.sums);
}

std::vector<double> BundleTable::AggregateCount() const {
  simd::CountKernel(simd::KernelId::kMaskedAddF64);
  return ReduceRows<std::vector<double>>(
      std::vector<double>(num_reps_, 0.0),
      [&](size_t begin, size_t end) {
        std::vector<double> counts(num_reps_, 0.0);
        for (size_t i = begin; i < end; ++i) {
          const uint64_t* m = active_.data() + i * words_per_row_;
          for (size_t w = 0; w < words_per_row_; ++w) {
            const uint64_t word = m[w];
            if (word == 0) continue;
            const size_t base = w * 64;
            const size_t lim = std::min<size_t>(64, num_reps_ - base);
            if (word == ~0ULL && lim == 64) {
              simd::AddConstF64(counts.data() + base, 1.0, 64);
            } else {
              simd::MaskedAddConstF64Word(counts.data() + base, 1.0, word);
            }
          }
        }
        return counts;
      },
      [](std::vector<double> a, std::vector<double> b) {
        for (size_t rep = 0; rep < a.size(); ++rep) a[rep] += b[rep];
        return a;
      });
}

Result<std::vector<BundleTable::GroupedSamples>> BundleTable::GroupSum(
    const std::string& det_key, const std::string& attr) const {
  MDE_ASSIGN_OR_RETURN(size_t key_idx, det_schema_.IndexOf(det_key));
  MDE_ASSIGN_OR_RETURN(size_t k, StochIndex(attr));
  const size_t n = num_rows();
  // Serial keying pass preserves first-appearance group order.
  std::vector<uint32_t> group_of(n);
  std::vector<GroupedSamples> groups;
  std::unordered_map<std::string, uint32_t> index;
  for (size_t i = 0; i < n; ++i) {
    std::string key = det_rows_[i][key_idx].ToString();
    auto [it, inserted] =
        index.emplace(std::move(key), static_cast<uint32_t>(groups.size()));
    if (inserted) {
      groups.push_back(
          {it->first, std::vector<double>(num_reps_, 0.0)});
    }
    group_of[i] = it->second;
  }
  const size_t g_count = groups.size();
  const double* block = stoch_[k]->data();
  simd::CountKernel(simd::KernelId::kMaskedAddF64);
  // Flattened (group x rep) partials, combined in fixed chunk order.
  std::vector<double> totals = ReduceRows<std::vector<double>>(
      std::vector<double>(g_count * num_reps_, 0.0),
      [&](size_t begin, size_t end) {
        std::vector<double> partial(g_count * num_reps_, 0.0);
        for (size_t i = begin; i < end; ++i) {
          MaskedSumKernel(block, active_.data(), num_reps_, words_per_row_, i,
                          i + 1, partial.data() + group_of[i] * num_reps_,
                          nullptr);
        }
        return partial;
      },
      [](std::vector<double> a, std::vector<double> b) {
        for (size_t j = 0; j < a.size(); ++j) a[j] += b[j];
        return a;
      });
  for (size_t g = 0; g < g_count; ++g) {
    std::copy(totals.begin() + g * num_reps_,
              totals.begin() + (g + 1) * num_reps_, groups[g].sums.begin());
  }
  return groups;
}

namespace internal {

Result<BundleTable> GenerateBundlesImpl(const MonteCarloDb& db,
                                        const StochasticTableSpec& spec,
                                        const std::string& attr_name,
                                        size_t num_reps, uint64_t seed,
                                        ThreadPool* pool,
                                        const std::vector<uint32_t>* keep) {
  // Attribution root for direct GenerateBundles calls; adopts the outer
  // query when one is already active (GenerateBundlesWhere, chain steps).
  MDE_OBS_QUERY_SCOPE(
      "mcdb.generate",
      obs::FingerprintMix(
          obs::FingerprintString(spec.outer_table + "/" + attr_name),
          num_reps));
  MDE_TRACE_SPAN("mcdb.generate_bundles");
  const table::Table* outer = db.FindTable(spec.outer_table);
  if (outer == nullptr) {
    return Status::NotFound("FOR EACH table not found: " + spec.outer_table);
  }
  if (spec.vg->output_schema().num_columns() != 1) {
    return Status::Unimplemented(
        "tuple bundles require single-column VG output");
  }
  // Deterministic parameter bindings are computed once; only the VG calls
  // are repeated per repetition.
  DatabaseInstance det_only;
  {
    MDE_ASSIGN_OR_RETURN(DatabaseInstance any, db.Instantiate(seed, 0));
    // Keep only deterministic tables for parameter binding.
    for (const auto& [name, t] : any) {
      if (db.FindTable(name) != nullptr) det_only.emplace(name, t);
    }
  }
  // Row access is a lazy const-cache (table.h: an unmaterialized Table
  // must not be shared across threads), so force materialization of every
  // table the chunk workers will touch while still on the driver.
  (void)outer->rows();
  for (auto& [det_name, det_table] : det_only) (void)det_table.rows();
  // Output row j realizes outer row `keep[j]` (or j when keep is null):
  // rows a pre-generation filter eliminated never bind parameters and
  // never touch their VG substream.
  const size_t n = keep != nullptr ? keep->size() : outer->num_rows();
  MDE_OBS_COUNT("mcdb.bundle_rows", n);
  MDE_OBS_COUNT("mcdb.vg_samples", n * num_reps);
  MDE_OBS_ATTR_ADD(vg_draws, n * num_reps);
  BundleTable out(outer->schema(), {attr_name}, num_reps);
  out.pool_ = pool;
  out.det_rows_.resize(n);
  out.stoch_[0]->resize(n * num_reps);
  // All rows start active in every repetition; padding bits stay zero.
  out.active_.assign(n * out.words_per_row_, ~0ULL);
  if (const size_t tail = num_reps % 64; tail != 0) {
    const uint64_t last = (uint64_t{1} << tail) - 1;
    for (size_t i = 0; i < n; ++i) {
      out.active_[(i + 1) * out.words_per_row_ - 1] = last;
    }
  }

  double* block = out.stoch_[0]->data();
  std::mutex err_mu;
  Status first_err = Status::OK();
  std::atomic<bool> failed{false};
  auto record_error = [&](const Status& st) {
    std::lock_guard<std::mutex> lock(err_mu);
    if (!failed.exchange(true)) first_err = st;
  };

  auto chunk_fn = [&](size_t, size_t begin, size_t end) {
    std::vector<table::Row> vg_rows;
    for (size_t j = begin; j < end; ++j) {
      if (failed.load(std::memory_order_relaxed)) return;
      const size_t i = keep != nullptr ? (*keep)[j] : j;
      const table::Row& outer_row = outer->row(i);
      auto params_r = spec.param_binder(outer_row, det_only);
      if (!params_r.ok()) {
        record_error(params_r.status());
        return;
      }
      const table::Row& params = params_r.value();
      out.det_rows_[j] = outer_row;
      // Independent per-ROW stream via SplitMix64 seeding: O(1) per stream,
      // unlike Jump-based substreams whose setup cost grows with the stream
      // index. The row is the unit of parallelism and its repetitions are
      // drawn sequentially from its own stream, so generation order — and
      // hence thread count — cannot change the sampled values. The stream
      // is keyed by the ORIGINAL outer index `i`, not the output position,
      // so a keep-list run reproduces exactly the values a full run would
      // have drawn for the surviving rows.
      Rng rng(seed ^ (0x9e3779b97f4a7c15ULL + i * 2654435761ULL));
      double* row_out = block + j * num_reps;
      if (spec.vg->GenerateScalarN(params, rng, num_reps, row_out)) {
        continue;
      }
      for (size_t rep = 0; rep < num_reps; ++rep) {
        vg_rows.clear();
        const Status st = spec.vg->Generate(params, rng, &vg_rows);
        if (!st.ok()) {
          record_error(st);
          return;
        }
        if (vg_rows.size() != 1) {
          record_error(Status::Unimplemented(
              "tuple bundles require single-row VG output"));
          return;
        }
        row_out[rep] = vg_rows[0][0].AsDouble();
      }
    }
  };
  if (pool != nullptr && n > 0) {
    pool->ParallelForChunks(n, BundleTable::kRowGrain, chunk_fn);
  } else {
    const size_t chunks =
        (n + BundleTable::kRowGrain - 1) / BundleTable::kRowGrain;
    for (size_t c = 0; c < chunks; ++c) {
      const size_t begin = c * BundleTable::kRowGrain;
      chunk_fn(c, begin, std::min(n, begin + BundleTable::kRowGrain));
    }
  }
  if (failed.load()) return first_err;
  out.AccountStorage();
  return out;
}

}  // namespace internal

Result<BundleTable> GenerateBundles(const MonteCarloDb& db,
                                    const StochasticTableSpec& spec,
                                    const std::string& attr_name,
                                    size_t num_reps, uint64_t seed,
                                    ThreadPool* pool) {
  return internal::GenerateBundlesImpl(db, spec, attr_name, num_reps, seed,
                                       pool, nullptr);
}

}  // namespace mde::mcdb
