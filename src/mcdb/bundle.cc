#include "mcdb/bundle.h"

#include "util/check.h"

namespace mde::mcdb {

BundleTable::BundleTable(table::Schema det_schema,
                         std::vector<std::string> stoch_names,
                         size_t num_reps)
    : det_schema_(std::move(det_schema)),
      stoch_names_(std::move(stoch_names)),
      num_reps_(num_reps) {
  MDE_CHECK_GT(num_reps_, 0u);
}

Result<size_t> BundleTable::StochIndex(const std::string& name) const {
  for (size_t i = 0; i < stoch_names_.size(); ++i) {
    if (stoch_names_[i] == name) return i;
  }
  return Status::NotFound("stochastic attribute not found: " + name);
}

void BundleTable::Append(BundleRow row) {
  MDE_CHECK_EQ(row.det.size(), det_schema_.num_columns());
  MDE_CHECK_EQ(row.stoch.size(), stoch_names_.size());
  for (const auto& v : row.stoch) MDE_CHECK_EQ(v.size(), num_reps_);
  if (row.active.empty()) row.active.assign(num_reps_, 1);
  MDE_CHECK_EQ(row.active.size(), num_reps_);
  rows_.push_back(std::move(row));
}

BundleTable BundleTable::FilterDet(const table::RowPredicate& pred) const {
  BundleTable out(det_schema_, stoch_names_, num_reps_);
  for (const BundleRow& r : rows_) {
    if (pred(r.det)) out.Append(r);
  }
  return out;
}

Result<BundleTable> BundleTable::FilterStoch(const std::string& attr,
                                             table::CmpOp op,
                                             double threshold) const {
  MDE_ASSIGN_OR_RETURN(size_t k, StochIndex(attr));
  BundleTable out(det_schema_, stoch_names_, num_reps_);
  for (const BundleRow& r : rows_) {
    BundleRow nr = r;
    bool any = false;
    for (size_t rep = 0; rep < num_reps_; ++rep) {
      if (!nr.active[rep]) continue;
      const double v = r.stoch[k][rep];
      bool keep = false;
      switch (op) {
        case table::CmpOp::kEq:
          keep = v == threshold;
          break;
        case table::CmpOp::kNe:
          keep = v != threshold;
          break;
        case table::CmpOp::kLt:
          keep = v < threshold;
          break;
        case table::CmpOp::kLe:
          keep = v <= threshold;
          break;
        case table::CmpOp::kGt:
          keep = v > threshold;
          break;
        case table::CmpOp::kGe:
          keep = v >= threshold;
          break;
      }
      nr.active[rep] = keep ? 1 : 0;
      any |= keep;
    }
    if (any) out.Append(std::move(nr));
  }
  return out;
}

Result<BundleTable> BundleTable::MapStoch(
    const std::string& name,
    const std::function<double(const table::Row&, const std::vector<double>&)>&
        fn) const {
  std::vector<std::string> names = stoch_names_;
  names.push_back(name);
  BundleTable out(det_schema_, std::move(names), num_reps_);
  std::vector<double> at_rep(stoch_names_.size());
  for (const BundleRow& r : rows_) {
    BundleRow nr = r;
    std::vector<double> computed(num_reps_, 0.0);
    for (size_t rep = 0; rep < num_reps_; ++rep) {
      for (size_t k = 0; k < stoch_names_.size(); ++k) {
        at_rep[k] = r.stoch[k][rep];
      }
      computed[rep] = fn(r.det, at_rep);
    }
    nr.stoch.push_back(std::move(computed));
    out.Append(std::move(nr));
  }
  return out;
}

Result<std::vector<double>> BundleTable::AggregateSum(
    const std::string& attr) const {
  MDE_ASSIGN_OR_RETURN(size_t k, StochIndex(attr));
  std::vector<double> sums(num_reps_, 0.0);
  for (const BundleRow& r : rows_) {
    for (size_t rep = 0; rep < num_reps_; ++rep) {
      if (r.active[rep]) sums[rep] += r.stoch[k][rep];
    }
  }
  return sums;
}

Result<std::vector<double>> BundleTable::AggregateAvg(
    const std::string& attr) const {
  MDE_ASSIGN_OR_RETURN(size_t k, StochIndex(attr));
  std::vector<double> sums(num_reps_, 0.0);
  std::vector<size_t> counts(num_reps_, 0);
  for (const BundleRow& r : rows_) {
    for (size_t rep = 0; rep < num_reps_; ++rep) {
      if (r.active[rep]) {
        sums[rep] += r.stoch[k][rep];
        ++counts[rep];
      }
    }
  }
  for (size_t rep = 0; rep < num_reps_; ++rep) {
    sums[rep] = counts[rep] > 0 ? sums[rep] / counts[rep] : 0.0;
  }
  return sums;
}

std::vector<double> BundleTable::AggregateCount() const {
  std::vector<double> counts(num_reps_, 0.0);
  for (const BundleRow& r : rows_) {
    for (size_t rep = 0; rep < num_reps_; ++rep) {
      if (r.active[rep]) counts[rep] += 1.0;
    }
  }
  return counts;
}

Result<std::vector<BundleTable::GroupedSamples>> BundleTable::GroupSum(
    const std::string& det_key, const std::string& attr) const {
  MDE_ASSIGN_OR_RETURN(size_t key_idx, det_schema_.IndexOf(det_key));
  MDE_ASSIGN_OR_RETURN(size_t k, StochIndex(attr));
  std::vector<GroupedSamples> groups;
  auto find_group = [&](const std::string& g) -> GroupedSamples& {
    for (auto& existing : groups) {
      if (existing.group == g) return existing;
    }
    groups.push_back({g, std::vector<double>(num_reps_, 0.0)});
    return groups.back();
  };
  for (const BundleRow& r : rows_) {
    GroupedSamples& g = find_group(r.det[key_idx].ToString());
    for (size_t rep = 0; rep < num_reps_; ++rep) {
      if (r.active[rep]) g.sums[rep] += r.stoch[k][rep];
    }
  }
  return groups;
}

Result<BundleTable> GenerateBundles(const MonteCarloDb& db,
                                    const StochasticTableSpec& spec,
                                    const std::string& attr_name,
                                    size_t num_reps, uint64_t seed) {
  const table::Table* outer = db.FindTable(spec.outer_table);
  if (outer == nullptr) {
    return Status::NotFound("FOR EACH table not found: " + spec.outer_table);
  }
  if (spec.vg->output_schema().num_columns() != 1) {
    return Status::Unimplemented(
        "tuple bundles require single-column VG output");
  }
  // Deterministic parameter bindings are computed once; only the VG calls
  // are repeated per repetition.
  DatabaseInstance det_only;
  {
    MDE_ASSIGN_OR_RETURN(DatabaseInstance any, db.Instantiate(seed, 0));
    // Keep only deterministic tables for parameter binding.
    for (const auto& [name, t] : any) {
      if (db.FindTable(name) != nullptr) det_only.emplace(name, t);
    }
  }
  BundleTable out(outer->schema(), {attr_name}, num_reps);
  std::vector<table::Row> vg_rows;
  for (size_t i = 0; i < outer->num_rows(); ++i) {
    const table::Row& outer_row = outer->row(i);
    MDE_ASSIGN_OR_RETURN(table::Row params,
                         spec.param_binder(outer_row, det_only));
    BundleTable::BundleRow br;
    br.det = outer_row;
    br.stoch.assign(1, std::vector<double>(num_reps, 0.0));
    for (size_t rep = 0; rep < num_reps; ++rep) {
      // Independent per-(row, rep) stream via SplitMix64 seeding: O(1) per
      // stream, unlike Jump-based substreams whose setup cost grows with
      // the stream index.
      Rng rng(seed ^ (0x9e3779b97f4a7c15ULL + i * 2654435761ULL +
                      rep * 0x100000001b3ULL));
      vg_rows.clear();
      MDE_RETURN_NOT_OK(spec.vg->Generate(params, rng, &vg_rows));
      if (vg_rows.size() != 1) {
        return Status::Unimplemented(
            "tuple bundles require single-row VG output");
      }
      br.stoch[0][rep] = vg_rows[0][0].AsDouble();
    }
    out.Append(std::move(br));
  }
  return out;
}

}  // namespace mde::mcdb
