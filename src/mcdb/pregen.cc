#include "mcdb/pregen.h"

#include <algorithm>
#include <utility>

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "table/catalog.h"
#include "table/cost.h"
#include "table/ops.h"
#include "table/vec_ops.h"

namespace mde::mcdb {

namespace {

/// Surviving outer-row indices (ascending) under the conjunction of
/// `preds`, via the vectorized filter over cached columnar blocks when the
/// table converts, else the bound row predicates. Both paths share
/// ColumnCompare's comparison semantics, so the set — and therefore the
/// generated bundle — is independent of which path ran.
Result<table::SelVector> SurvivingRows(
    const table::Table& outer,
    const std::vector<table::PlanPredicate>& preds, ThreadPool* pool) {
  auto columnar = outer.ToColumnar();
  if (columnar.ok()) {
    const table::ColumnarTable& ct = *columnar.value();
    table::SelVector sel;
    bool have_sel = false;
    for (const auto& p : preds) {
      MDE_ASSIGN_OR_RETURN(
          table::SelVector next,
          table::VecFilter(ct, have_sel ? &sel : nullptr, p.column, p.op,
                           p.literal, pool));
      sel = std::move(next);
      have_sel = true;
      if (sel.empty()) break;
    }
    return sel;
  }
  std::vector<table::RowPredicate> bound;
  bound.reserve(preds.size());
  for (const auto& p : preds) {
    MDE_ASSIGN_OR_RETURN(
        table::RowPredicate rp,
        table::ColumnCompare(outer.schema(), p.column, p.op, p.literal));
    bound.push_back(std::move(rp));
  }
  table::SelVector sel;
  const size_t n = outer.num_rows();
  for (size_t i = 0; i < n; ++i) {
    const table::Row& row = outer.row(i);
    bool ok = true;
    for (const auto& rp : bound) {
      if (!rp(row)) {
        ok = false;
        break;
      }
    }
    if (ok) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

}  // namespace

Result<BundleTable> GenerateBundlesWhere(
    const MonteCarloDb& db, const StochasticTableSpec& spec,
    const std::string& attr_name, size_t num_reps, uint64_t seed,
    std::vector<table::PlanPredicate> det_preds, ThreadPool* pool,
    PregenReport* report) {
  // Opened before predicate evaluation so the pre-generation filter's row
  // counts attribute to this query, not to no one.
  MDE_OBS_QUERY_SCOPE(
      "mcdb.generate_where",
      obs::FingerprintMix(
          obs::FingerprintString(spec.outer_table + "/" + attr_name),
          num_reps * 1000003 + det_preds.size()));
  MDE_TRACE_SPAN("mcdb.pregen_plan");
  const table::Table* outer = db.FindTable(spec.outer_table);
  if (outer == nullptr) {
    return Status::NotFound("FOR EACH table not found: " + spec.outer_table);
  }
  const size_t n = outer->num_rows();
  if (det_preds.empty()) {
    if (report != nullptr) *report = {n, n, 0, 0};
    return internal::GenerateBundlesImpl(db, spec, attr_name, num_reps, seed,
                                         pool, nullptr);
  }

  // Most-selective-first: each predicate's catalog selectivity against the
  // outer scan decides evaluation order, so the chained filter narrows its
  // selection vector as early as possible. A pure cost decision — the
  // surviving conjunction is order-independent.
  {
    const table::PlanPtr scan = table::PlanNode::Scan(outer, spec.outer_table);
    table::CostModel model;
    std::vector<std::pair<double, size_t>> order;
    order.reserve(det_preds.size());
    for (size_t i = 0; i < det_preds.size(); ++i) {
      order.emplace_back(model.PredicateSelectivity(scan, det_preds[i]), i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<table::PlanPredicate> sorted;
    sorted.reserve(det_preds.size());
    for (const auto& [sel, i] : order) sorted.push_back(det_preds[i]);
    det_preds = std::move(sorted);
  }

  MDE_ASSIGN_OR_RETURN(table::SelVector keep,
                       SurvivingRows(*outer, det_preds, pool));
  const size_t m = keep.size();
  MDE_OBS_COUNT("mcdb.pregen.rows_pruned", n - m);
  MDE_OBS_COUNT("mcdb.pregen.draws_saved", (n - m) * num_reps);
  if (report != nullptr) *report = {n, m, n - m, (n - m) * num_reps};
  return internal::GenerateBundlesImpl(db, spec, attr_name, num_reps, seed,
                                       pool, &keep);
}

}  // namespace mde::mcdb
