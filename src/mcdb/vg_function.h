#ifndef MDE_MCDB_VG_FUNCTION_H_
#define MDE_MCDB_VG_FUNCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "table/table.h"
#include "util/distributions.h"
#include "util/rng.h"
#include "util/status.h"

namespace mde::mcdb {

/// Variable Generation (VG) function: the MCDB mechanism for attaching an
/// arbitrary stochastic model to a database (Section 2.1). A call generates
/// a pseudorandom realization of one or more uncertain values, parameterized
/// by a row of parameters that MCDB obtains from a SQL query over the
/// non-random tables.
class VgFunction {
 public:
  virtual ~VgFunction() = default;

  virtual const std::string& name() const = 0;

  /// Schema of the rows this function generates per call.
  virtual const table::Schema& output_schema() const = 0;

  /// Appends one realization (possibly several correlated rows) to `out`,
  /// given the bound parameter row.
  virtual Status Generate(const table::Row& params, Rng& rng,
                          std::vector<table::Row>* out) const = 0;

  /// Allocation-free fast path for single-row, single-numeric-column VG
  /// functions: writes one realization to *out and returns true, or returns
  /// false when this function has no scalar form (multi-row output, invalid
  /// parameters, non-numeric value). A false return must not have consumed
  /// any randomness from `rng`, so callers can fall back to Generate() on
  /// the same stream and observe identical samples. The tuple-bundle
  /// generator calls this once per (row, rep) — the point is to skip the
  /// table::Row / Value boxing that dominates the naive path.
  virtual bool GenerateScalar(const table::Row& params, Rng& rng,
                              double* out) const {
    (void)params;
    (void)rng;
    (void)out;
    return false;
  }

  /// Batch form of GenerateScalar: writes `n` independent realizations to
  /// out[0..n). The bundle generator calls this once per tuple with that
  /// tuple's private substream, so overrides may validate and bind
  /// parameters once and sample in a tight loop (and may use a blocked
  /// sampling scheme — e.g. consuming both Marsaglia polar variates — so
  /// the realized values need not equal n unit GenerateScalar calls; only
  /// the joint distribution is contractual). A false return must leave
  /// `rng` untouched. The default delegates to GenerateScalar, whose
  /// param-dependent failure is decided before any sampling, so a false
  /// unit call can only happen at i == 0.
  virtual bool GenerateScalarN(const table::Row& params, Rng& rng, size_t n,
                               double* out) const {
    for (size_t i = 0; i < n; ++i) {
      if (!GenerateScalar(params, rng, out + i)) return false;
    }
    return true;
  }
};

/// Normal VG function: params = (mean, std); generates one row (VALUE).
/// This is the paper's SBP_DATA example.
class NormalVg : public VgFunction {
 public:
  NormalVg();
  const std::string& name() const override { return name_; }
  const table::Schema& output_schema() const override { return schema_; }
  Status Generate(const table::Row& params, Rng& rng,
                  std::vector<table::Row>* out) const override;
  bool GenerateScalar(const table::Row& params, Rng& rng,
                      double* out) const override;
  /// Blocked sampler: consumes both Marsaglia polar variates per accept,
  /// halving the log/sqrt cost that dominates bundle generation.
  bool GenerateScalarN(const table::Row& params, Rng& rng, size_t n,
                       double* out) const override;

 private:
  std::string name_;
  table::Schema schema_;
};

/// Uniform VG function: params = (lo, hi); one row (VALUE).
class UniformVg : public VgFunction {
 public:
  UniformVg();
  const std::string& name() const override { return name_; }
  const table::Schema& output_schema() const override { return schema_; }
  Status Generate(const table::Row& params, Rng& rng,
                  std::vector<table::Row>* out) const override;
  bool GenerateScalar(const table::Row& params, Rng& rng,
                      double* out) const override;
  bool GenerateScalarN(const table::Row& params, Rng& rng, size_t n,
                       double* out) const override;

 private:
  std::string name_;
  table::Schema schema_;
};

/// Poisson VG function: params = (lambda); one row (VALUE, int64).
class PoissonVg : public VgFunction {
 public:
  PoissonVg();
  const std::string& name() const override { return name_; }
  const table::Schema& output_schema() const override { return schema_; }
  Status Generate(const table::Row& params, Rng& rng,
                  std::vector<table::Row>* out) const override;
  bool GenerateScalar(const table::Row& params, Rng& rng,
                      double* out) const override;
  bool GenerateScalarN(const table::Row& params, Rng& rng, size_t n,
                       double* out) const override;

 private:
  std::string name_;
  table::Schema schema_;
};

/// Bernoulli VG function: params = (p); one row (VALUE, bool).
class BernoulliVg : public VgFunction {
 public:
  BernoulliVg();
  const std::string& name() const override { return name_; }
  const table::Schema& output_schema() const override { return schema_; }
  Status Generate(const table::Row& params, Rng& rng,
                  std::vector<table::Row>* out) const override;

 private:
  std::string name_;
  table::Schema schema_;
};

/// Backward geometric random walk, the paper's "estimate missing prior
/// prices" example: params = (current_price, drift, volatility, steps);
/// generates `steps` rows (STEP, VALUE) walking backwards from the current
/// price.
class BackwardRandomWalkVg : public VgFunction {
 public:
  BackwardRandomWalkVg();
  const std::string& name() const override { return name_; }
  const table::Schema& output_schema() const override { return schema_; }
  Status Generate(const table::Row& params, Rng& rng,
                  std::vector<table::Row>* out) const override;

 private:
  std::string name_;
  table::Schema schema_;
};

/// Discrete (categorical) VG function: params = (w_1, ..., w_k) unnormalized
/// category weights; one row (VALUE, int64 in [0, k)). Uses O(1) alias-table
/// sampling per draw for a fixed weight vector; weights are rebuilt per call
/// since MCDB re-parameterizes per outer row.
class DiscreteVg : public VgFunction {
 public:
  DiscreteVg();
  const std::string& name() const override { return name_; }
  const table::Schema& output_schema() const override { return schema_; }
  Status Generate(const table::Row& params, Rng& rng,
                  std::vector<table::Row>* out) const override;
  bool GenerateScalar(const table::Row& params, Rng& rng,
                      double* out) const override;
  /// Builds the alias table ONCE for the whole batch — the unit call pays
  /// the O(k) table build per draw.
  bool GenerateScalarN(const table::Row& params, Rng& rng, size_t n,
                       double* out) const override;

 private:
  std::string name_;
  table::Schema schema_;
};

/// Bayesian customer-demand VG function, the paper's personalized-demand
/// example: a global demand prior (Gamma) is updated with the customer's
/// own purchase history via conjugate Bayes, then a demand count is drawn
/// from Poisson(rate * price_sensitivity(price)).
/// params = (prior_shape, prior_rate, customer_purchases, customer_periods,
///           price, reference_price, elasticity); one row (DEMAND, int64).
class BayesianDemandVg : public VgFunction {
 public:
  BayesianDemandVg();
  const std::string& name() const override { return name_; }
  const table::Schema& output_schema() const override { return schema_; }
  Status Generate(const table::Row& params, Rng& rng,
                  std::vector<table::Row>* out) const override;
  bool GenerateScalar(const table::Row& params, Rng& rng,
                      double* out) const override;

 private:
  std::string name_;
  table::Schema schema_;
};

}  // namespace mde::mcdb

#endif  // MDE_MCDB_VG_FUNCTION_H_
