#ifndef MDE_MCDB_VG_FUNCTION_H_
#define MDE_MCDB_VG_FUNCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "table/table.h"
#include "util/distributions.h"
#include "util/rng.h"
#include "util/status.h"

namespace mde::mcdb {

/// Variable Generation (VG) function: the MCDB mechanism for attaching an
/// arbitrary stochastic model to a database (Section 2.1). A call generates
/// a pseudorandom realization of one or more uncertain values, parameterized
/// by a row of parameters that MCDB obtains from a SQL query over the
/// non-random tables.
class VgFunction {
 public:
  virtual ~VgFunction() = default;

  virtual const std::string& name() const = 0;

  /// Schema of the rows this function generates per call.
  virtual const table::Schema& output_schema() const = 0;

  /// Appends one realization (possibly several correlated rows) to `out`,
  /// given the bound parameter row.
  virtual Status Generate(const table::Row& params, Rng& rng,
                          std::vector<table::Row>* out) const = 0;
};

/// Normal VG function: params = (mean, std); generates one row (VALUE).
/// This is the paper's SBP_DATA example.
class NormalVg : public VgFunction {
 public:
  NormalVg();
  const std::string& name() const override { return name_; }
  const table::Schema& output_schema() const override { return schema_; }
  Status Generate(const table::Row& params, Rng& rng,
                  std::vector<table::Row>* out) const override;

 private:
  std::string name_;
  table::Schema schema_;
};

/// Uniform VG function: params = (lo, hi); one row (VALUE).
class UniformVg : public VgFunction {
 public:
  UniformVg();
  const std::string& name() const override { return name_; }
  const table::Schema& output_schema() const override { return schema_; }
  Status Generate(const table::Row& params, Rng& rng,
                  std::vector<table::Row>* out) const override;

 private:
  std::string name_;
  table::Schema schema_;
};

/// Poisson VG function: params = (lambda); one row (VALUE, int64).
class PoissonVg : public VgFunction {
 public:
  PoissonVg();
  const std::string& name() const override { return name_; }
  const table::Schema& output_schema() const override { return schema_; }
  Status Generate(const table::Row& params, Rng& rng,
                  std::vector<table::Row>* out) const override;

 private:
  std::string name_;
  table::Schema schema_;
};

/// Bernoulli VG function: params = (p); one row (VALUE, bool).
class BernoulliVg : public VgFunction {
 public:
  BernoulliVg();
  const std::string& name() const override { return name_; }
  const table::Schema& output_schema() const override { return schema_; }
  Status Generate(const table::Row& params, Rng& rng,
                  std::vector<table::Row>* out) const override;

 private:
  std::string name_;
  table::Schema schema_;
};

/// Backward geometric random walk, the paper's "estimate missing prior
/// prices" example: params = (current_price, drift, volatility, steps);
/// generates `steps` rows (STEP, VALUE) walking backwards from the current
/// price.
class BackwardRandomWalkVg : public VgFunction {
 public:
  BackwardRandomWalkVg();
  const std::string& name() const override { return name_; }
  const table::Schema& output_schema() const override { return schema_; }
  Status Generate(const table::Row& params, Rng& rng,
                  std::vector<table::Row>* out) const override;

 private:
  std::string name_;
  table::Schema schema_;
};

/// Discrete (categorical) VG function: params = (w_1, ..., w_k) unnormalized
/// category weights; one row (VALUE, int64 in [0, k)). Uses O(1) alias-table
/// sampling per draw for a fixed weight vector; weights are rebuilt per call
/// since MCDB re-parameterizes per outer row.
class DiscreteVg : public VgFunction {
 public:
  DiscreteVg();
  const std::string& name() const override { return name_; }
  const table::Schema& output_schema() const override { return schema_; }
  Status Generate(const table::Row& params, Rng& rng,
                  std::vector<table::Row>* out) const override;

 private:
  std::string name_;
  table::Schema schema_;
};

/// Bayesian customer-demand VG function, the paper's personalized-demand
/// example: a global demand prior (Gamma) is updated with the customer's
/// own purchase history via conjugate Bayes, then a demand count is drawn
/// from Poisson(rate * price_sensitivity(price)).
/// params = (prior_shape, prior_rate, customer_purchases, customer_periods,
///           price, reference_price, elasticity); one row (DEMAND, int64).
class BayesianDemandVg : public VgFunction {
 public:
  BayesianDemandVg();
  const std::string& name() const override { return name_; }
  const table::Schema& output_schema() const override { return schema_; }
  Status Generate(const table::Row& params, Rng& rng,
                  std::vector<table::Row>* out) const override;

 private:
  std::string name_;
  table::Schema schema_;
};

}  // namespace mde::mcdb

#endif  // MDE_MCDB_VG_FUNCTION_H_
