#include "mcdb/estimators.h"

#include <algorithm>
#include <cmath>

#include "obs/stat.h"
#include "util/distributions.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mde::mcdb {

Result<MonteCarloSummary> Summarize(const std::vector<double>& samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("no samples to summarize");
  }
  MonteCarloSummary s;
  RunningStat rs;
  for (double v : samples) rs.Add(v);
  s.n = samples.size();
  s.mean = rs.mean();
  s.variance = rs.variance();
  s.std_error = rs.std_error();
  s.min = rs.min();
  s.max = rs.max();
  s.median = Quantile(samples, 0.5);
  s.q05 = Quantile(samples, 0.05);
  s.q95 = Quantile(samples, 0.95);
#ifndef MDE_OBS_DISABLED
  // Publish the 95% CLT half-width of this aggregate so sampled time
  // series show Monte Carlo precision per summarized result set.
  obs::CiMonitor ci("mcdb.ci_halfwidth");
  for (double v : samples) ci.Add(v);
#endif
  return s;
}

Result<ThresholdEstimate> ThresholdProbability(
    const std::vector<double>& samples, double threshold, double level) {
  if (samples.empty()) return Status::InvalidArgument("no samples");
  if (level <= 0.0 || level >= 1.0) {
    return Status::InvalidArgument("level must be in (0,1)");
  }
  size_t hits = 0;
  for (double v : samples) {
    if (v > threshold) ++hits;
  }
  const double n = static_cast<double>(samples.size());
  ThresholdEstimate est;
  est.probability = static_cast<double>(hits) / n;
  const double z = NormalQuantile(0.5 + level / 2.0);
  est.half_width =
      z * std::sqrt(est.probability * (1.0 - est.probability) / n);
  return est;
}

Result<QuantileEstimate> ExtremeQuantile(std::vector<double> samples,
                                         double p, double level) {
  if (samples.empty()) return Status::InvalidArgument("no samples");
  if (p <= 0.0 || p >= 1.0) {
    return Status::InvalidArgument("p must be in (0,1)");
  }
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  QuantileEstimate est;
  est.value = Quantile(samples, p);
  // Distribution-free CI: the p-quantile lies between order statistics
  // X_(l) and X_(u) where l and u bracket np by z*sqrt(np(1-p)).
  const double z = NormalQuantile(0.5 + level / 2.0);
  const double center = p * static_cast<double>(n);
  const double spread = z * std::sqrt(static_cast<double>(n) * p * (1.0 - p));
  long lo = static_cast<long>(std::floor(center - spread)) - 1;
  long hi = static_cast<long>(std::ceil(center + spread)) - 1;
  lo = std::clamp<long>(lo, 0, static_cast<long>(n) - 1);
  hi = std::clamp<long>(hi, 0, static_cast<long>(n) - 1);
  est.ci_low = samples[static_cast<size_t>(lo)];
  est.ci_high = samples[static_cast<size_t>(hi)];
  return est;
}

Result<BootstrapCi> BootstrapConfidenceInterval(
    const std::vector<double>& samples,
    const std::function<double(const std::vector<double>&)>& statistic,
    size_t resamples, double level, uint64_t seed, ThreadPool* pool) {
  if (samples.size() < 2) return Status::InvalidArgument("need >= 2 samples");
  if (resamples < 10) return Status::InvalidArgument("need >= 10 resamples");
  if (level <= 0.0 || level >= 1.0) {
    return Status::InvalidArgument("level must be in (0,1)");
  }
  // Each replicate b owns substream seed^mix(b), so stats[b] does not
  // depend on which thread computes it (or whether a pool is used at all).
  std::vector<double> stats(resamples, 0.0);
  auto run_range = [&](size_t, size_t begin, size_t end) {
    std::vector<double> resample(samples.size());  // per-chunk scratch
    for (size_t b = begin; b < end; ++b) {
      Rng rng(seed ^ (0x9e3779b97f4a7c15ULL + b * 2654435761ULL));
      for (size_t i = 0; i < samples.size(); ++i) {
        resample[i] = samples[rng.NextBounded(samples.size())];
      }
      stats[b] = statistic(resample);
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunks(resamples, /*grain=*/0, run_range);
  } else {
    run_range(0, 0, resamples);
  }
  BootstrapCi ci;
  ci.estimate = statistic(samples);
  ci.lo = Quantile(stats, (1.0 - level) / 2.0);
  ci.hi = Quantile(stats, 0.5 + level / 2.0);
  return ci;
}

Result<std::vector<std::string>> GroupsExceedingThreshold(
    const std::vector<GroupSamples>& groups, double threshold,
    double min_probability) {
  std::vector<std::string> out;
  for (const auto& g : groups) {
    MDE_ASSIGN_OR_RETURN(ThresholdEstimate est,
                         ThresholdProbability(g.samples, threshold, 0.95));
    if (est.probability >= min_probability) out.push_back(g.group);
  }
  return out;
}

}  // namespace mde::mcdb
