#ifndef MDE_MCDB_BUNDLE_H_
#define MDE_MCDB_BUNDLE_H_

#include <functional>
#include <string>
#include <vector>

#include "mcdb/mcdb.h"
#include "table/ops.h"
#include "table/table.h"
#include "util/status.h"

namespace mde::mcdb {

/// Tuple-bundle executor (Section 2.1): instead of instantiating the
/// database and running the query plan once per Monte Carlo repetition, a
/// BundleTable keeps, for each logical tuple, its deterministic attributes
/// once and each uncertain attribute as an array of `num_reps` instantiated
/// values. A query plan is then executed once, with per-repetition activity
/// masks standing in for per-instance tuple existence.
class BundleTable {
 public:
  /// One logical tuple: deterministic part + per-repetition values of each
  /// stochastic attribute.
  struct BundleRow {
    table::Row det;
    /// stoch[k][r] = value of stochastic attribute k in repetition r.
    std::vector<std::vector<double>> stoch;
    /// active[r] = does this tuple exist in repetition r.
    std::vector<uint8_t> active;
  };

  BundleTable(table::Schema det_schema, std::vector<std::string> stoch_names,
              size_t num_reps);

  const table::Schema& det_schema() const { return det_schema_; }
  size_t num_reps() const { return num_reps_; }
  size_t num_rows() const { return rows_.size(); }
  const BundleRow& row(size_t i) const { return rows_[i]; }

  /// Index of a stochastic attribute by name; error if absent.
  Result<size_t> StochIndex(const std::string& name) const;

  /// Appends a bundle row (arity- and length-checked).
  void Append(BundleRow row);

  /// sigma over deterministic attributes — evaluated ONCE for all
  /// repetitions; this is where tuple bundles beat the naive loop.
  BundleTable FilterDet(const table::RowPredicate& pred) const;

  /// sigma over a stochastic attribute — updates activity masks
  /// per-repetition, keeping a tuple if it survives in at least one
  /// repetition.
  Result<BundleTable> FilterStoch(const std::string& attr, table::CmpOp op,
                                  double threshold) const;

  /// Adds stochastic attribute `name` computed per-repetition from the
  /// deterministic row and the existing stochastic values.
  Result<BundleTable> MapStoch(
      const std::string& name,
      const std::function<double(const table::Row& det,
                                 const std::vector<double>& stoch_at_rep)>&
          fn) const;

  /// SUM(attr) per repetition over active tuples: the bundled equivalent of
  /// running "SELECT SUM(attr)" on every database instance.
  Result<std::vector<double>> AggregateSum(const std::string& attr) const;

  /// AVG(attr) per repetition over active tuples (0 when none active).
  Result<std::vector<double>> AggregateAvg(const std::string& attr) const;

  /// COUNT(*) per repetition.
  std::vector<double> AggregateCount() const;

  /// Grouped SUM(attr): per distinct value of deterministic column
  /// `det_key`, the per-repetition sums over active tuples — the bundled
  /// equivalent of "SELECT key, SUM(attr) ... GROUP BY key" per database
  /// instance. Feeds the paper's threshold queries ("which regions decline
  /// by more than 2% with at least 50% probability?").
  struct GroupedSamples {
    std::string group;
    std::vector<double> sums;  // one per repetition
  };
  Result<std::vector<GroupedSamples>> GroupSum(const std::string& det_key,
                                               const std::string& attr) const;

 private:
  table::Schema det_schema_;
  std::vector<std::string> stoch_names_;
  size_t num_reps_;
  std::vector<BundleRow> rows_;
};

/// Generates a BundleTable realization of `spec` with `num_reps`
/// repetitions. Restricted to VG functions that emit exactly one row with a
/// single numeric column per call (the common case; multi-row VGs go
/// through the naive path). The deterministic part of each bundle is the
/// outer row; the VG value becomes stochastic attribute `attr_name`.
/// Statistically equivalent to `num_reps` independent Instantiate() calls.
Result<BundleTable> GenerateBundles(const MonteCarloDb& db,
                                    const StochasticTableSpec& spec,
                                    const std::string& attr_name,
                                    size_t num_reps, uint64_t seed);

}  // namespace mde::mcdb

#endif  // MDE_MCDB_BUNDLE_H_
