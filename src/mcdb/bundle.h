#ifndef MDE_MCDB_BUNDLE_H_
#define MDE_MCDB_BUNDLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mcdb/mcdb.h"
#include "obs/context.h"
#include "obs/mem.h"
#include "table/ops.h"
#include "table/table.h"
#include "util/aligned.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mde::mcdb {

class BundleTable;
class MonteCarloDb;
struct StochasticTableSpec;

namespace internal {
/// Keep-list generation core shared by GenerateBundles and the
/// pre-generation planner (pregen.h). Generates bundles only for the outer
/// rows listed in `keep` (strictly ascending ORIGINAL row indices; nullptr
/// = every row). Each generated row seeds its RNG substream by its original
/// outer index, never its output position, so the result is bit-identical
/// to generating every row and then dropping the non-kept ones.
Result<BundleTable> GenerateBundlesImpl(const MonteCarloDb& db,
                                        const StochasticTableSpec& spec,
                                        const std::string& attr_name,
                                        size_t num_reps, uint64_t seed,
                                        ThreadPool* pool,
                                        const std::vector<uint32_t>* keep);
}  // namespace internal

/// Tuple-bundle executor (Section 2.1): instead of instantiating the
/// database and running the query plan once per Monte Carlo repetition, a
/// BundleTable keeps, for each logical tuple, its deterministic attributes
/// once and each uncertain attribute as an array of `num_reps` instantiated
/// values. A query plan is then executed once, with per-repetition activity
/// masks standing in for per-instance tuple existence.
///
/// Storage is columnar (SoA): stochastic attribute k lives in one
/// contiguous rep-major block where value (row i, rep r) is
/// `stoch_block(k)[i * num_reps + r]`, and activity masks are packed into
/// 64-bit words (`words_per_row()` words per row, padding bits zero). The
/// filter/aggregate kernels are tight loops over these blocks — this is the
/// batch-oriented layout that makes tuple-bundle execution amortize plan
/// work across repetitions instead of chasing per-tuple pointers.
///
/// Parallelism: attach a ThreadPool with set_pool() and the kernels split
/// the row range into fixed chunks of kRowGrain rows. Chunk boundaries and
/// the partial-aggregate combine order depend only on the row count, so
/// results are bit-identical for any thread count (and for the serial
/// pool-less path, which walks the same chunks in order).
class BundleTable {
 public:
  /// Fixed row-chunk size for all kernels. A constant — never derived from
  /// the pool size — so that floating-point combine order, and hence every
  /// aggregate bit, is independent of the number of threads.
  static constexpr size_t kRowGrain = 256;
  /// Row chunks must cover whole 64-bit activity words when masks are
  /// addressed by row index (one word per 64 rows) — the SIMD mask kernels
  /// rely on chunk boundaries never tearing a packed word.
  static_assert(kRowGrain % 64 == 0,
                "row chunks must cover whole 64-bit mask words");

  /// One logical tuple in row form: interchange type for Append()/row().
  /// Internally the table is columnar; this materialized view exists for
  /// row-at-a-time construction and debugging.
  struct BundleRow {
    table::Row det;
    /// stoch[k][r] = value of stochastic attribute k in repetition r.
    std::vector<std::vector<double>> stoch;
    /// active[r] = does this tuple exist in repetition r.
    std::vector<uint8_t> active;
  };

  BundleTable(table::Schema det_schema, std::vector<std::string> stoch_names,
              size_t num_reps);

  const table::Schema& det_schema() const { return det_schema_; }
  size_t num_reps() const { return num_reps_; }
  size_t num_rows() const { return det_rows_.size(); }

  /// Executor pool for the filter/map/aggregate kernels; nullptr (default)
  /// runs them serially. Not owned. Derived tables inherit the pool.
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* pool() const { return pool_; }

  /// Materializes row `i` (deterministic part, per-rep values, mask bytes).
  /// O(num_stoch * num_reps) per call — use the columnar accessors below in
  /// hot code.
  BundleRow row(size_t i) const;

  const table::Row& det_row(size_t i) const { return det_rows_[i]; }

  /// Contiguous rep-major value block of stochastic attribute k (64-byte
  /// aligned for the SIMD kernels).
  const AlignedVector<double>& stoch_block(size_t k) const {
    return *stoch_[k];
  }

  /// Packed activity-mask words; row i occupies
  /// [i * words_per_row(), (i + 1) * words_per_row()).
  const AlignedVector<uint64_t>& active_words() const { return active_; }
  size_t words_per_row() const { return words_per_row_; }

  bool is_active(size_t i, size_t rep) const {
    return (active_[i * words_per_row_ + rep / 64] >> (rep % 64)) & 1u;
  }

  /// Index of a stochastic attribute by name; error if absent.
  Result<size_t> StochIndex(const std::string& name) const;

  /// Approximate heap footprint of the bundle storage: stochastic value
  /// blocks, packed mask words, and the deterministic rows counted
  /// shallowly (vector capacities, not boxed Value payloads). This is what
  /// the table reports to the `mcdb.bundle` memory pool (obs/mem.h).
  uint64_t ApproxBytes() const;

  /// Appends a bundle row (arity- and length-checked).
  void Append(BundleRow row);

  /// sigma over deterministic attributes — evaluated ONCE for all
  /// repetitions; this is where tuple bundles beat the naive loop. `pred`
  /// must be safe to call concurrently (pure) when a pool is attached.
  BundleTable FilterDet(const table::RowPredicate& pred) const;

  /// sigma over a stochastic attribute — updates activity masks
  /// per-repetition, keeping a tuple if it survives in at least one
  /// repetition.
  Result<BundleTable> FilterStoch(const std::string& attr, table::CmpOp op,
                                  double threshold) const;

  /// Adds stochastic attribute `name` computed per-repetition from the
  /// deterministic row and the existing stochastic values. `fn` must be
  /// safe to call concurrently (pure) when a pool is attached.
  Result<BundleTable> MapStoch(
      const std::string& name,
      const std::function<double(const table::Row& det,
                                 const std::vector<double>& stoch_at_rep)>&
          fn) const;

  /// SUM(attr) per repetition over active tuples: the bundled equivalent of
  /// running "SELECT SUM(attr)" on every database instance.
  Result<std::vector<double>> AggregateSum(const std::string& attr) const;

  /// AVG(attr) per repetition over active tuples (0 when none active).
  Result<std::vector<double>> AggregateAvg(const std::string& attr) const;

  /// COUNT(*) per repetition.
  std::vector<double> AggregateCount() const;

  /// Grouped SUM(attr): per distinct value of deterministic column
  /// `det_key`, the per-repetition sums over active tuples — the bundled
  /// equivalent of "SELECT key, SUM(attr) ... GROUP BY key" per database
  /// instance. Groups appear in order of first appearance. Feeds the
  /// paper's threshold queries ("which regions decline by more than 2% with
  /// at least 50% probability?").
  struct GroupedSamples {
    std::string group;
    std::vector<double> sums;  // one per repetition
  };
  Result<std::vector<GroupedSamples>> GroupSum(const std::string& det_key,
                                               const std::string& attr) const;

 private:
  /// Runs fn(chunk, begin, end) over fixed kRowGrain row chunks — on the
  /// pool when attached, otherwise serially in ascending chunk order.
  void RunRowChunks(
      size_t n,
      const std::function<void(size_t chunk, size_t begin, size_t end)>& fn)
      const;

  /// Deterministic chunked reduction over rows: identical chunking and
  /// combine order with or without a pool.
  template <typename T>
  T ReduceRows(T identity, const std::function<T(size_t, size_t)>& map,
               const std::function<T(T, T)>& combine) const {
    const size_t n = num_rows();
    if (n == 0) return identity;
    if (pool_ != nullptr) {
      return pool_->ParallelReduce<T>(n, kRowGrain, identity, map, combine);
    }
    const size_t chunks = (n + kRowGrain - 1) / kRowGrain;
    T acc = map(0, std::min(n, kRowGrain));
    for (size_t c = 1; c < chunks; ++c) {
      const size_t begin = c * kRowGrain;
      acc = combine(std::move(acc), map(begin, std::min(n, begin + kRowGrain)));
    }
    return acc;
  }

  /// Copies the rows listed in `keep` (with per-row mask words taken from
  /// `masks`, which may alias active_.data()) into `out`.
  void GatherRows(const std::vector<uint32_t>& keep, const uint64_t* masks,
                  BundleTable* out) const;

  /// Clone-on-write access to stochastic block k: derived tables share
  /// value blocks by shared_ptr (an all-rows-surviving filter or a MapStoch
  /// is then O(1) per inherited attribute), so any mutation must first
  /// un-share the block.
  AlignedVector<double>& MutableStoch(size_t k) {
    if (stoch_[k].use_count() > 1) {
      stoch_[k] = std::make_shared<AlignedVector<double>>(*stoch_[k]);
    }
    return *stoch_[k];
  }

  table::Schema det_schema_;
  std::vector<std::string> stoch_names_;
  size_t num_reps_;
  size_t words_per_row_;
  std::vector<table::Row> det_rows_;
  /// stoch_[k] has num_rows * num_reps doubles, rep-major per row. 64-byte
  /// aligned so a full activity word's 64 doubles share cache lines cleanly
  /// with the widest vector loads. Blocks are shared across derived tables
  /// (never null); mutate only through MutableStoch.
  std::vector<std::shared_ptr<AlignedVector<double>>> stoch_;
  /// num_rows * words_per_row_ packed mask words; padding bits are zero.
  AlignedVector<uint64_t> active_;
  ThreadPool* pool_ = nullptr;
  /// Reports ApproxBytes() to the `mcdb.bundle` pool; capacity-based, so
  /// counter writes happen on geometric growth, not per appended row.
  /// Copy/move/destroy semantics keep live-byte accounting exact for
  /// by-value derived tables.
  obs::MemAccount mem_{"mcdb.bundle"};

  /// Re-reports the current footprint after storage-changing operations.
  /// Growth is also attributed to the active query (bundle_bytes counts
  /// bytes ALLOCATED on the query's behalf, mirroring the pool's monotone
  /// alloc_bytes counter, not a live-byte gauge).
  void AccountStorage() {
    const uint64_t bytes = ApproxBytes();
    if (bytes > mem_.bytes()) {
      MDE_OBS_ATTR_ADD(bundle_bytes, bytes - mem_.bytes());
    }
    mem_.Set(bytes);
  }

  friend Result<BundleTable> GenerateBundles(const MonteCarloDb& db,
                                             const StochasticTableSpec& spec,
                                             const std::string& attr_name,
                                             size_t num_reps, uint64_t seed,
                                             ThreadPool* pool);
  friend Result<BundleTable> internal::GenerateBundlesImpl(
      const MonteCarloDb& db, const StochasticTableSpec& spec,
      const std::string& attr_name, size_t num_reps, uint64_t seed,
      ThreadPool* pool, const std::vector<uint32_t>* keep);
};

/// Generates a BundleTable realization of `spec` with `num_reps`
/// repetitions. Restricted to VG functions that emit exactly one row with a
/// single numeric column per call (the common case; multi-row VGs go
/// through the naive path). The deterministic part of each bundle is the
/// outer row; the VG value becomes stochastic attribute `attr_name`.
/// Statistically equivalent to `num_reps` independent Instantiate() calls.
///
/// Each row draws its repetitions sequentially from its own RNG substream,
/// so generation is parallelized over rows when `pool` is non-null with
/// bit-identical output for any thread count; the produced table inherits
/// `pool`.
Result<BundleTable> GenerateBundles(const MonteCarloDb& db,
                                    const StochasticTableSpec& spec,
                                    const std::string& attr_name,
                                    size_t num_reps, uint64_t seed,
                                    ThreadPool* pool = nullptr);

}  // namespace mde::mcdb

#endif  // MDE_MCDB_BUNDLE_H_
