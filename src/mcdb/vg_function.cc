#include "mcdb/vg_function.h"

#include <cmath>

#include "simd/simd.h"

namespace mde::mcdb {

using table::DataType;
using table::Row;
using table::Schema;
using table::Value;

NormalVg::NormalVg()
    : name_("Normal"),
      schema_(Schema({{"VALUE", DataType::kDouble}})) {}

Status NormalVg::Generate(const Row& params, Rng& rng,
                          std::vector<Row>* out) const {
  if (params.size() != 2) {
    return Status::InvalidArgument("Normal VG expects (mean, std)");
  }
  const double mean = params[0].AsDouble();
  const double std = params[1].AsDouble();
  if (std < 0.0) return Status::InvalidArgument("std must be >= 0");
  out->push_back({Value(SampleNormal(rng, mean, std))});
  return Status::OK();
}

bool NormalVg::GenerateScalar(const Row& params, Rng& rng,
                              double* out) const {
  // Parameters are validated BEFORE any sampling so that a false return
  // leaves `rng` untouched (Generate() on the same stream then reproduces
  // the identical draw).
  if (params.size() != 2) return false;
  const double mean = params[0].AsDouble();
  const double std = params[1].AsDouble();
  if (std < 0.0) return false;
  *out = SampleNormal(rng, mean, std);
  return true;
}

bool NormalVg::GenerateScalarN(const Row& params, Rng& rng, size_t n,
                               double* out) const {
  // Validation precedes the BatchRng seed draws so a false return leaves
  // `rng` untouched.
  if (params.size() != 2) return false;
  const double mean = params[0].AsDouble();
  const double sigma = params[1].AsDouble();
  if (sigma < 0.0) return false;
  // Batched Box-Muller over four interleaved vectorized generator lanes
  // (util/rng.h BatchRng): fills whole simd::kRngBatch blocks of unit
  // normals through the dispatched kernel tier, then applies the affine
  // parameter map in one dense pass. A different (but still i.i.d. N(0,1))
  // stream than the scalar Generate() path — the N-draw contract makes only
  // the joint distribution contractual.
  BatchRng batch(rng);
  batch.FillNormal(out, n);
  simd::AffineMapF64(out, n, sigma, mean, out);
  return true;
}

UniformVg::UniformVg()
    : name_("Uniform"),
      schema_(Schema({{"VALUE", DataType::kDouble}})) {}

Status UniformVg::Generate(const Row& params, Rng& rng,
                           std::vector<Row>* out) const {
  if (params.size() != 2) {
    return Status::InvalidArgument("Uniform VG expects (lo, hi)");
  }
  const double lo = params[0].AsDouble();
  const double hi = params[1].AsDouble();
  if (lo > hi) return Status::InvalidArgument("lo must be <= hi");
  out->push_back({Value(SampleUniform(rng, lo, hi))});
  return Status::OK();
}

bool UniformVg::GenerateScalar(const Row& params, Rng& rng,
                               double* out) const {
  if (params.size() != 2) return false;
  const double lo = params[0].AsDouble();
  const double hi = params[1].AsDouble();
  if (lo > hi) return false;
  *out = SampleUniform(rng, lo, hi);
  return true;
}

bool UniformVg::GenerateScalarN(const Row& params, Rng& rng, size_t n,
                                double* out) const {
  if (params.size() != 2) return false;
  const double lo = params[0].AsDouble();
  const double hi = params[1].AsDouble();
  if (lo > hi) return false;
  // Batched unit uniforms + affine map to [lo, hi); same blocked-stream
  // caveat as NormalVg::GenerateScalarN.
  BatchRng batch(rng);
  batch.FillUniform(out, n);
  simd::AffineMapF64(out, n, hi - lo, lo, out);
  return true;
}

PoissonVg::PoissonVg()
    : name_("Poisson"),
      schema_(Schema({{"VALUE", DataType::kInt64}})) {}

Status PoissonVg::Generate(const Row& params, Rng& rng,
                           std::vector<Row>* out) const {
  if (params.size() != 1) {
    return Status::InvalidArgument("Poisson VG expects (lambda)");
  }
  const double lambda = params[0].AsDouble();
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  out->push_back({Value(SamplePoisson(rng, lambda))});
  return Status::OK();
}

bool PoissonVg::GenerateScalar(const Row& params, Rng& rng,
                               double* out) const {
  if (params.size() != 1) return false;
  const double lambda = params[0].AsDouble();
  if (lambda < 0.0) return false;
  // Matches Value(int64).AsDouble() on the slow path.
  *out = static_cast<double>(SamplePoisson(rng, lambda));
  return true;
}

bool PoissonVg::GenerateScalarN(const Row& params, Rng& rng, size_t n,
                                double* out) const {
  if (params.size() != 1) return false;
  const double lambda = params[0].AsDouble();
  if (lambda < 0.0) return false;
  for (size_t r = 0; r < n; ++r) {
    out[r] = static_cast<double>(SamplePoisson(rng, lambda));
  }
  return true;
}

BernoulliVg::BernoulliVg()
    : name_("Bernoulli"),
      schema_(Schema({{"VALUE", DataType::kBool}})) {}

Status BernoulliVg::Generate(const Row& params, Rng& rng,
                             std::vector<Row>* out) const {
  if (params.size() != 1) {
    return Status::InvalidArgument("Bernoulli VG expects (p)");
  }
  const double p = params[0].AsDouble();
  if (p < 0.0 || p > 1.0) return Status::InvalidArgument("p in [0,1]");
  out->push_back({Value(SampleBernoulli(rng, p))});
  return Status::OK();
}

BackwardRandomWalkVg::BackwardRandomWalkVg()
    : name_("BackwardRandomWalk"),
      schema_(Schema({{"STEP", DataType::kInt64},
                      {"VALUE", DataType::kDouble}})) {}

Status BackwardRandomWalkVg::Generate(const Row& params, Rng& rng,
                                      std::vector<Row>* out) const {
  if (params.size() != 4) {
    return Status::InvalidArgument(
        "BackwardRandomWalk VG expects (price, drift, vol, steps)");
  }
  double price = params[0].AsDouble();
  const double drift = params[1].AsDouble();
  const double vol = params[2].AsDouble();
  const int64_t steps = params[3].AsInt();
  if (price <= 0.0 || vol < 0.0 || steps < 1) {
    return Status::InvalidArgument("bad random-walk parameters");
  }
  for (int64_t s = 1; s <= steps; ++s) {
    // Invert one geometric-Brownian step to walk backwards in time.
    const double z = SampleStandardNormal(rng);
    price /= std::exp(drift - 0.5 * vol * vol + vol * z);
    out->push_back({Value(-s), Value(price)});
  }
  return Status::OK();
}

DiscreteVg::DiscreteVg()
    : name_("Discrete"),
      schema_(Schema({{"VALUE", DataType::kInt64}})) {}

Status DiscreteVg::Generate(const Row& params, Rng& rng,
                            std::vector<Row>* out) const {
  if (params.empty()) {
    return Status::InvalidArgument("Discrete VG expects >= 1 weight");
  }
  std::vector<double> weights;
  weights.reserve(params.size());
  double total = 0.0;
  for (const Value& v : params) {
    const double w = v.AsDouble();
    if (w < 0.0) return Status::InvalidArgument("weights must be >= 0");
    weights.push_back(w);
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("weights must not all be zero");
  }
  AliasTable table(weights);
  out->push_back({Value(static_cast<int64_t>(table.Sample(rng)))});
  return Status::OK();
}

bool DiscreteVg::GenerateScalar(const Row& params, Rng& rng,
                                double* out) const {
  if (params.empty()) return false;
  std::vector<double> weights;
  weights.reserve(params.size());
  double total = 0.0;
  for (const Value& v : params) {
    const double w = v.AsDouble();
    if (w < 0.0) return false;
    weights.push_back(w);
    total += w;
  }
  if (total <= 0.0) return false;
  AliasTable table(weights);
  *out = static_cast<double>(table.Sample(rng));
  return true;
}

bool DiscreteVg::GenerateScalarN(const Row& params, Rng& rng, size_t n,
                                 double* out) const {
  if (params.empty()) return false;
  std::vector<double> weights;
  weights.reserve(params.size());
  double total = 0.0;
  for (const Value& v : params) {
    const double w = v.AsDouble();
    if (w < 0.0) return false;
    weights.push_back(w);
    total += w;
  }
  if (total <= 0.0) return false;
  // One alias-table build amortized over the whole batch.
  AliasTable table(weights);
  for (size_t r = 0; r < n; ++r) {
    out[r] = static_cast<double>(table.Sample(rng));
  }
  return true;
}

BayesianDemandVg::BayesianDemandVg()
    : name_("BayesianDemand"),
      schema_(Schema({{"DEMAND", DataType::kInt64}})) {}

Status BayesianDemandVg::Generate(const Row& params, Rng& rng,
                                  std::vector<Row>* out) const {
  if (params.size() != 7) {
    return Status::InvalidArgument(
        "BayesianDemand VG expects (prior_shape, prior_rate, purchases, "
        "periods, price, ref_price, elasticity)");
  }
  const double prior_shape = params[0].AsDouble();
  const double prior_rate = params[1].AsDouble();
  const double purchases = params[2].AsDouble();
  const double periods = params[3].AsDouble();
  const double price = params[4].AsDouble();
  const double ref_price = params[5].AsDouble();
  const double elasticity = params[6].AsDouble();
  if (prior_shape <= 0.0 || prior_rate <= 0.0 || periods < 0.0 ||
      ref_price <= 0.0 || price <= 0.0) {
    return Status::InvalidArgument("bad demand parameters");
  }
  // Gamma-Poisson conjugacy: posterior rate parameter for this customer.
  const double post_shape = prior_shape + purchases;
  const double post_rate = prior_rate + periods;
  const double base_rate = SampleGamma(rng, post_shape, 1.0 / post_rate);
  // Constant-elasticity price response.
  const double rate = base_rate * std::pow(price / ref_price, -elasticity);
  out->push_back({Value(SamplePoisson(rng, rate))});
  return Status::OK();
}

bool BayesianDemandVg::GenerateScalar(const Row& params, Rng& rng,
                                      double* out) const {
  if (params.size() != 7) return false;
  const double prior_shape = params[0].AsDouble();
  const double prior_rate = params[1].AsDouble();
  const double purchases = params[2].AsDouble();
  const double periods = params[3].AsDouble();
  const double price = params[4].AsDouble();
  const double ref_price = params[5].AsDouble();
  const double elasticity = params[6].AsDouble();
  if (prior_shape <= 0.0 || prior_rate <= 0.0 || periods < 0.0 ||
      ref_price <= 0.0 || price <= 0.0) {
    return false;
  }
  const double post_shape = prior_shape + purchases;
  const double post_rate = prior_rate + periods;
  const double base_rate = SampleGamma(rng, post_shape, 1.0 / post_rate);
  const double rate = base_rate * std::pow(price / ref_price, -elasticity);
  *out = static_cast<double>(SamplePoisson(rng, rate));
  return true;
}

}  // namespace mde::mcdb
