#ifndef MDE_MCDB_VARIANCE_REDUCTION_H_
#define MDE_MCDB_VARIANCE_REDUCTION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.h"

#include "util/status.h"

namespace mde::mcdb {

/// Classical Monte Carlo efficiency boosters in the Hammersley-Handscomb
/// cost-times-variance sense the paper adopts (Section 2.3): for a fixed
/// budget, cutting estimator variance is worth exactly as much as cutting
/// per-run cost.

/// Plain Monte Carlo estimate of E[f(U)] with U ~ Uniform(0,1).
struct McEstimate {
  double mean = 0.0;
  double variance = 0.0;   // variance of one sample (or pair average)
  double std_error = 0.0;  // of the mean
  size_t samples = 0;
};

McEstimate PlainMonteCarlo(const std::function<double(double)>& f, size_t n,
                           uint64_t seed);

/// Antithetic variates: evaluates f at U and 1-U and averages the pair.
/// For monotone f the pair members are negatively correlated, so the
/// pair-average variance drops below half the plain-sample variance — a
/// free efficiency gain at the same number of f evaluations.
McEstimate AntitheticMonteCarlo(const std::function<double(double)>& f,
                                size_t pairs, uint64_t seed);

/// Control variates: given paired samples (y_i, x_i) where E[X] = mu_x is
/// known, returns the regression-adjusted estimator
///   theta = ybar - beta (xbar - mu_x),  beta = Cov(Y, X) / Var(X),
/// whose variance shrinks by the squared correlation between Y and X.
struct ControlVariateEstimate {
  double mean = 0.0;
  double std_error = 0.0;
  double beta = 0.0;
  /// Var(plain) / Var(adjusted): > 1 when the control helps.
  double variance_reduction_factor = 1.0;
};

Result<ControlVariateEstimate> ControlVariate(const std::vector<double>& y,
                                              const std::vector<double>& x,
                                              double x_mean);

/// Common random numbers: when comparing two system configurations, feeding
/// both the SAME random-number substream per replication makes their
/// outputs positively correlated, shrinking Var(A - B) — the right way to
/// answer "is configuration A better than B" with simulation. `run` maps
/// (config_id in {0,1}, rng) to one output.
struct CrnComparison {
  double mean_difference = 0.0;
  /// Std error of the difference under CRN.
  double crn_std_error = 0.0;
  /// Std error the same budget achieves with independent streams.
  double independent_std_error = 0.0;
  /// independent variance / CRN variance (> 1 when CRN helps).
  double variance_reduction_factor = 1.0;
};

Result<CrnComparison> CompareWithCrn(
    const std::function<double(int config, Rng& rng)>& run, size_t reps,
    uint64_t seed);

}  // namespace mde::mcdb

#endif  // MDE_MCDB_VARIANCE_REDUCTION_H_
