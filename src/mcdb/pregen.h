#ifndef MDE_MCDB_PREGEN_H_
#define MDE_MCDB_PREGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mcdb/bundle.h"
#include "mcdb/mcdb.h"
#include "table/plan.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mde::mcdb {

/// What the pre-generation planner did for one GenerateBundlesWhere call.
struct PregenReport {
  size_t outer_rows = 0;   // rows in the FOR EACH table
  size_t kept_rows = 0;    // rows surviving the deterministic predicates
  size_t rows_pruned = 0;  // outer_rows - kept_rows
  size_t draws_saved = 0;  // rows_pruned * num_reps VG draws never made
};

/// Pre-generation pushdown (the stochastic half of the cost-based
/// optimizer): the deterministic predicates of
///
///   GenerateBundles(...).FilterDet(p1 AND p2 AND ...)
///
/// are hoisted BELOW the VG-function generation — the planner evaluates
/// them against the outer table first (vectorized over its cached columnar
/// blocks when available, ordered most-selective-first by the statistics
/// catalog) and only the surviving rows ever bind parameters or draw Monte
/// Carlo repetitions.
///
/// Bit-identical to the generate-then-filter form for every thread count:
/// each row's RNG substream is keyed by its original outer index, and the
/// predicate semantics are exactly FilterDet's (nulls never match, numerics
/// compare as double). Predicate evaluation order cannot change the
/// surviving set — ordering is purely a cost decision.
Result<BundleTable> GenerateBundlesWhere(
    const MonteCarloDb& db, const StochasticTableSpec& spec,
    const std::string& attr_name, size_t num_reps, uint64_t seed,
    std::vector<table::PlanPredicate> det_preds, ThreadPool* pool = nullptr,
    PregenReport* report = nullptr);

}  // namespace mde::mcdb

#endif  // MDE_MCDB_PREGEN_H_
