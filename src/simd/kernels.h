#ifndef MDE_SIMD_KERNELS_H_
#define MDE_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "simd/simd.h"

/// Internal dispatch plumbing. Each tier provides one KernelTable of plain
/// function pointers; dispatch.cc selects the table once on first use (and
/// on SetTier). The public functions in simd.h are thin wrappers in
/// dispatch.cc that jump through ActiveTable().
namespace mde::simd::internal {

struct KernelTable {
  void (*cmp_f64_bitmap)(const double*, size_t, Cmp, double, uint64_t*);
  void (*cmp_i64_range_bitmap)(const int64_t*, size_t, int64_t, int64_t, bool,
                               uint64_t*);
  void (*cmp_u32_eq_bitmap)(const uint32_t*, size_t, uint32_t, bool,
                            uint64_t*);
  void (*cmp_u8_bitmap)(const uint8_t*, size_t, bool, uint64_t*);
  void (*and_words)(const uint64_t*, const uint64_t*, size_t, uint64_t*);
  void (*or_words)(const uint64_t*, const uint64_t*, size_t, uint64_t*);
  void (*andnot_words)(const uint64_t*, const uint64_t*, size_t, uint64_t*);
  uint64_t (*popcount_words)(const uint64_t*, size_t);
  uint64_t (*cmp_f64_mask_word)(const double*, size_t, Cmp, double);
  void (*masked_add_f64_word)(double*, const double*, uint64_t);
  void (*masked_add_const_f64_word)(double*, double, uint64_t);
  void (*add_f64)(double*, const double*, size_t);
  void (*add_const_f64)(double*, double, size_t);
  void (*affine_map_f64)(const double*, size_t, double, double, double*);
  double (*sum_f64)(const double*, size_t);
  double (*min_f64)(const double*, size_t);
  double (*max_f64)(const double*, size_t);
  void (*rng_block)(uint64_t*, uint64_t*);
  void (*uniform_block)(const uint64_t*, double*);
  void (*normal_block)(const uint64_t*, double*);
};

/// The scalar table always exists; the vector tables exist only in builds
/// that compile the vector TUs (x86-64, MDE_SIMD_FORCE_SCALAR off).
const KernelTable* ScalarTable();
#ifndef MDE_SIMD_SCALAR_ONLY
const KernelTable* Sse4Table();
const KernelTable* Avx2Table();
#endif

/// The table the process currently dispatches through. Lazily initialized
/// (function-local static) from CPUID + MDE_SIMD, so there is no static
/// initialization order hazard for kernels called during other TUs' init.
const KernelTable& ActiveTable();

}  // namespace mde::simd::internal

#endif  // MDE_SIMD_KERNELS_H_
