#ifndef MDE_SIMD_SIMD_H_
#define MDE_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

/// Runtime-dispatched SIMD kernel layer (ROADMAP item 3).
///
/// Three implementations of every kernel — portable scalar, SSE4.2, AVX2 —
/// are selected ONCE at startup from CPUID (overridable with the MDE_SIMD
/// environment variable: "scalar", "sse4" or "avx2", clamped to what the
/// hardware supports). Callers go through the free functions below, which
/// jump through a per-process dispatch table.
///
/// The contract that makes this layer safe to drop under the deterministic
/// execution engine: every kernel produces BITWISE-IDENTICAL output on
/// every tier.
///  - Integer / comparison / bitmap kernels are exact by nature.
///  - Elementwise float kernels (adds, affine maps) perform the same IEEE
///    operation per element; IEEE +,-,*,/,sqrt are correctly rounded, so
///    scalar and vector agree operation-for-operation. FMA contraction is
///    disabled in all kernel translation units (-ffp-contract=off, no
///    -mfma) precisely so the op DAG stays identical.
///  - Horizontal float reductions (SumF64/MinF64/MaxF64) use a FIXED
///    4-lane-strided tree implemented with the same shape on every tier.
///  - Transcendentals (the batched RNG's log / sin / cos) share one
///    templated polynomial implementation instantiated per lane type, so
///    the operation DAG is identical by construction.
/// The differential suite (tests/simd_test.cc) sweeps every kernel across
/// tiers x thread counts and asserts equality bit-for-bit.
namespace mde::simd {

/// Dispatch tiers, ordered: higher value = wider vectors.
enum class Tier : int { kScalar = 0, kSse4 = 1, kAvx2 = 2 };

/// Lowercase tier name ("scalar" / "sse4" / "avx2") — stable strings used
/// by MDE_SIMD parsing, the obs gauge and benchmark context.
const char* TierName(Tier t);

/// The tier the dispatch table currently points at.
Tier ActiveTier();

/// Best tier this CPU (and this build) supports.
Tier BestSupportedTier();

/// Re-points the dispatch table at `t` (clamped to BestSupportedTier) and
/// refreshes the `simd.tier` gauge. For tests and tools only; not safe to
/// call concurrently with running kernels.
void SetTier(Tier t);

/// Re-reads MDE_SIMD and the CPU, as done once at startup. Returns the tier
/// now active.
Tier InitFromEnv();

/// Comparison predicate with C++ operator semantics on doubles: ordered
/// (false on NaN operands) except kNe, which is true when either side is
/// NaN — exactly `!=`.
enum class Cmp : int { kEq = 0, kNe, kLt, kLe, kGt, kGe };

/// Kernel identifiers for the per-kernel dispatch counters
/// (`simd.dispatch.<kernel>.<tier>`). Block-level kernels count themselves
/// once per call; word-level kernels are counted by their caller at
/// operator granularity via CountKernel() to keep the per-word path free
/// of counter traffic.
enum class KernelId : int {
  kCmpF64Bitmap = 0,
  kCmpI64RangeBitmap,
  kCmpU32EqBitmap,
  kCmpU8Bitmap,
  kBitmapWords,
  kPopcountWords,
  kCmpF64MaskWord,
  kMaskedAddF64,
  kAddF64,
  kSumF64,
  kMinMaxF64,
  kAffineMapF64,
  kRngBlock,
  kUniformBlock,
  kNormalBlock,
  kNumKernels
};

/// Records one dispatch of `k` on the active tier. Cheap (one relaxed
/// fetch_add through a cached handle); still, call it per OPERATOR, not per
/// word.
void CountKernel(KernelId k);

// ---------------------------------------------------------------------------
// Bitmap-producing comparisons (dense, position-addressed).
// `out` receives ceil(n/64) words, fully overwritten; bit j of the bitmap
// corresponds to element j; padding bits of the last word are zero.
// ---------------------------------------------------------------------------

/// bit j = (data[j] op lit), IEEE semantics as documented on Cmp.
void CmpF64Bitmap(const double* data, size_t n, Cmp op, double lit,
                  uint64_t* out);

/// bit j = (lo <= data[j] && data[j] <= hi) XOR negate. Pure int64
/// compares; an empty range (lo > hi) yields all-zero (or all-one when
/// negated). This is the engine's int64-compared-as-double filter: the
/// monotone int64->double conversion turns any double-threshold predicate
/// into an int64 range test (see table/vec_ops.cc).
void CmpI64RangeBitmap(const int64_t* data, size_t n, int64_t lo, int64_t hi,
                       bool negate, uint64_t* out);

/// bit j = (data[j] == code) XOR negate. Dictionary-code equality.
void CmpU32EqBitmap(const uint32_t* data, size_t n, uint32_t code,
                    bool negate, uint64_t* out);

/// bit j = (data[j] != 0) == match_nonzero. Bool-column filter.
void CmpU8Bitmap(const uint8_t* data, size_t n, bool match_nonzero,
                 uint64_t* out);

// ---------------------------------------------------------------------------
// Packed 64-bit bitmap words.
// ---------------------------------------------------------------------------

void AndWords(const uint64_t* a, const uint64_t* b, size_t nwords,
              uint64_t* out);
void OrWords(const uint64_t* a, const uint64_t* b, size_t nwords,
             uint64_t* out);
/// out = a & ~b.
void AndNotWords(const uint64_t* a, const uint64_t* b, size_t nwords,
                 uint64_t* out);
/// Total set bits.
uint64_t PopcountWords(const uint64_t* w, size_t nwords);

/// Appends the positions of set bits as `base + bit_index`, ascending.
/// `out` must have room for PopcountWords(words, nwords) entries; returns
/// the number written. Selection-vector compaction.
size_t BitmapToSel(const uint64_t* words, size_t nwords, uint32_t base,
                   uint32_t* out);

// ---------------------------------------------------------------------------
// Mask-word kernels for the tuple-bundle executor (mcdb/bundle.cc):
// one packed 64-bit activity word at a time.
// ---------------------------------------------------------------------------

/// Returns the mask with bit b = (data[b] op lit) for b < nbits (<= 64);
/// higher bits zero. Evaluates every lane in [0, nbits), so callers AND the
/// result with the previous activity word.
uint64_t CmpF64MaskWord(const double* data, size_t nbits, Cmp op, double lit);

/// acc[b] += x[b] for every set bit b of mask (bits must address valid
/// elements of both arrays). Each element receives exactly one independent
/// add, so the result is order-invariant and tier-invariant.
void MaskedAddF64Word(double* acc, const double* x, uint64_t mask);

/// acc[b] += c for every set bit b of mask.
void MaskedAddConstF64Word(double* acc, double c, uint64_t mask);

/// Dense elementwise: acc[i] += x[i].
void AddF64(double* acc, const double* x, size_t n);

/// Dense elementwise: acc[i] += c.
void AddConstF64(double* acc, double c, size_t n);

/// Elementwise affine map: out[i] = offset + scale * in[i] (exactly two
/// rounding steps per element, never contracted to FMA). in == out allowed.
void AffineMapF64(const double* in, size_t n, double scale, double offset,
                  double* out);

// ---------------------------------------------------------------------------
// Fixed-shape horizontal reductions: 4 strided accumulators
// (acc[l] over elements i with i % 4 == l), tail folded into acc[i % 4],
// combined as (acc0 + acc1) + (acc2 + acc3). Every tier implements this
// exact tree, so the (single, deterministic) result is tier-invariant.
// ---------------------------------------------------------------------------

double SumF64(const double* x, size_t n);
/// Reduction op matches vminpd/vmaxpd: acc = (acc < x) ? acc : x, i.e. NaN
/// inputs propagate into the result. Returns +inf / -inf for n == 0.
double MinF64(const double* x, size_t n);
double MaxF64(const double* x, size_t n);

// ---------------------------------------------------------------------------
// Batched RNG blocks (util/rng.h's BatchRng is the stateful consumer).
// The batch grain is 64 draws — a divisor of table::kVecGrain and exactly
// one activity-bitmap word — fixed across tiers so per-row substreams are
// byte-identical regardless of dispatch tier or thread count.
// ---------------------------------------------------------------------------

inline constexpr size_t kRngBatch = 64;

/// Advances 4 interleaved xoshiro256++ lanes 16 steps each. `state` holds
/// the 16 state words in struct-of-arrays order (word w of lane l at
/// state[w * 4 + l]); `raw` receives the 64 outputs with lane l's s-th
/// output at raw[s * 4 + l].
void RngBlock(uint64_t* state, uint64_t* raw);

/// raw -> uniforms in [0, 1): out[j] = (raw[j] >> 12) * 2^-52. The 52-bit
/// mapping keeps the integer->double conversion exact on every tier.
void UniformBlock(const uint64_t* raw, double* out);

/// raw -> 64 standard normals via Box-Muller: for i < 32, with
/// u1 = ((raw[i] >> 12) + 1) * 2^-52 in (0, 1] and
/// u2 = (raw[32+i] >> 12) * 2^-52 in [0, 1),
///   r = sqrt(-2 log u1),  out[i] = r cos(2 pi u2),  out[32+i] = r sin(2 pi u2).
/// log/sin/cos are the shared polynomial implementations, so all tiers
/// produce identical bits.
void NormalBlock(const uint64_t* raw, double* out);

}  // namespace mde::simd

#endif  // MDE_SIMD_SIMD_H_
