#ifndef MDE_SIMD_KERNELS_IMPL_H_
#define MDE_SIMD_KERNELS_IMPL_H_

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "simd/simd.h"

/// Shared kernel bodies, included by every tier's translation unit.
///
/// Two kinds of code live here:
///  1. Scalar reference implementations (*Ref). The scalar tier IS these
///     functions; the vector tiers reuse them for sub-lane tails, which is
///     trivially bit-identical.
///  2. Templates over a lane-ops policy (ScalarOps here; Sse2Ops/Avx2Ops in
///     their TUs). The transcendental pipeline (log, sin/cos of 2*pi*u,
///     Box-Muller) is written ONCE against the policy, so every tier
///     executes the identical IEEE operation DAG and produces identical
///     bits per element — the property the differential suite locks in.
///
/// All TUs including this header are compiled with -ffp-contract=off and
/// without -mfma: a contracted a*b+c rounds once instead of twice and would
/// silently desynchronize tiers.
namespace mde::simd::internal {

// ---------------------------------------------------------------------------
// Scalar comparison semantics (match the AVX2 predicates used by the
// vector tiers: ordered except kNe, which is NEQ_UQ).
// ---------------------------------------------------------------------------

inline bool CmpScalar(double x, Cmp op, double lit) {
  switch (op) {
    case Cmp::kEq:
      return x == lit;
    case Cmp::kNe:
      return x != lit;
    case Cmp::kLt:
      return x < lit;
    case Cmp::kLe:
      return x <= lit;
    case Cmp::kGt:
      return x > lit;
    case Cmp::kGe:
      return x >= lit;
  }
  return false;
}

/// Builds a dense bitmap from pred(j); tail bits zero. `pred` is inlined
/// per instantiation so the scalar tier still compiles to a tight loop.
template <typename Pred>
inline void BuildBitmap(size_t n, uint64_t* out, Pred pred) {
  const size_t nwords = (n + 63) / 64;
  for (size_t w = 0; w < nwords; ++w) {
    const size_t base = w * 64;
    const size_t lim = n - base < 64 ? n - base : 64;
    uint64_t word = 0;
    for (size_t b = 0; b < lim; ++b) {
      word |= static_cast<uint64_t>(pred(base + b)) << b;
    }
    out[w] = word;
  }
}

inline void CmpF64BitmapRef(const double* data, size_t n, Cmp op, double lit,
                            uint64_t* out) {
  switch (op) {
    case Cmp::kEq:
      BuildBitmap(n, out, [&](size_t j) { return data[j] == lit; });
      break;
    case Cmp::kNe:
      BuildBitmap(n, out, [&](size_t j) { return data[j] != lit; });
      break;
    case Cmp::kLt:
      BuildBitmap(n, out, [&](size_t j) { return data[j] < lit; });
      break;
    case Cmp::kLe:
      BuildBitmap(n, out, [&](size_t j) { return data[j] <= lit; });
      break;
    case Cmp::kGt:
      BuildBitmap(n, out, [&](size_t j) { return data[j] > lit; });
      break;
    case Cmp::kGe:
      BuildBitmap(n, out, [&](size_t j) { return data[j] >= lit; });
      break;
  }
}

inline void CmpI64RangeBitmapRef(const int64_t* data, size_t n, int64_t lo,
                                 int64_t hi, bool negate, uint64_t* out) {
  if (negate) {
    BuildBitmap(n, out,
                [&](size_t j) { return !(lo <= data[j] && data[j] <= hi); });
  } else {
    BuildBitmap(n, out,
                [&](size_t j) { return lo <= data[j] && data[j] <= hi; });
  }
}

inline void CmpU32EqBitmapRef(const uint32_t* data, size_t n, uint32_t code,
                              bool negate, uint64_t* out) {
  if (negate) {
    BuildBitmap(n, out, [&](size_t j) { return data[j] != code; });
  } else {
    BuildBitmap(n, out, [&](size_t j) { return data[j] == code; });
  }
}

inline void CmpU8BitmapRef(const uint8_t* data, size_t n, bool match_nonzero,
                           uint64_t* out) {
  if (match_nonzero) {
    BuildBitmap(n, out, [&](size_t j) { return data[j] != 0; });
  } else {
    BuildBitmap(n, out, [&](size_t j) { return data[j] == 0; });
  }
}

// ---------------------------------------------------------------------------
// Bitmap words.
// ---------------------------------------------------------------------------

inline void AndWordsRef(const uint64_t* a, const uint64_t* b, size_t nwords,
                        uint64_t* out) {
  for (size_t w = 0; w < nwords; ++w) out[w] = a[w] & b[w];
}

inline void OrWordsRef(const uint64_t* a, const uint64_t* b, size_t nwords,
                       uint64_t* out) {
  for (size_t w = 0; w < nwords; ++w) out[w] = a[w] | b[w];
}

inline void AndNotWordsRef(const uint64_t* a, const uint64_t* b, size_t nwords,
                           uint64_t* out) {
  for (size_t w = 0; w < nwords; ++w) out[w] = a[w] & ~b[w];
}

inline uint64_t PopcountWordsRef(const uint64_t* w, size_t nwords) {
  uint64_t total = 0;
  for (size_t i = 0; i < nwords; ++i) {
    total += static_cast<uint64_t>(std::popcount(w[i]));
  }
  return total;
}

// ---------------------------------------------------------------------------
// Mask-word float kernels. Each element receives at most one independent
// add, so accumulation order cannot matter — any tier is bit-identical to
// this reference by construction.
// ---------------------------------------------------------------------------

inline uint64_t CmpF64MaskWordRef(const double* data, size_t nbits, Cmp op,
                                  double lit) {
  uint64_t word = 0;
  switch (op) {
    case Cmp::kEq:
      for (size_t b = 0; b < nbits; ++b)
        word |= static_cast<uint64_t>(data[b] == lit) << b;
      break;
    case Cmp::kNe:
      for (size_t b = 0; b < nbits; ++b)
        word |= static_cast<uint64_t>(data[b] != lit) << b;
      break;
    case Cmp::kLt:
      for (size_t b = 0; b < nbits; ++b)
        word |= static_cast<uint64_t>(data[b] < lit) << b;
      break;
    case Cmp::kLe:
      for (size_t b = 0; b < nbits; ++b)
        word |= static_cast<uint64_t>(data[b] <= lit) << b;
      break;
    case Cmp::kGt:
      for (size_t b = 0; b < nbits; ++b)
        word |= static_cast<uint64_t>(data[b] > lit) << b;
      break;
    case Cmp::kGe:
      for (size_t b = 0; b < nbits; ++b)
        word |= static_cast<uint64_t>(data[b] >= lit) << b;
      break;
  }
  return word;
}

inline void MaskedAddF64WordRef(double* acc, const double* x, uint64_t mask) {
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const int b = std::countr_zero(rest);
    acc[b] += x[b];
  }
}

inline void MaskedAddConstF64WordRef(double* acc, double c, uint64_t mask) {
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    acc[std::countr_zero(rest)] += c;
  }
}

inline void AddF64Ref(double* acc, const double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += x[i];
}

inline void AddConstF64Ref(double* acc, double c, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += c;
}

inline void AffineMapF64Ref(const double* in, size_t n, double scale,
                            double offset, double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = offset + scale * in[i];
}

// ---------------------------------------------------------------------------
// Fixed-shape reductions: 4 strided accumulators, tail folded into lane
// (i % 4), lanes combined as (l0 op l1) op (l2 op l3). The min/max lane op
// matches vminpd/vmaxpd (acc if acc < x else x), so NaN inputs propagate
// identically on every tier.
// ---------------------------------------------------------------------------

inline double MinLane(double acc, double x) { return acc < x ? acc : x; }
inline double MaxLane(double acc, double x) { return acc > x ? acc : x; }

inline double SumF64Ref(const double* x, size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    lane[0] += x[i];
    lane[1] += x[i + 1];
    lane[2] += x[i + 2];
    lane[3] += x[i + 3];
  }
  for (size_t j = n4; j < n; ++j) lane[j & 3] += x[j];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

inline double MinF64Ref(const double* x, size_t n) {
  double lane[4];
  for (double& l : lane) l = std::numeric_limits<double>::infinity();
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    lane[0] = MinLane(lane[0], x[i]);
    lane[1] = MinLane(lane[1], x[i + 1]);
    lane[2] = MinLane(lane[2], x[i + 2]);
    lane[3] = MinLane(lane[3], x[i + 3]);
  }
  for (size_t j = n4; j < n; ++j) lane[j & 3] = MinLane(lane[j & 3], x[j]);
  return MinLane(MinLane(lane[0], lane[1]), MinLane(lane[2], lane[3]));
}

inline double MaxF64Ref(const double* x, size_t n) {
  double lane[4];
  for (double& l : lane) l = -std::numeric_limits<double>::infinity();
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    lane[0] = MaxLane(lane[0], x[i]);
    lane[1] = MaxLane(lane[1], x[i + 1]);
    lane[2] = MaxLane(lane[2], x[i + 2]);
    lane[3] = MaxLane(lane[3], x[i + 3]);
  }
  for (size_t j = n4; j < n; ++j) lane[j & 3] = MaxLane(lane[j & 3], x[j]);
  return MaxLane(MaxLane(lane[0], lane[1]), MaxLane(lane[2], lane[3]));
}

// ---------------------------------------------------------------------------
// RNG block: 4 interleaved xoshiro256++ lanes, 16 steps. Pure integer —
// every tier that follows the lane layout is exact.
// ---------------------------------------------------------------------------

inline uint64_t Rotl64(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

inline void RngBlockRef(uint64_t* state, uint64_t* raw) {
  for (int step = 0; step < 16; ++step) {
    for (int l = 0; l < 4; ++l) {
      uint64_t s0 = state[0 + l];
      uint64_t s1 = state[4 + l];
      uint64_t s2 = state[8 + l];
      uint64_t s3 = state[12 + l];
      raw[step * 4 + l] = Rotl64(s0 + s3, 23) + s0;
      const uint64_t t = s1 << 17;
      s2 ^= s0;
      s3 ^= s1;
      s1 ^= s2;
      s0 ^= s3;
      s2 ^= t;
      s3 = Rotl64(s3, 45);
      state[0 + l] = s0;
      state[4 + l] = s1;
      state[8 + l] = s2;
      state[12 + l] = s3;
    }
  }
}

// ---------------------------------------------------------------------------
// Lane-ops policy + the shared transcendental pipeline.
// ---------------------------------------------------------------------------

struct ScalarOps {
  using V = double;
  using U = uint64_t;
  using M = bool;
  static constexpr size_t kWidth = 1;

  static V set1(double c) { return c; }
  static V load(const double* p) { return *p; }
  static U load_u(const uint64_t* p) { return *p; }
  static void store(double* p, V v) { *p = v; }
  static V add(V a, V b) { return a + b; }
  static V sub(V a, V b) { return a - b; }
  static V mul(V a, V b) { return a * b; }
  static V div(V a, V b) { return a / b; }
  static V sqrt_(V a) { return std::sqrt(a); }
  static V floor_(V a) { return std::floor(a); }
  static U to_bits(V a) { return std::bit_cast<U>(a); }
  static V from_bits(U a) { return std::bit_cast<V>(a); }
  static U shr(U a, int k) { return a >> k; }
  static U and_u(U a, uint64_t c) { return a & c; }
  static U or_u(U a, uint64_t c) { return a | c; }
  static M lt(V a, V b) { return a < b; }
  static M eq(V a, V b) { return a == b; }
  static M or_m(M a, M b) { return a || b; }
  /// true lane -> a.
  static V blend(M m, V a, V b) { return m ? a : b; }
  static V neg_if(M m, V x) { return m ? -x : x; }
};

/// (raw >> 12) * 2^-52 in [0, 1). The 52-bit payload stays below 2^52, so
/// the OR-with-2^52-exponent magic conversion is exact on every tier.
template <typename O>
inline typename O::V ToUnit(typename O::U raw) {
  const typename O::U y = O::shr(raw, 12);
  const typename O::V d =
      O::sub(O::from_bits(O::or_u(y, 0x4330000000000000ULL)), O::set1(0x1p52));
  return O::mul(d, O::set1(0x1p-52));
}

/// log(x) for normal positive x (here: x in [2^-52, 1]). Cephes log.c
/// ported onto the ops policy: exponent/mantissa split by bit surgery,
/// rational approximation on [sqrt(1/2), sqrt(2)).
template <typename O>
inline typename O::V LogV(typename O::V x) {
  using V = typename O::V;
  using U = typename O::U;
  using M = typename O::M;
  const U bits = O::to_bits(x);
  // Biased exponent to double, exactly, via the 2^52 magic constant.
  const U ebits = O::and_u(O::shr(bits, 52), 0x7ffULL);
  V e = O::sub(O::from_bits(O::or_u(ebits, 0x4330000000000000ULL)),
               O::set1(0x1p52));
  e = O::sub(e, O::set1(1022.0));
  // Mantissa rescaled to [0.5, 1).
  V m = O::from_bits(O::or_u(O::and_u(bits, 0x000fffffffffffffULL),
                             0x3fe0000000000000ULL));
  const M lo = O::lt(m, O::set1(0.70710678118654752440));
  m = O::blend(lo, O::add(m, m), m);
  e = O::blend(lo, O::sub(e, O::set1(1.0)), e);
  const V xr = O::sub(m, O::set1(1.0));
  const V z = O::mul(xr, xr);
  V p = O::set1(1.01875663804580931796e-4);
  p = O::add(O::mul(p, xr), O::set1(4.97494994976747001425e-1));
  p = O::add(O::mul(p, xr), O::set1(4.70579119878881725854e0));
  p = O::add(O::mul(p, xr), O::set1(1.44989225341610930846e1));
  p = O::add(O::mul(p, xr), O::set1(1.79368678507819816313e1));
  p = O::add(O::mul(p, xr), O::set1(7.70838733755885391666e0));
  V q = O::add(xr, O::set1(1.12873587189167450590e1));
  q = O::add(O::mul(q, xr), O::set1(4.52279145837532221105e1));
  q = O::add(O::mul(q, xr), O::set1(8.29875266912776603211e1));
  q = O::add(O::mul(q, xr), O::set1(7.11544750618563894466e1));
  q = O::add(O::mul(q, xr), O::set1(2.31251620126765340583e1));
  V y = O::mul(xr, O::div(O::mul(z, p), q));
  y = O::add(y, O::mul(e, O::set1(-2.121944400546905827679e-4)));
  y = O::sub(y, O::mul(z, O::set1(0.5)));
  V r = O::add(xr, y);
  r = O::add(r, O::mul(e, O::set1(0.693359375)));
  return r;
}

/// sin and cos of 2*pi*u for u in [0, 1). Reduction happens in TURNS:
/// k = floor(4u + 0.5) picks the quadrant and v = u - k/4 is EXACT (operands
/// within a factor of two), so no extended-precision argument reduction is
/// needed; the Cephes polynomials then run on 2*pi*v in [-pi/4, pi/4].
template <typename O>
inline void SinCosTwoPi(typename O::V u, typename O::V* s_out,
                        typename O::V* c_out) {
  using V = typename O::V;
  using M = typename O::M;
  const V k = O::floor_(O::add(O::mul(u, O::set1(4.0)), O::set1(0.5)));
  const V v = O::sub(u, O::mul(k, O::set1(0.25)));
  const V x = O::mul(v, O::set1(6.283185307179586476925286766559));
  const V z = O::mul(x, x);
  V sp = O::set1(1.58962301576546568060e-10);
  sp = O::add(O::mul(sp, z), O::set1(-2.50507477628578072866e-8));
  sp = O::add(O::mul(sp, z), O::set1(2.75573136213857245213e-6));
  sp = O::add(O::mul(sp, z), O::set1(-1.98412698295895385996e-4));
  sp = O::add(O::mul(sp, z), O::set1(8.33333333332211858878e-3));
  sp = O::add(O::mul(sp, z), O::set1(-1.66666666666666307295e-1));
  const V s = O::add(x, O::mul(O::mul(x, z), sp));
  V cp = O::set1(-1.13585365213876817300e-11);
  cp = O::add(O::mul(cp, z), O::set1(2.08757008419747316778e-9));
  cp = O::add(O::mul(cp, z), O::set1(-2.75573141792967388112e-7));
  cp = O::add(O::mul(cp, z), O::set1(2.48015872888517179954e-5));
  cp = O::add(O::mul(cp, z), O::set1(-1.38888888888730564116e-3));
  cp = O::add(O::mul(cp, z), O::set1(4.16666666666665929218e-2));
  const V c = O::add(O::sub(O::set1(1.0), O::mul(z, O::set1(0.5))),
                     O::mul(O::mul(z, z), cp));
  // Quadrant fixup. k is in {0,1,2,3,4}; 4 means "just below a full turn"
  // (v negative) and needs no adjustment, like 0.
  const M swap = O::or_m(O::eq(k, O::set1(1.0)), O::eq(k, O::set1(3.0)));
  const M sneg = O::or_m(O::eq(k, O::set1(2.0)), O::eq(k, O::set1(3.0)));
  const M cneg = O::or_m(O::eq(k, O::set1(1.0)), O::eq(k, O::set1(2.0)));
  *s_out = O::neg_if(sneg, O::blend(swap, c, s));
  *c_out = O::neg_if(cneg, O::blend(swap, s, c));
}

/// 64 raw draws -> 64 uniforms in [0, 1). out[j] depends only on raw[j],
/// so vector width cannot change any value.
template <typename O>
inline void UniformBlockT(const uint64_t* raw, double* out) {
  for (size_t i = 0; i < kRngBatch; i += O::kWidth) {
    O::store(out + i, ToUnit<O>(O::load_u(raw + i)));
  }
}

/// 64 raw draws -> 64 standard normals (see simd.h for the exact layout).
/// out[i] / out[32+i] depend only on raw[i] and raw[32+i]: elementwise, so
/// identical for every vector width given the shared LogV / SinCosTwoPi.
template <typename O>
inline void NormalBlockT(const uint64_t* raw, double* out) {
  using V = typename O::V;
  for (size_t i = 0; i < kRngBatch / 2; i += O::kWidth) {
    // u1 in (0, 1]: (payload + 1) * 2^-52, computed as ToUnit + 2^-52 which
    // is exact (both terms are multiples of 2^-52 with sum <= 1).
    const V u1 = O::add(ToUnit<O>(O::load_u(raw + i)), O::set1(0x1p-52));
    const V u2 = ToUnit<O>(O::load_u(raw + kRngBatch / 2 + i));
    const V r = O::sqrt_(O::mul(O::set1(-2.0), LogV<O>(u1)));
    V s, c;
    SinCosTwoPi<O>(u2, &s, &c);
    O::store(out + i, O::mul(r, c));
    O::store(out + kRngBatch / 2 + i, O::mul(r, s));
  }
}

}  // namespace mde::simd::internal

#endif  // MDE_SIMD_KERNELS_IMPL_H_
