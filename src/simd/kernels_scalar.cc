#include "simd/kernels.h"
#include "simd/kernels_impl.h"

/// Portable scalar tier: the reference implementations, verbatim. Compiled
/// with the project's baseline flags plus -ffp-contract=off (see
/// CMakeLists.txt) so no a*b+c here or in the shared templates is fused —
/// the vector tiers must be able to match it operation-for-operation.
namespace mde::simd::internal {
namespace {

void UniformBlockScalar(const uint64_t* raw, double* out) {
  UniformBlockT<ScalarOps>(raw, out);
}

void NormalBlockScalar(const uint64_t* raw, double* out) {
  NormalBlockT<ScalarOps>(raw, out);
}

const KernelTable kScalarTable = {
    &CmpF64BitmapRef,
    &CmpI64RangeBitmapRef,
    &CmpU32EqBitmapRef,
    &CmpU8BitmapRef,
    &AndWordsRef,
    &OrWordsRef,
    &AndNotWordsRef,
    &PopcountWordsRef,
    &CmpF64MaskWordRef,
    &MaskedAddF64WordRef,
    &MaskedAddConstF64WordRef,
    &AddF64Ref,
    &AddConstF64Ref,
    &AffineMapF64Ref,
    &SumF64Ref,
    &MinF64Ref,
    &MaxF64Ref,
    &RngBlockRef,
    &UniformBlockScalar,
    &NormalBlockScalar,
};

}  // namespace

const KernelTable* ScalarTable() { return &kScalarTable; }

}  // namespace mde::simd::internal
