#include <bit>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.h"
#ifndef MDE_OBS_DISABLED
#include "obs/export.h"
#endif
#include "simd/kernels.h"
#include "simd/simd.h"

namespace mde::simd {
namespace {

using internal::KernelTable;

/// Stable kernel names, in KernelId order — the `<kernel>` segment of the
/// `simd.dispatch.<kernel>.<tier>` counters.
constexpr const char* kKernelNames[] = {
    "cmp_f64_bitmap", "cmp_i64_range_bitmap", "cmp_u32_eq_bitmap",
    "cmp_u8_bitmap",  "bitmap_words",         "popcount_words",
    "cmp_f64_mask",   "masked_add_f64",       "add_f64",
    "sum_f64",        "minmax_f64",           "affine_map_f64",
    "rng_block",      "uniform_block",        "normal_block",
};
static_assert(sizeof(kKernelNames) / sizeof(kKernelNames[0]) ==
              static_cast<size_t>(KernelId::kNumKernels));

const KernelTable* TableFor(Tier t) {
#ifndef MDE_SIMD_SCALAR_ONLY
  switch (t) {
    case Tier::kAvx2:
      return internal::Avx2Table();
    case Tier::kSse4:
      return internal::Sse4Table();
    case Tier::kScalar:
      break;
  }
#else
  (void)t;
#endif
  return internal::ScalarTable();
}

/// Parses MDE_SIMD; anything unrecognized (or unset) means "best".
Tier RequestedTier() {
  const char* env = std::getenv("MDE_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return Tier::kScalar;
    if (std::strcmp(env, "sse4") == 0 || std::strcmp(env, "sse4.2") == 0 ||
        std::strcmp(env, "sse42") == 0) {
      return Tier::kSse4;
    }
    if (std::strcmp(env, "avx2") == 0) return Tier::kAvx2;
  }
  return BestSupportedTier();
}

struct DispatchState {
  const KernelTable* table = nullptr;
  Tier tier = Tier::kScalar;
#ifndef MDE_OBS_DISABLED
  obs::Counter* counters[static_cast<size_t>(KernelId::kNumKernels)] = {};
#endif

  void Apply(Tier t) {
    if (static_cast<int>(t) > static_cast<int>(BestSupportedTier())) {
      t = BestSupportedTier();
    }
    tier = t;
    table = TableFor(t);
#ifndef MDE_OBS_DISABLED
    const std::string prefix = "simd.dispatch.";
    const std::string suffix = std::string(".") + TierName(t);
    for (size_t k = 0; k < static_cast<size_t>(KernelId::kNumKernels); ++k) {
      counters[k] =
          obs::Registry::Global().counter(prefix + kKernelNames[k] + suffix);
    }
#endif
    MDE_OBS_GAUGE_SET("simd.tier", static_cast<int>(t));
#ifndef MDE_OBS_DISABLED
    // Name flows INTO obs (obs sits below simd in the layering) so
    // mde_build_info and /statusz can report the active tier by name.
    obs::SetRuntimeLabel("simd_tier", TierName(t));
#endif
  }

  DispatchState() { Apply(RequestedTier()); }
};

DispatchState& State() {
  static DispatchState s;
  return s;
}

inline const KernelTable& T() { return *State().table; }

}  // namespace

const char* TierName(Tier t) {
  switch (t) {
    case Tier::kAvx2:
      return "avx2";
    case Tier::kSse4:
      return "sse4";
    case Tier::kScalar:
      break;
  }
  return "scalar";
}

Tier BestSupportedTier() {
#if defined(MDE_SIMD_SCALAR_ONLY) || !defined(__x86_64__)
  return Tier::kScalar;
#else
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Tier::kSse4;
  return Tier::kScalar;
#endif
}

Tier ActiveTier() { return State().tier; }

void SetTier(Tier t) { State().Apply(t); }

Tier InitFromEnv() {
  State().Apply(RequestedTier());
  return State().tier;
}

void CountKernel(KernelId k) {
#ifndef MDE_OBS_DISABLED
  State().counters[static_cast<size_t>(k)]->Add(1);
#else
  (void)k;
#endif
}

namespace internal {
const KernelTable& ActiveTable() { return T(); }
}  // namespace internal

// ---------------------------------------------------------------------------
// Public kernel entry points. Block-level kernels (called once per chunk or
// per 64-draw batch) count themselves; word-level kernels are counted by
// their caller at operator granularity.
// ---------------------------------------------------------------------------

void CmpF64Bitmap(const double* data, size_t n, Cmp op, double lit,
                  uint64_t* out) {
  CountKernel(KernelId::kCmpF64Bitmap);
  T().cmp_f64_bitmap(data, n, op, lit, out);
}

void CmpI64RangeBitmap(const int64_t* data, size_t n, int64_t lo, int64_t hi,
                       bool negate, uint64_t* out) {
  CountKernel(KernelId::kCmpI64RangeBitmap);
  T().cmp_i64_range_bitmap(data, n, lo, hi, negate, out);
}

void CmpU32EqBitmap(const uint32_t* data, size_t n, uint32_t code, bool negate,
                    uint64_t* out) {
  CountKernel(KernelId::kCmpU32EqBitmap);
  T().cmp_u32_eq_bitmap(data, n, code, negate, out);
}

void CmpU8Bitmap(const uint8_t* data, size_t n, bool match_nonzero,
                 uint64_t* out) {
  CountKernel(KernelId::kCmpU8Bitmap);
  T().cmp_u8_bitmap(data, n, match_nonzero, out);
}

void AndWords(const uint64_t* a, const uint64_t* b, size_t nwords,
              uint64_t* out) {
  CountKernel(KernelId::kBitmapWords);
  T().and_words(a, b, nwords, out);
}

void OrWords(const uint64_t* a, const uint64_t* b, size_t nwords,
             uint64_t* out) {
  CountKernel(KernelId::kBitmapWords);
  T().or_words(a, b, nwords, out);
}

void AndNotWords(const uint64_t* a, const uint64_t* b, size_t nwords,
                 uint64_t* out) {
  CountKernel(KernelId::kBitmapWords);
  T().andnot_words(a, b, nwords, out);
}

uint64_t PopcountWords(const uint64_t* w, size_t nwords) {
  CountKernel(KernelId::kPopcountWords);
  return T().popcount_words(w, nwords);
}

size_t BitmapToSel(const uint64_t* words, size_t nwords, uint32_t base,
                   uint32_t* out) {
  size_t k = 0;
  for (size_t w = 0; w < nwords; ++w) {
    uint64_t rest = words[w];
    const uint32_t wbase = base + static_cast<uint32_t>(w * 64);
    while (rest != 0) {
      out[k++] = wbase + static_cast<uint32_t>(std::countr_zero(rest));
      rest &= rest - 1;
    }
  }
  return k;
}

uint64_t CmpF64MaskWord(const double* data, size_t nbits, Cmp op, double lit) {
  return T().cmp_f64_mask_word(data, nbits, op, lit);
}

void MaskedAddF64Word(double* acc, const double* x, uint64_t mask) {
  T().masked_add_f64_word(acc, x, mask);
}

void MaskedAddConstF64Word(double* acc, double c, uint64_t mask) {
  T().masked_add_const_f64_word(acc, c, mask);
}

void AddF64(double* acc, const double* x, size_t n) {
  T().add_f64(acc, x, n);
}

void AddConstF64(double* acc, double c, size_t n) {
  T().add_const_f64(acc, c, n);
}

void AffineMapF64(const double* in, size_t n, double scale, double offset,
                  double* out) {
  CountKernel(KernelId::kAffineMapF64);
  T().affine_map_f64(in, n, scale, offset, out);
}

double SumF64(const double* x, size_t n) {
  CountKernel(KernelId::kSumF64);
  return T().sum_f64(x, n);
}

double MinF64(const double* x, size_t n) {
  CountKernel(KernelId::kMinMaxF64);
  return T().min_f64(x, n);
}

double MaxF64(const double* x, size_t n) {
  CountKernel(KernelId::kMinMaxF64);
  return T().max_f64(x, n);
}

void RngBlock(uint64_t* state, uint64_t* raw) {
  CountKernel(KernelId::kRngBlock);
  T().rng_block(state, raw);
}

void UniformBlock(const uint64_t* raw, double* out) {
  CountKernel(KernelId::kUniformBlock);
  T().uniform_block(raw, out);
}

void NormalBlock(const uint64_t* raw, double* out) {
  CountKernel(KernelId::kNormalBlock);
  T().normal_block(raw, out);
}

}  // namespace mde::simd
