#include <immintrin.h>

#include "simd/kernels.h"
#include "simd/kernels_impl.h"

/// SSE4.2 tier (2 doubles / 2 uint64 per vector). Compiled with
/// -msse4.2 -ffp-contract=off. The float-heavy kernels use 128-bit vectors;
/// kernels that gain nothing at 128 bits (byte/word bit ops, the masked
/// word adds, the interleaved RNG state walk) reuse the scalar reference —
/// which is bit-identical by the layer's contract, so the table stays a
/// valid tier.
namespace mde::simd::internal {
namespace {

struct Sse2Ops {
  using V = __m128d;
  using U = __m128i;
  using M = __m128d;
  static constexpr size_t kWidth = 2;

  static V set1(double c) { return _mm_set1_pd(c); }
  static V load(const double* p) { return _mm_loadu_pd(p); }
  static U load_u(const uint64_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store(double* p, V v) { _mm_storeu_pd(p, v); }
  static V add(V a, V b) { return _mm_add_pd(a, b); }
  static V sub(V a, V b) { return _mm_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm_mul_pd(a, b); }
  static V div(V a, V b) { return _mm_div_pd(a, b); }
  static V sqrt_(V a) { return _mm_sqrt_pd(a); }
  static V floor_(V a) { return _mm_floor_pd(a); }
  static U to_bits(V a) { return _mm_castpd_si128(a); }
  static V from_bits(U a) { return _mm_castsi128_pd(a); }
  static U shr(U a, int k) { return _mm_srli_epi64(a, k); }
  static U and_u(U a, uint64_t c) {
    return _mm_and_si128(a, _mm_set1_epi64x(static_cast<long long>(c)));
  }
  static U or_u(U a, uint64_t c) {
    return _mm_or_si128(a, _mm_set1_epi64x(static_cast<long long>(c)));
  }
  static M lt(V a, V b) { return _mm_cmplt_pd(a, b); }
  static M eq(V a, V b) { return _mm_cmpeq_pd(a, b); }
  static M or_m(M a, M b) { return _mm_or_pd(a, b); }
  static V blend(M m, V a, V b) { return _mm_blendv_pd(b, a, m); }
  static V neg_if(M m, V x) {
    return _mm_xor_pd(x, _mm_and_pd(m, _mm_set1_pd(-0.0)));
  }
};

struct CmpEqV {
  static __m128d apply(__m128d a, __m128d b) { return _mm_cmpeq_pd(a, b); }
};
struct CmpNeV {
  // cmpneq is NEQ_UQ: true when unordered — exactly C++ `!=`.
  static __m128d apply(__m128d a, __m128d b) { return _mm_cmpneq_pd(a, b); }
};
struct CmpLtV {
  static __m128d apply(__m128d a, __m128d b) { return _mm_cmplt_pd(a, b); }
};
struct CmpLeV {
  static __m128d apply(__m128d a, __m128d b) { return _mm_cmple_pd(a, b); }
};
struct CmpGtV {
  static __m128d apply(__m128d a, __m128d b) { return _mm_cmpgt_pd(a, b); }
};
struct CmpGeV {
  static __m128d apply(__m128d a, __m128d b) { return _mm_cmpge_pd(a, b); }
};

template <typename Op>
void CmpF64BitmapSseT(const double* data, size_t n, Cmp op, double lit,
                      uint64_t* out) {
  const __m128d vlit = _mm_set1_pd(lit);
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    const double* p = data + w * 64;
    uint64_t word = 0;
    for (int g = 0; g < 32; ++g) {
      const int bits =
          _mm_movemask_pd(Op::apply(_mm_loadu_pd(p + g * 2), vlit));
      word |= static_cast<uint64_t>(static_cast<unsigned>(bits)) << (g * 2);
    }
    out[w] = word;
  }
  if (full * 64 < n) {
    CmpF64BitmapRef(data + full * 64, n - full * 64, op, lit, out + full);
  }
}

void CmpF64BitmapSse(const double* data, size_t n, Cmp op, double lit,
                     uint64_t* out) {
  switch (op) {
    case Cmp::kEq:
      CmpF64BitmapSseT<CmpEqV>(data, n, op, lit, out);
      break;
    case Cmp::kNe:
      CmpF64BitmapSseT<CmpNeV>(data, n, op, lit, out);
      break;
    case Cmp::kLt:
      CmpF64BitmapSseT<CmpLtV>(data, n, op, lit, out);
      break;
    case Cmp::kLe:
      CmpF64BitmapSseT<CmpLeV>(data, n, op, lit, out);
      break;
    case Cmp::kGt:
      CmpF64BitmapSseT<CmpGtV>(data, n, op, lit, out);
      break;
    case Cmp::kGe:
      CmpF64BitmapSseT<CmpGeV>(data, n, op, lit, out);
      break;
  }
}

void CmpI64RangeBitmapSse(const int64_t* data, size_t n, int64_t lo,
                          int64_t hi, bool negate, uint64_t* out) {
  const __m128i vlo = _mm_set1_epi64x(lo);
  const __m128i vhi = _mm_set1_epi64x(hi);
  const uint64_t flip = negate ? ~uint64_t{0} : 0;
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    const int64_t* p = data + w * 64;
    uint64_t outside = 0;
    for (int g = 0; g < 32; ++g) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + g * 2));
      const __m128i m = _mm_or_si128(_mm_cmpgt_epi64(vlo, v),
                                     _mm_cmpgt_epi64(v, vhi));
      const int bits = _mm_movemask_pd(_mm_castsi128_pd(m));
      outside |= static_cast<uint64_t>(static_cast<unsigned>(bits)) << (g * 2);
    }
    out[w] = ~outside ^ flip;
  }
  if (full * 64 < n) {
    CmpI64RangeBitmapRef(data + full * 64, n - full * 64, lo, hi, negate,
                         out + full);
  }
}

template <typename Op>
uint64_t CmpF64MaskWordSseT(const double* data, size_t nbits, Cmp op,
                            double lit) {
  const __m128d vlit = _mm_set1_pd(lit);
  uint64_t word = 0;
  size_t b = 0;
  for (; b + 2 <= nbits; b += 2) {
    const int bits = _mm_movemask_pd(Op::apply(_mm_loadu_pd(data + b), vlit));
    word |= static_cast<uint64_t>(static_cast<unsigned>(bits)) << b;
  }
  if (b < nbits) {
    word |= CmpF64MaskWordRef(data + b, nbits - b, op, lit) << b;
  }
  return word;
}

uint64_t CmpF64MaskWordSse(const double* data, size_t nbits, Cmp op,
                           double lit) {
  switch (op) {
    case Cmp::kEq:
      return CmpF64MaskWordSseT<CmpEqV>(data, nbits, op, lit);
    case Cmp::kNe:
      return CmpF64MaskWordSseT<CmpNeV>(data, nbits, op, lit);
    case Cmp::kLt:
      return CmpF64MaskWordSseT<CmpLtV>(data, nbits, op, lit);
    case Cmp::kLe:
      return CmpF64MaskWordSseT<CmpLeV>(data, nbits, op, lit);
    case Cmp::kGt:
      return CmpF64MaskWordSseT<CmpGtV>(data, nbits, op, lit);
    case Cmp::kGe:
      return CmpF64MaskWordSseT<CmpGeV>(data, nbits, op, lit);
  }
  return 0;
}

void AddF64Sse(double* acc, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(acc + i,
                  _mm_add_pd(_mm_loadu_pd(acc + i), _mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

void AddConstF64Sse(double* acc, double c, size_t n) {
  const __m128d cv = _mm_set1_pd(c);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(acc + i, _mm_add_pd(_mm_loadu_pd(acc + i), cv));
  }
  for (; i < n; ++i) acc[i] += c;
}

void AffineMapF64Sse(const double* in, size_t n, double scale, double offset,
                     double* out) {
  const __m128d sv = _mm_set1_pd(scale);
  const __m128d ov = _mm_set1_pd(offset);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i,
                  _mm_add_pd(ov, _mm_mul_pd(sv, _mm_loadu_pd(in + i))));
  }
  for (; i < n; ++i) out[i] = offset + scale * in[i];
}

/// The fixed reduction tree is 4-lane-strided; at 128 bits that is two
/// vector accumulators, lanes {0,1} and {2,3}.
double SumF64Sse(const double* x, size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    acc01 = _mm_add_pd(acc01, _mm_loadu_pd(x + i));
    acc23 = _mm_add_pd(acc23, _mm_loadu_pd(x + i + 2));
  }
  alignas(16) double lane[4];
  _mm_store_pd(lane, acc01);
  _mm_store_pd(lane + 2, acc23);
  for (size_t j = n4; j < n; ++j) lane[j & 3] += x[j];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double MinF64Sse(const double* x, size_t n) {
  const __m128d inf = _mm_set1_pd(std::numeric_limits<double>::infinity());
  __m128d acc01 = inf;
  __m128d acc23 = inf;
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    acc01 = _mm_min_pd(acc01, _mm_loadu_pd(x + i));
    acc23 = _mm_min_pd(acc23, _mm_loadu_pd(x + i + 2));
  }
  alignas(16) double lane[4];
  _mm_store_pd(lane, acc01);
  _mm_store_pd(lane + 2, acc23);
  for (size_t j = n4; j < n; ++j) lane[j & 3] = MinLane(lane[j & 3], x[j]);
  return MinLane(MinLane(lane[0], lane[1]), MinLane(lane[2], lane[3]));
}

double MaxF64Sse(const double* x, size_t n) {
  const __m128d ninf = _mm_set1_pd(-std::numeric_limits<double>::infinity());
  __m128d acc01 = ninf;
  __m128d acc23 = ninf;
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    acc01 = _mm_max_pd(acc01, _mm_loadu_pd(x + i));
    acc23 = _mm_max_pd(acc23, _mm_loadu_pd(x + i + 2));
  }
  alignas(16) double lane[4];
  _mm_store_pd(lane, acc01);
  _mm_store_pd(lane + 2, acc23);
  for (size_t j = n4; j < n; ++j) lane[j & 3] = MaxLane(lane[j & 3], x[j]);
  return MaxLane(MaxLane(lane[0], lane[1]), MaxLane(lane[2], lane[3]));
}

void UniformBlockSse(const uint64_t* raw, double* out) {
  UniformBlockT<Sse2Ops>(raw, out);
}

void NormalBlockSse(const uint64_t* raw, double* out) {
  NormalBlockT<Sse2Ops>(raw, out);
}

const KernelTable kSse4Table = {
    &CmpF64BitmapSse,
    &CmpI64RangeBitmapSse,
    &CmpU32EqBitmapRef,
    &CmpU8BitmapRef,
    &AndWordsRef,
    &OrWordsRef,
    &AndNotWordsRef,
    &PopcountWordsRef,
    &CmpF64MaskWordSse,
    &MaskedAddF64WordRef,
    &MaskedAddConstF64WordRef,
    &AddF64Sse,
    &AddConstF64Sse,
    &AffineMapF64Sse,
    &SumF64Sse,
    &MinF64Sse,
    &MaxF64Sse,
    &RngBlockRef,
    &UniformBlockSse,
    &NormalBlockSse,
};

}  // namespace

const KernelTable* Sse4Table() { return &kSse4Table; }

}  // namespace mde::simd::internal
