#include <immintrin.h>

#include "simd/kernels.h"
#include "simd/kernels_impl.h"

/// AVX2 tier (4 doubles / 4 uint64 per vector). Compiled with
/// -mavx2 -ffp-contract=off and WITHOUT -mfma: all float kernels must
/// execute the same rounding steps as the scalar reference. Partial words
/// and sub-lane tails delegate to the *Ref functions, which is bit-exact by
/// definition.
namespace mde::simd::internal {
namespace {

struct Avx2Ops {
  using V = __m256d;
  using U = __m256i;
  using M = __m256d;
  static constexpr size_t kWidth = 4;

  static V set1(double c) { return _mm256_set1_pd(c); }
  static V load(const double* p) { return _mm256_loadu_pd(p); }
  static U load_u(const uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(double* p, V v) { _mm256_storeu_pd(p, v); }
  static V add(V a, V b) { return _mm256_add_pd(a, b); }
  static V sub(V a, V b) { return _mm256_sub_pd(a, b); }
  static V mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V div(V a, V b) { return _mm256_div_pd(a, b); }
  static V sqrt_(V a) { return _mm256_sqrt_pd(a); }
  static V floor_(V a) { return _mm256_floor_pd(a); }
  static U to_bits(V a) { return _mm256_castpd_si256(a); }
  static V from_bits(U a) { return _mm256_castsi256_pd(a); }
  static U shr(U a, int k) { return _mm256_srli_epi64(a, k); }
  static U and_u(U a, uint64_t c) {
    return _mm256_and_si256(a, _mm256_set1_epi64x(static_cast<long long>(c)));
  }
  static U or_u(U a, uint64_t c) {
    return _mm256_or_si256(a, _mm256_set1_epi64x(static_cast<long long>(c)));
  }
  static M lt(V a, V b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static M eq(V a, V b) { return _mm256_cmp_pd(a, b, _CMP_EQ_OQ); }
  static M or_m(M a, M b) { return _mm256_or_pd(a, b); }
  static V blend(M m, V a, V b) { return _mm256_blendv_pd(b, a, m); }
  static V neg_if(M m, V x) {
    return _mm256_xor_pd(x, _mm256_and_pd(m, _mm256_set1_pd(-0.0)));
  }
};

template <int IMM>
void CmpF64BitmapImm(const double* data, size_t n, Cmp op, double lit,
                     uint64_t* out) {
  const __m256d vlit = _mm256_set1_pd(lit);
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    const double* p = data + w * 64;
    uint64_t word = 0;
    for (int g = 0; g < 16; ++g) {
      const int bits = _mm256_movemask_pd(
          _mm256_cmp_pd(_mm256_loadu_pd(p + g * 4), vlit, IMM));
      word |= static_cast<uint64_t>(static_cast<unsigned>(bits)) << (g * 4);
    }
    out[w] = word;
  }
  if (full * 64 < n) {
    CmpF64BitmapRef(data + full * 64, n - full * 64, op, lit, out + full);
  }
}

void CmpF64BitmapAvx2(const double* data, size_t n, Cmp op, double lit,
                      uint64_t* out) {
  switch (op) {
    case Cmp::kEq:
      CmpF64BitmapImm<_CMP_EQ_OQ>(data, n, op, lit, out);
      break;
    case Cmp::kNe:
      CmpF64BitmapImm<_CMP_NEQ_UQ>(data, n, op, lit, out);
      break;
    case Cmp::kLt:
      CmpF64BitmapImm<_CMP_LT_OQ>(data, n, op, lit, out);
      break;
    case Cmp::kLe:
      CmpF64BitmapImm<_CMP_LE_OQ>(data, n, op, lit, out);
      break;
    case Cmp::kGt:
      CmpF64BitmapImm<_CMP_GT_OQ>(data, n, op, lit, out);
      break;
    case Cmp::kGe:
      CmpF64BitmapImm<_CMP_GE_OQ>(data, n, op, lit, out);
      break;
  }
}

void CmpI64RangeBitmapAvx2(const int64_t* data, size_t n, int64_t lo,
                           int64_t hi, bool negate, uint64_t* out) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  const uint64_t flip = negate ? ~uint64_t{0} : 0;
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    const int64_t* p = data + w * 64;
    uint64_t outside = 0;
    for (int g = 0; g < 16; ++g) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + g * 4));
      // outside-range lanes: v < lo or v > hi.
      const __m256i m = _mm256_or_si256(_mm256_cmpgt_epi64(vlo, v),
                                        _mm256_cmpgt_epi64(v, vhi));
      const int bits = _mm256_movemask_pd(_mm256_castsi256_pd(m));
      outside |= static_cast<uint64_t>(static_cast<unsigned>(bits)) << (g * 4);
    }
    out[w] = ~outside ^ flip;
  }
  if (full * 64 < n) {
    CmpI64RangeBitmapRef(data + full * 64, n - full * 64, lo, hi, negate,
                         out + full);
  }
}

void CmpU32EqBitmapAvx2(const uint32_t* data, size_t n, uint32_t code,
                        bool negate, uint64_t* out) {
  const __m256i vcode = _mm256_set1_epi32(static_cast<int>(code));
  const uint64_t flip = negate ? ~uint64_t{0} : 0;
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    const uint32_t* p = data + w * 64;
    uint64_t word = 0;
    for (int g = 0; g < 8; ++g) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + g * 8));
      const int bits = _mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, vcode)));
      word |= static_cast<uint64_t>(static_cast<unsigned>(bits)) << (g * 8);
    }
    out[w] = word ^ flip;
  }
  if (full * 64 < n) {
    CmpU32EqBitmapRef(data + full * 64, n - full * 64, code, negate,
                      out + full);
  }
}

void CmpU8BitmapAvx2(const uint8_t* data, size_t n, bool match_nonzero,
                     uint64_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  const uint64_t flip = match_nonzero ? ~uint64_t{0} : 0;
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    const uint8_t* p = data + w * 64;
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
    const uint64_t zlo = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(a, zero)));
    const uint64_t zhi = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(b, zero)));
    // zero-lanes bitmap; nonzero matching flips it.
    out[w] = (zlo | (zhi << 32)) ^ flip;
  }
  if (full * 64 < n) {
    CmpU8BitmapRef(data + full * 64, n - full * 64, match_nonzero, out + full);
  }
}

void AndWordsAvx2(const uint64_t* a, const uint64_t* b, size_t nwords,
                  uint64_t* out) {
  size_t w = 0;
  for (; w + 4 <= nwords; w += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + w),
        _mm256_and_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w))));
  }
  for (; w < nwords; ++w) out[w] = a[w] & b[w];
}

void OrWordsAvx2(const uint64_t* a, const uint64_t* b, size_t nwords,
                 uint64_t* out) {
  size_t w = 0;
  for (; w + 4 <= nwords; w += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + w),
        _mm256_or_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w))));
  }
  for (; w < nwords; ++w) out[w] = a[w] | b[w];
}

void AndNotWordsAvx2(const uint64_t* a, const uint64_t* b, size_t nwords,
                     uint64_t* out) {
  size_t w = 0;
  for (; w + 4 <= nwords; w += 4) {
    // andnot(x, y) = ~x & y, so pass b first to get a & ~b.
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + w),
        _mm256_andnot_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w))));
  }
  for (; w < nwords; ++w) out[w] = a[w] & ~b[w];
}

template <int IMM>
uint64_t CmpF64MaskWordImm(const double* data, size_t nbits, Cmp op,
                           double lit) {
  const __m256d vlit = _mm256_set1_pd(lit);
  uint64_t word = 0;
  size_t b = 0;
  for (; b + 4 <= nbits; b += 4) {
    const int bits = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(data + b), vlit, IMM));
    word |= static_cast<uint64_t>(static_cast<unsigned>(bits)) << b;
  }
  if (b < nbits) {
    word |= CmpF64MaskWordRef(data + b, nbits - b, op, lit) << b;
  }
  return word;
}

uint64_t CmpF64MaskWordAvx2(const double* data, size_t nbits, Cmp op,
                            double lit) {
  switch (op) {
    case Cmp::kEq:
      return CmpF64MaskWordImm<_CMP_EQ_OQ>(data, nbits, op, lit);
    case Cmp::kNe:
      return CmpF64MaskWordImm<_CMP_NEQ_UQ>(data, nbits, op, lit);
    case Cmp::kLt:
      return CmpF64MaskWordImm<_CMP_LT_OQ>(data, nbits, op, lit);
    case Cmp::kLe:
      return CmpF64MaskWordImm<_CMP_LE_OQ>(data, nbits, op, lit);
    case Cmp::kGt:
      return CmpF64MaskWordImm<_CMP_GT_OQ>(data, nbits, op, lit);
    case Cmp::kGe:
      return CmpF64MaskWordImm<_CMP_GE_OQ>(data, nbits, op, lit);
  }
  return 0;
}

/// Per-nibble lane masks for maskload/maskstore: entry m has lane l all-one
/// iff bit l of m is set.
alignas(32) constexpr uint64_t kNibbleMask[16][4] = {
    {0, 0, 0, 0},       {~0ULL, 0, 0, 0},
    {0, ~0ULL, 0, 0},   {~0ULL, ~0ULL, 0, 0},
    {0, 0, ~0ULL, 0},   {~0ULL, 0, ~0ULL, 0},
    {0, ~0ULL, ~0ULL, 0},
    {~0ULL, ~0ULL, ~0ULL, 0},
    {0, 0, 0, ~0ULL},   {~0ULL, 0, 0, ~0ULL},
    {0, ~0ULL, 0, ~0ULL},
    {~0ULL, ~0ULL, 0, ~0ULL},
    {0, 0, ~0ULL, ~0ULL},
    {~0ULL, 0, ~0ULL, ~0ULL},
    {0, ~0ULL, ~0ULL, ~0ULL},
    {~0ULL, ~0ULL, ~0ULL, ~0ULL},
};

/// Masked adds via maskload/maskstore, which suppress faults on inactive
/// lanes — safe even when the active bits end mid-vector at the edge of the
/// allocation. Each active element gets exactly one add, so the result
/// equals the scalar bit-iteration bit-for-bit.
void MaskedAddF64WordAvx2(double* acc, const double* x, uint64_t mask) {
  for (int g = 0; mask != 0; ++g, mask >>= 4) {
    const uint32_t nib = static_cast<uint32_t>(mask & 0xF);
    if (nib == 0) continue;
    const __m256i m = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kNibbleMask[nib]));
    const __m256d xv = _mm256_maskload_pd(x + g * 4, m);
    const __m256d av = _mm256_maskload_pd(acc + g * 4, m);
    _mm256_maskstore_pd(acc + g * 4, m, _mm256_add_pd(av, xv));
  }
}

void MaskedAddConstF64WordAvx2(double* acc, double c, uint64_t mask) {
  const __m256d cv = _mm256_set1_pd(c);
  for (int g = 0; mask != 0; ++g, mask >>= 4) {
    const uint32_t nib = static_cast<uint32_t>(mask & 0xF);
    if (nib == 0) continue;
    const __m256i m = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kNibbleMask[nib]));
    const __m256d av = _mm256_maskload_pd(acc + g * 4, m);
    _mm256_maskstore_pd(acc + g * 4, m, _mm256_add_pd(av, cv));
  }
}

void AddF64Avx2(double* acc, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                                            _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

void AddConstF64Avx2(double* acc, double c, size_t n) {
  const __m256d cv = _mm256_set1_pd(c);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), cv));
  }
  for (; i < n; ++i) acc[i] += c;
}

void AffineMapF64Avx2(const double* in, size_t n, double scale, double offset,
                      double* out) {
  const __m256d sv = _mm256_set1_pd(scale);
  const __m256d ov = _mm256_set1_pd(offset);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_add_pd(ov, _mm256_mul_pd(sv, _mm256_loadu_pd(in + i))));
  }
  for (; i < n; ++i) out[i] = offset + scale * in[i];
}

double SumF64Avx2(const double* x, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (size_t j = n4; j < n; ++j) lane[j & 3] += x[j];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double MinF64Avx2(const double* x, size_t n) {
  __m256d acc = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    acc = _mm256_min_pd(acc, _mm256_loadu_pd(x + i));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (size_t j = n4; j < n; ++j) lane[j & 3] = MinLane(lane[j & 3], x[j]);
  return MinLane(MinLane(lane[0], lane[1]), MinLane(lane[2], lane[3]));
}

double MaxF64Avx2(const double* x, size_t n) {
  __m256d acc = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    acc = _mm256_max_pd(acc, _mm256_loadu_pd(x + i));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (size_t j = n4; j < n; ++j) lane[j & 3] = MaxLane(lane[j & 3], x[j]);
  return MaxLane(MaxLane(lane[0], lane[1]), MaxLane(lane[2], lane[3]));
}

inline __m256i Rotl256(__m256i v, int k) {
  return _mm256_or_si256(_mm256_slli_epi64(v, k), _mm256_srli_epi64(v, 64 - k));
}

void RngBlockAvx2(uint64_t* state, uint64_t* raw) {
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state));
  __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state + 4));
  __m256i s2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state + 8));
  __m256i s3 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state + 12));
  for (int step = 0; step < 16; ++step) {
    const __m256i res =
        _mm256_add_epi64(Rotl256(_mm256_add_epi64(s0, s3), 23), s0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(raw + step * 4), res);
    const __m256i t = _mm256_slli_epi64(s1, 17);
    s2 = _mm256_xor_si256(s2, s0);
    s3 = _mm256_xor_si256(s3, s1);
    s1 = _mm256_xor_si256(s1, s2);
    s0 = _mm256_xor_si256(s0, s3);
    s2 = _mm256_xor_si256(s2, t);
    s3 = Rotl256(s3, 45);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state), s0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state + 4), s1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state + 8), s2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state + 12), s3);
}

void UniformBlockAvx2(const uint64_t* raw, double* out) {
  UniformBlockT<Avx2Ops>(raw, out);
}

void NormalBlockAvx2(const uint64_t* raw, double* out) {
  NormalBlockT<Avx2Ops>(raw, out);
}

const KernelTable kAvx2Table = {
    &CmpF64BitmapAvx2,
    &CmpI64RangeBitmapAvx2,
    &CmpU32EqBitmapAvx2,
    &CmpU8BitmapAvx2,
    &AndWordsAvx2,
    &OrWordsAvx2,
    &AndNotWordsAvx2,
    &PopcountWordsRef,
    &CmpF64MaskWordAvx2,
    &MaskedAddF64WordAvx2,
    &MaskedAddConstF64WordAvx2,
    &AddF64Avx2,
    &AddConstF64Avx2,
    &AffineMapF64Avx2,
    &SumF64Avx2,
    &MinF64Avx2,
    &MaxF64Avx2,
    &RngBlockAvx2,
    &UniformBlockAvx2,
    &NormalBlockAvx2,
};

}  // namespace

const KernelTable* Avx2Table() { return &kAvx2Table; }

}  // namespace mde::simd::internal
