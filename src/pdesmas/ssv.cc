#include "pdesmas/ssv.h"

#include <algorithm>

#include "util/check.h"

namespace mde::pdesmas {

Status SharedStateVariable::Write(double t, double value) {
  if (!history_.empty() && t < history_.back().first) {
    return Status::InvalidArgument("writes must be time-ordered per SSV");
  }
  history_.push_back({t, value});
  return Status::OK();
}

Result<double> SharedStateVariable::ValueAt(double t) const {
  if (history_.empty() || t < history_.front().first) {
    return Status::NotFound("SSV has no value at or before requested time");
  }
  // Last entry with time <= t.
  auto it = std::upper_bound(
      history_.begin(), history_.end(), t,
      [](double time, const std::pair<double, double>& e) {
        return time < e.first;
      });
  return std::prev(it)->second;
}

Result<double> SharedStateVariable::Current() const {
  if (history_.empty()) return Status::NotFound("SSV never written");
  return history_.back().second;
}

ClpTree::ClpTree(size_t num_ssvs, size_t leaf_size) : ssvs_(num_ssvs) {
  MDE_CHECK_GT(num_ssvs, 0u);
  MDE_CHECK_GT(leaf_size, 0u);
  nodes_.reserve(2 * (num_ssvs / leaf_size + 2));
  BuildNode(0, num_ssvs, leaf_size);
  leaf_accesses_.assign(nodes_.size(), 0);
}

size_t ClpTree::BuildNode(size_t begin, size_t end, size_t leaf_size) {
  const size_t idx = nodes_.size();
  nodes_.push_back({begin, end, 0.0, 0.0, false, 0, 0});
  if (end - begin > leaf_size) {
    const size_t mid = begin + (end - begin) / 2;
    const size_t left = BuildNode(begin, mid, leaf_size);
    const size_t right = BuildNode(mid, end, leaf_size);
    nodes_[idx].left = left;
    nodes_[idx].right = right;
  }
  return idx;
}

Status ClpTree::Write(size_t id, double time, double value) {
  if (id >= ssvs_.size()) return Status::OutOfRange("SSV id out of range");
  MDE_RETURN_NOT_OK(ssvs_[id].Write(time, value));
  // Update bounding intervals along the root-to-leaf path. Intervals are
  // over ALL values ever written (safe for both current and timestamped
  // pruning; they only widen).
  size_t node = 0;
  while (true) {
    Node& n = nodes_[node];
    if (!n.has_value) {
      n.min_value = n.max_value = value;
      n.has_value = true;
    } else {
      n.min_value = std::min(n.min_value, value);
      n.max_value = std::max(n.max_value, value);
    }
    if (n.left == 0 && n.right == 0) {
      ++leaf_accesses_[node];
      break;
    }
    node = id < nodes_[n.left].end ? n.left : n.right;
  }
  return Status::OK();
}

void ClpTree::Query(size_t node, double lo, double hi, bool timestamped,
                    double t, std::vector<size_t>* out) const {
  ++last_visited_;
  const Node& n = nodes_[node];
  if (!n.has_value || n.max_value < lo || n.min_value > hi) return;
  if (n.left == 0 && n.right == 0) {
    ++leaf_accesses_[node];
    for (size_t id = n.begin; id < n.end; ++id) {
      const auto v =
          timestamped ? ssvs_[id].ValueAt(t) : ssvs_[id].Current();
      if (v.ok() && v.value() >= lo && v.value() <= hi) {
        out->push_back(id);
      }
    }
    return;
  }
  Query(n.left, lo, hi, timestamped, t, out);
  Query(n.right, lo, hi, timestamped, t, out);
}

std::vector<size_t> ClpTree::LeafAccessCounts() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].left == 0 && nodes_[i].right == 0) {
      out.push_back(leaf_accesses_[i]);
    }
  }
  return out;
}

std::vector<size_t> ClpTree::CurrentRangeQuery(double lo, double hi) const {
  last_visited_ = 0;
  std::vector<size_t> out;
  Query(0, lo, hi, /*timestamped=*/false, 0.0, &out);
  return out;
}

std::vector<size_t> ClpTree::RangeQueryAt(double t, double lo,
                                          double hi) const {
  last_visited_ = 0;
  std::vector<size_t> out;
  Query(0, lo, hi, /*timestamped=*/true, t, &out);
  return out;
}

}  // namespace mde::pdesmas
