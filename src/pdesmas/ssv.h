#ifndef MDE_PDESMAS_SSV_H_
#define MDE_PDESMAS_SSV_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "util/status.h"

namespace mde::pdesmas {

/// A shared state variable (SSV) in the PDES-MAS architecture (Section
/// 2.4): an externally visible agent attribute (e.g. position) maintained
/// as a timestamped history, because agent logical processes progress
/// through simulated time at different rates and queries must be answered
/// at a specific timestamp.
class SharedStateVariable {
 public:
  /// Records a write at simulation time `t` (must be >= the last write
  /// time).
  Status Write(double t, double value);

  /// Value visible at time `t`: the last write at or before `t`. Errors if
  /// `t` precedes the first write.
  Result<double> ValueAt(double t) const;

  /// Latest written value (error if never written).
  Result<double> Current() const;

  size_t history_size() const { return history_.size(); }

 private:
  std::vector<std::pair<double, double>> history_;
};

/// A tree of communication logical processes (CLPs) maintaining SSVs in
/// contiguous leaf ranges, with per-node value intervals for pruning range
/// queries — a simplified instance of the PDES-MAS CLP tree. Reconfiguration
/// is modeled by rebuilding with a different leaf size.
class ClpTree {
 public:
  /// `leaf_size` SSVs per leaf CLP.
  ClpTree(size_t num_ssvs, size_t leaf_size);

  size_t num_ssvs() const { return ssvs_.size(); }

  /// Routes a write for SSV `id` through the tree, updating the bounding
  /// intervals on the root-to-leaf path.
  Status Write(size_t id, double time, double value);

  /// Instantaneous range query ("find all agents whose attribute is in
  /// [lo, hi] right now"): ids of SSVs whose latest value lies in the
  /// interval. Uses node pruning; records the node-visit count.
  std::vector<size_t> CurrentRangeQuery(double lo, double hi) const;

  /// Timestamped range query at simulation time `t` — needed because ALPs
  /// advance at different rates. SSVs never written by time `t` are
  /// excluded. (Prunes with all-time intervals, then checks history.)
  std::vector<size_t> RangeQueryAt(double t, double lo, double hi) const;

  /// CLP nodes touched by the most recent query (the load metric PDES-MAS
  /// balances).
  size_t last_query_nodes_visited() const { return last_visited_; }

  /// Cumulative leaf-CLP access counts (reads + writes routed to each
  /// leaf). PDES-MAS migrates SSVs / reconfigures the tree to balance this
  /// load; the counters expose the signal its reconfiguration would use.
  std::vector<size_t> LeafAccessCounts() const;

  const SharedStateVariable& ssv(size_t id) const { return ssvs_[id]; }

 private:
  struct Node {
    size_t begin = 0;  // SSV id range [begin, end)
    size_t end = 0;
    double min_value = 0.0;
    double max_value = 0.0;
    bool has_value = false;
    size_t left = 0;   // child node indices (0 = none; root is index 0)
    size_t right = 0;
  };

  size_t BuildNode(size_t begin, size_t end, size_t leaf_size);
  void Query(size_t node, double lo, double hi, bool timestamped, double t,
             std::vector<size_t>* out) const;

  std::vector<SharedStateVariable> ssvs_;
  std::vector<Node> nodes_;
  mutable size_t last_visited_ = 0;
  mutable std::vector<size_t> leaf_accesses_;  // indexed by node id
};

}  // namespace mde::pdesmas

#endif  // MDE_PDESMAS_SSV_H_
