#include "simsql/simsql.h"

#include "obs/metrics.h"
#include "obs/stat.h"
#include "obs/trace.h"

namespace mde::simsql {

Status MarkovChainDb::AddDeterministic(const std::string& name,
                                       table::Table t) {
  if (deterministic_.count(name) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  // Re-wrap columnar-convertible tables so the per-step state copies in
  // Run() share immutable column blocks instead of deep-copying boxed rows
  // (tables with mixed-type columns keep their row storage).
  if (auto cols = t.ToColumnar(); cols.ok()) {
    t = table::Table::FromColumnar(std::move(cols).value());
  }
  deterministic_.emplace(name, std::move(t));
  return Status::OK();
}

Status MarkovChainDb::AddChainTable(ChainTableSpec spec) {
  if (deterministic_.count(spec.name) > 0) {
    return Status::AlreadyExists("table exists: " + spec.name);
  }
  for (const auto& s : specs_) {
    if (s.name == spec.name) {
      return Status::AlreadyExists("chain table exists: " + spec.name);
    }
  }
  if (!spec.init || !spec.transition) {
    return Status::InvalidArgument("chain table needs init and transition");
  }
  specs_.push_back(std::move(spec));
  return Status::OK();
}

Result<DatabaseState> MarkovChainDb::Run(size_t steps, uint64_t seed,
                                         uint64_t rep,
                                         const Observer& observer) {
  MDE_TRACE_SPAN("simsql.run");
  history_.clear();
  Rng rng = Rng::Substream(seed, rep);
#ifndef MDE_OBS_DISABLED
  const uint64_t run_start_ns = obs::NowNanos();
#endif

  // Version 0.
  DatabaseState state = deterministic_;
  for (const auto& spec : specs_) {
    MDE_ASSIGN_OR_RETURN(table::Table t, spec.init(state, rng));
    state.erase(spec.name);
    state.emplace(spec.name, std::move(t));
  }
  if (observer) MDE_RETURN_NOT_OK(observer(0, state));
  if (history_limit_ > 0) history_.push_back(state);

  // Versions 1..steps.
  for (size_t i = 1; i <= steps; ++i) {
    MDE_TRACE_SPAN("simsql.step");
    MDE_OBS_COUNT("simsql.steps", 1);
    DatabaseState next = deterministic_;
    for (const auto& spec : specs_) {
      MDE_ASSIGN_OR_RETURN(table::Table t, spec.transition(state, next, rng));
      next.erase(spec.name);
      next.emplace(spec.name, std::move(t));
      MDE_OBS_COUNT("simsql.chain_tables", 1);
    }
    state = std::move(next);
    if (observer) MDE_RETURN_NOT_OK(observer(i, state));
    if (history_limit_ > 0) {
      history_.push_back(state);
      if (history_.size() > history_limit_) {
        history_.erase(history_.begin());
      }
    }
  }
#ifndef MDE_OBS_DISABLED
  // Chain throughput for this Run: the sampled time series shows step-rate
  // collapse (e.g. a transition that grows its table) long before a
  // wall-clock budget trips.
  const double secs =
      static_cast<double>(obs::NowNanos() - run_start_ns) * 1e-9;
  if (steps > 0 && secs > 0.0) {
    MDE_OBS_GAUGE_SET("simsql.steps_per_sec",
                      static_cast<double>(steps) / secs);
  }
#endif
  return state;
}

Result<std::vector<double>> MonteCarloChain(
    MarkovChainDb& db, size_t steps, size_t reps, uint64_t seed,
    const std::function<Result<double>(const DatabaseState&)>& query) {
  std::vector<double> samples;
  samples.reserve(reps);
#ifndef MDE_OBS_DISABLED
  // Chain-diagnostics monitors: running CLT half-width and P² quantile
  // sketches over the replication samples, published as gauges so the
  // Sampler's time series shows the estimate tightening rep by rep.
  obs::CiMonitor ci("simsql.mc.ci_halfwidth");
  obs::P2Quantile q50(0.5);
  obs::P2Quantile q95(0.95);
#endif
  for (size_t rep = 0; rep < reps; ++rep) {
    Result<DatabaseState> final_state = db.Run(steps, seed, rep);
    if (!final_state.ok()) {
      MDE_OBS_COUNT("simsql.mc.reps_failed", 1);
      return final_state.status();
    }
    Result<double> v = query(final_state.value());
    if (!v.ok()) {
      MDE_OBS_COUNT("simsql.mc.reps_failed", 1);
      return v.status();
    }
    samples.push_back(v.value());
    MDE_OBS_COUNT("simsql.mc.reps", 1);
#ifndef MDE_OBS_DISABLED
    ci.Add(v.value());
    q50.Add(v.value());
    q95.Add(v.value());
    MDE_OBS_GAUGE_SET("simsql.mc.q50", q50.Value());
    MDE_OBS_GAUGE_SET("simsql.mc.q95", q95.Value());
    MDE_OBS_GAUGE_SET("simsql.mc.acceptance_rate",
                      static_cast<double>(samples.size()) /
                          static_cast<double>(rep + 1));
#endif
  }
  return samples;
}

}  // namespace mde::simsql
