#include "simsql/simsql.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mde::simsql {

Status MarkovChainDb::AddDeterministic(const std::string& name,
                                       table::Table t) {
  if (deterministic_.count(name) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  // Re-wrap columnar-convertible tables so the per-step state copies in
  // Run() share immutable column blocks instead of deep-copying boxed rows
  // (tables with mixed-type columns keep their row storage).
  if (auto cols = t.ToColumnar(); cols.ok()) {
    t = table::Table::FromColumnar(std::move(cols).value());
  }
  deterministic_.emplace(name, std::move(t));
  return Status::OK();
}

Status MarkovChainDb::AddChainTable(ChainTableSpec spec) {
  if (deterministic_.count(spec.name) > 0) {
    return Status::AlreadyExists("table exists: " + spec.name);
  }
  for (const auto& s : specs_) {
    if (s.name == spec.name) {
      return Status::AlreadyExists("chain table exists: " + spec.name);
    }
  }
  if (!spec.init || !spec.transition) {
    return Status::InvalidArgument("chain table needs init and transition");
  }
  specs_.push_back(std::move(spec));
  return Status::OK();
}

Result<DatabaseState> MarkovChainDb::Run(size_t steps, uint64_t seed,
                                         uint64_t rep,
                                         const Observer& observer) {
  MDE_TRACE_SPAN("simsql.run");
  history_.clear();
  Rng rng = Rng::Substream(seed, rep);

  // Version 0.
  DatabaseState state = deterministic_;
  for (const auto& spec : specs_) {
    MDE_ASSIGN_OR_RETURN(table::Table t, spec.init(state, rng));
    state.erase(spec.name);
    state.emplace(spec.name, std::move(t));
  }
  if (observer) MDE_RETURN_NOT_OK(observer(0, state));
  if (history_limit_ > 0) history_.push_back(state);

  // Versions 1..steps.
  for (size_t i = 1; i <= steps; ++i) {
    MDE_TRACE_SPAN("simsql.step");
    MDE_OBS_COUNT("simsql.steps", 1);
    DatabaseState next = deterministic_;
    for (const auto& spec : specs_) {
      MDE_ASSIGN_OR_RETURN(table::Table t, spec.transition(state, next, rng));
      next.erase(spec.name);
      next.emplace(spec.name, std::move(t));
      MDE_OBS_COUNT("simsql.chain_tables", 1);
    }
    state = std::move(next);
    if (observer) MDE_RETURN_NOT_OK(observer(i, state));
    if (history_limit_ > 0) {
      history_.push_back(state);
      if (history_.size() > history_limit_) {
        history_.erase(history_.begin());
      }
    }
  }
  return state;
}

Result<std::vector<double>> MonteCarloChain(
    MarkovChainDb& db, size_t steps, size_t reps, uint64_t seed,
    const std::function<Result<double>(const DatabaseState&)>& query) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (size_t rep = 0; rep < reps; ++rep) {
    MDE_ASSIGN_OR_RETURN(DatabaseState final_state,
                         db.Run(steps, seed, rep));
    MDE_ASSIGN_OR_RETURN(double v, query(final_state));
    samples.push_back(v);
  }
  return samples;
}

}  // namespace mde::simsql
