#include "simsql/simsql.h"

#include "ckpt/fault.h"
#include "ckpt/snapshot.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/stat.h"
#include "obs/trace.h"

namespace mde::simsql {

namespace {

/// Cell-exact table serialization for checkpoints: schema (names + declared
/// types), then every cell as a runtime-type tag + payload. Doubles travel
/// as IEEE-754 bits, so a restored chain state is bit-identical.
void PutValue(ckpt::SectionWriter* s, const table::Value& v) {
  s->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case table::DataType::kNull:
      break;
    case table::DataType::kBool:
      s->PutBool(v.AsBool());
      break;
    case table::DataType::kInt64:
      s->PutI64(v.AsInt());
      break;
    case table::DataType::kDouble:
      s->PutDouble(v.AsDouble());
      break;
    case table::DataType::kString:
      s->PutString(v.AsString());
      break;
  }
}

table::Value TakeValue(ckpt::SectionReader* s) {
  switch (static_cast<table::DataType>(s->U8())) {
    case table::DataType::kBool:
      return table::Value(s->Bool());
    case table::DataType::kInt64:
      return table::Value(s->I64());
    case table::DataType::kDouble:
      return table::Value(s->Double());
    case table::DataType::kString:
      return table::Value(s->String());
    case table::DataType::kNull:
    default:
      return table::Value();
  }
}

void PutTable(ckpt::SectionWriter* s, const table::Table& t) {
  const table::Schema& schema = t.schema();
  s->PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const table::ColumnSpec& c : schema.columns()) {
    s->PutString(c.name);
    s->PutU8(static_cast<uint8_t>(c.type));
  }
  s->PutU64(t.num_rows());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    for (const table::Value& v : t.row(i)) PutValue(s, v);
  }
}

table::Table TakeTable(ckpt::SectionReader* s) {
  const uint32_t ncols = s->U32();
  std::vector<table::ColumnSpec> cols;
  cols.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    std::string name = s->String();
    const auto type = static_cast<table::DataType>(s->U8());
    cols.push_back({std::move(name), type});
  }
  table::Table t{table::Schema(std::move(cols))};
  const uint64_t nrows = s->U64();
  for (uint64_t r = 0; r < nrows && s->status().ok(); ++r) {
    table::Row row;
    row.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) row.push_back(TakeValue(s));
    t.Append(std::move(row));
  }
  return t;
}

void PutState(ckpt::SectionWriter* s, const DatabaseState& state) {
  s->PutU32(static_cast<uint32_t>(state.size()));
  for (const auto& [name, t] : state) {
    s->PutString(name);
    PutTable(s, t);
  }
}

DatabaseState TakeState(ckpt::SectionReader* s) {
  DatabaseState state;
  const uint32_t n = s->U32();
  for (uint32_t i = 0; i < n && s->status().ok(); ++i) {
    std::string name = s->String();
    state.emplace(std::move(name), TakeTable(s));
  }
  return state;
}

}  // namespace

Status MarkovChainDb::AddDeterministic(const std::string& name,
                                       table::Table t) {
  if (deterministic_.count(name) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  // Re-wrap columnar-convertible tables so the per-step state copies in
  // Run() share immutable column blocks instead of deep-copying boxed rows
  // (tables with mixed-type columns keep their row storage).
  if (auto cols = t.ToColumnar(); cols.ok()) {
    t = table::Table::FromColumnar(std::move(cols).value());
  }
  deterministic_.emplace(name, std::move(t));
  return Status::OK();
}

Status MarkovChainDb::AddChainTable(ChainTableSpec spec) {
  if (deterministic_.count(spec.name) > 0) {
    return Status::AlreadyExists("table exists: " + spec.name);
  }
  for (const auto& s : specs_) {
    if (s.name == spec.name) {
      return Status::AlreadyExists("chain table exists: " + spec.name);
    }
  }
  if (!spec.init || !spec.transition) {
    return Status::InvalidArgument("chain table needs init and transition");
  }
  specs_.push_back(std::move(spec));
  return Status::OK();
}

Result<DatabaseState> MarkovChainDb::Run(size_t steps, uint64_t seed,
                                         uint64_t rep,
                                         const Observer& observer) {
  MDE_TRACE_SPAN("simsql.run");
  history_.clear();
#ifndef MDE_OBS_DISABLED
  const uint64_t run_start_ns = obs::NowNanos();
#endif
  ChainRunner runner(*this, steps, seed, rep, observer);
  while (!runner.Done()) MDE_RETURN_NOT_OK(runner.StepOnce());
  MDE_ASSIGN_OR_RETURN(DatabaseState final_state, runner.Finish());
#ifndef MDE_OBS_DISABLED
  // Chain throughput for this Run: the sampled time series shows step-rate
  // collapse (e.g. a transition that grows its table) long before a
  // wall-clock budget trips.
  const double secs =
      static_cast<double>(obs::NowNanos() - run_start_ns) * 1e-9;
  if (steps > 0 && secs > 0.0) {
    MDE_OBS_GAUGE_SET("simsql.steps_per_sec",
                      static_cast<double>(steps) / secs);
  }
#endif
  return final_state;
}

ChainRunner::ChainRunner(MarkovChainDb& db, size_t steps, uint64_t seed,
                         uint64_t rep, MarkovChainDb::Observer observer)
    : db_(db),
      steps_(steps),
      observer_(std::move(observer)),
      rng_(Rng::Substream(seed, rep)) {
#ifndef MDE_OBS_DISABLED
  uint64_t fp = obs::FingerprintString("simsql.chain");
  for (const auto& spec : db_.specs_) {
    fp = obs::FingerprintMix(fp, obs::FingerprintString(spec.name));
  }
  fp = obs::FingerprintMix(fp, steps);
  fp = obs::FingerprintMix(fp, seed);
  fingerprint_ = obs::FingerprintMix(fp, rep);
#endif
}

Status ChainRunner::StepOnce() {
  if (Done()) {
    return Status::FailedPrecondition("simsql: chain already realized");
  }
  // Per-step attribution root: inner table queries issued by transitions
  // adopt this chain's context.
  MDE_OBS_QUERY_SCOPE("simsql.chain", fingerprint_);
  // Before any mutation: a fault here leaves state_/rng_ exactly at the
  // previous version boundary.
  MDE_FAULT_POINT("simsql.version");
  const size_t version = next_version_;
  DatabaseState next = db_.deterministic_;
  if (version == 0) {
    for (const auto& spec : db_.specs_) {
      MDE_ASSIGN_OR_RETURN(table::Table t, spec.init(next, rng_));
      next.erase(spec.name);
      next.emplace(spec.name, std::move(t));
    }
  } else {
    MDE_TRACE_SPAN("simsql.step");
    MDE_OBS_COUNT("simsql.steps", 1);
    for (const auto& spec : db_.specs_) {
      MDE_ASSIGN_OR_RETURN(table::Table t,
                           spec.transition(state_, next, rng_));
      next.erase(spec.name);
      next.emplace(spec.name, std::move(t));
      MDE_OBS_COUNT("simsql.chain_tables", 1);
    }
  }
  state_ = std::move(next);
  if (observer_) MDE_RETURN_NOT_OK(observer_(version, state_));
  if (db_.history_limit_ > 0) {
    history_.push_back(state_);
    if (history_.size() > db_.history_limit_) history_.erase(history_.begin());
  }
  ++next_version_;
  return Status::OK();
}

Result<std::string> ChainRunner::Save() const {
  ckpt::SnapshotWriter snap(engine_name());
  ckpt::SectionWriter* c = snap.AddSection("cursor");
  c->PutU64(next_version_);
  c->PutU64(steps_);
  c->PutRngState(rng_.state());
  PutState(snap.AddSection("state"), state_);
  ckpt::SectionWriter* h = snap.AddSection("history");
  h->PutU32(static_cast<uint32_t>(history_.size()));
  for (const DatabaseState& s : history_) PutState(h, s);
  return snap.Finish();
}

Status ChainRunner::Restore(const std::string& snapshot) {
  MDE_ASSIGN_OR_RETURN(ckpt::SnapshotReader snap,
                       ckpt::SnapshotReader::Parse(snapshot));
  if (snap.engine() != engine_name()) {
    return Status::InvalidArgument("checkpoint is for engine '" +
                                   snap.engine() + "', not simsql");
  }
  MDE_ASSIGN_OR_RETURN(ckpt::SectionReader c, snap.section("cursor"));
  const uint64_t version = c.U64();
  const uint64_t steps = c.U64();
  const Rng::State rng_state = c.RngState();
  MDE_RETURN_NOT_OK(c.ExpectEnd());
  if (steps != steps_) {
    return Status::InvalidArgument(
        "simsql checkpoint is for a different chain length");
  }
  MDE_ASSIGN_OR_RETURN(ckpt::SectionReader st, snap.section("state"));
  DatabaseState state = TakeState(&st);
  MDE_RETURN_NOT_OK(st.ExpectEnd());
  MDE_ASSIGN_OR_RETURN(ckpt::SectionReader h, snap.section("history"));
  std::vector<DatabaseState> history;
  const uint32_t nh = h.U32();
  for (uint32_t i = 0; i < nh && h.status().ok(); ++i) {
    history.push_back(TakeState(&h));
  }
  MDE_RETURN_NOT_OK(h.ExpectEnd());
  next_version_ = version;
  rng_.set_state(rng_state);
  state_ = std::move(state);
  history_ = std::move(history);
  return Status::OK();
}

Result<DatabaseState> ChainRunner::Finish() {
  if (!Done()) {
    return Status::FailedPrecondition("simsql: chain not fully realized");
  }
  db_.history_ = std::move(history_);
  history_.clear();
  return state_;
}

Result<std::vector<double>> MonteCarloChain(
    MarkovChainDb& db, size_t steps, size_t reps, uint64_t seed,
    const std::function<Result<double>(const DatabaseState&)>& query) {
  std::vector<double> samples;
  samples.reserve(reps);
#ifndef MDE_OBS_DISABLED
  // Chain-diagnostics monitors: running CLT half-width and P² quantile
  // sketches over the replication samples, published as gauges so the
  // Sampler's time series shows the estimate tightening rep by rep.
  obs::CiMonitor ci("simsql.mc.ci_halfwidth");
  obs::P2Quantile q50(0.5);
  obs::P2Quantile q95(0.95);
#endif
  for (size_t rep = 0; rep < reps; ++rep) {
    Result<DatabaseState> final_state = db.Run(steps, seed, rep);
    if (!final_state.ok()) {
      MDE_OBS_COUNT("simsql.mc.reps_failed", 1);
      return final_state.status();
    }
    Result<double> v = query(final_state.value());
    if (!v.ok()) {
      MDE_OBS_COUNT("simsql.mc.reps_failed", 1);
      return v.status();
    }
    samples.push_back(v.value());
    MDE_OBS_COUNT("simsql.mc.reps", 1);
#ifndef MDE_OBS_DISABLED
    ci.Add(v.value());
    q50.Add(v.value());
    q95.Add(v.value());
    MDE_OBS_GAUGE_SET("simsql.mc.q50", q50.Value());
    MDE_OBS_GAUGE_SET("simsql.mc.q95", q95.Value());
    MDE_OBS_GAUGE_SET("simsql.mc.acceptance_rate",
                      static_cast<double>(samples.size()) /
                          static_cast<double>(rep + 1));
#endif
  }
  return samples;
}

}  // namespace mde::simsql
