#ifndef MDE_SIMSQL_SIMSQL_H_
#define MDE_SIMSQL_SIMSQL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ckpt/recovery.h"
#include "table/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace mde::simsql {

/// One version of the database-valued Markov chain: every table (chain
/// tables at this version plus the deterministic tables).
using DatabaseState = std::map<std::string, table::Table>;

/// Specification of one chain (versioned stochastic) table. SimSQL's
/// extension over MCDB (Section 2.1): stochastic tables may be
/// parameterized by other stochastic tables — including earlier versions of
/// themselves — yielding a database-valued Markov chain D[0], D[1], ...
struct ChainTableSpec {
  std::string name;
  /// Generates version 0 given the deterministic tables and any chain
  /// tables already generated for version 0 (registration order).
  std::function<Result<table::Table>(const DatabaseState& current, Rng& rng)>
      init;
  /// Generates version i given the FULL previous state D[i-1] plus any
  /// chain tables already generated for version i. The dependence on
  /// `previous` is exactly the Markov property: D[i] depends on D[i-1]
  /// only.
  std::function<Result<table::Table>(const DatabaseState& previous,
                                     const DatabaseState& current, Rng& rng)>
      transition;
};

/// Driver for database-valued Markov chains.
class MarkovChainDb {
 public:
  /// Registers an ordinary (time-invariant) table.
  Status AddDeterministic(const std::string& name, table::Table t);

  /// Registers a chain table; generation at each step follows registration
  /// order, so a spec may consume same-version tables registered before it
  /// (SimSQL's recursive definitions).
  Status AddChainTable(ChainTableSpec spec);

  /// Number of versions retained by Run (0 = retain only the latest;
  /// k = keep the trailing k versions). Versioning lets queries look at
  /// past states.
  void set_history_limit(size_t k) { history_limit_ = k; }

  /// Observer invoked after each version is realized: (version index,
  /// state). Returning a non-OK status aborts the run.
  using Observer = std::function<Status(size_t, const DatabaseState&)>;

  /// Realizes D[0..steps] for one Monte Carlo replication (substream `rep`
  /// of `seed`). Returns the final state; `observer` (optional) sees every
  /// version.
  Result<DatabaseState> Run(size_t steps, uint64_t seed, uint64_t rep,
                            const Observer& observer = nullptr);

  /// Retained history after Run (most recent last), per history_limit.
  const std::vector<DatabaseState>& history() const { return history_; }

 private:
  friend class ChainRunner;

  DatabaseState deterministic_;
  std::vector<ChainTableSpec> specs_;
  size_t history_limit_ = 0;
  std::vector<DatabaseState> history_;
};

/// Resumable chain realization: one StepOnce() per chain version, with the
/// full database state D[t] (every table, cell-exact), retained history,
/// version cursor, and RNG substream position captured in the snapshot —
/// the Hadoop-style restartable step SimSQL inherits, made bit-identical.
/// Fault point: "simsql.version". The table specs (init/transition
/// closures) are code, not state; Restore expects a runner over the same
/// MarkovChainDb.
class ChainRunner : public ckpt::Checkpointable {
 public:
  /// Prepares replication `rep` of `seed` on `db` (same substream contract
  /// as MarkovChainDb::Run).
  ChainRunner(MarkovChainDb& db, size_t steps, uint64_t seed, uint64_t rep,
              MarkovChainDb::Observer observer = nullptr);

  std::string engine_name() const override { return "simsql"; }
  bool Done() const override { return next_version_ > steps_; }
  /// Realizes the next version (0 = init specs, else transitions).
  Status StepOnce() override;
  Result<std::string> Save() const override;
  Status Restore(const std::string& snapshot) override;

  size_t next_version() const { return next_version_; }
  /// Writes the retained history back to the db and returns the final
  /// state; call after Done().
  Result<DatabaseState> Finish();

 private:
  MarkovChainDb& db_;
  size_t steps_;
  MarkovChainDb::Observer observer_;
  Rng rng_;
  DatabaseState state_;
  std::vector<DatabaseState> history_;
  size_t next_version_ = 0;
  /// Attribution fingerprint: chain-table names + steps + (seed, rep), so
  /// every replication of the same chain spec shares one attribution row
  /// per substream. Computed once in the constructor.
  uint64_t fingerprint_ = 0;
};

/// Runs `reps` independent replications of the chain and reports, for a
/// caller-supplied scalar query evaluated on the final state, the vector of
/// per-replication results — samples from the time-`steps` marginal of the
/// chain's query-result distribution.
Result<std::vector<double>> MonteCarloChain(
    MarkovChainDb& db, size_t steps, size_t reps, uint64_t seed,
    const std::function<Result<double>(const DatabaseState&)>& query);

}  // namespace mde::simsql

#endif  // MDE_SIMSQL_SIMSQL_H_
