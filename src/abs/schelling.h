#ifndef MDE_ABS_SCHELLING_H_
#define MDE_ABS_SCHELLING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace mde::abs {

/// Schelling's dynamic model of segregation (paper reference [48]), the
/// canonical early agent-based simulation: two agent types on a grid, each
/// relocating when the fraction of like neighbors falls below a tolerance
/// threshold. Even mild individual preferences produce strong global
/// segregation — the emergent-behavior phenomenon ABS exists to capture.
class SchellingSim {
 public:
  struct Config {
    size_t width = 50;
    size_t height = 50;
    /// Fraction of cells occupied.
    double occupancy = 0.9;
    /// An agent is content when >= this fraction of its occupied neighbors
    /// share its type.
    double similarity_threshold = 0.3;
    uint64_t seed = 11;
  };

  explicit SchellingSim(const Config& config);

  /// One sweep: every discontent agent moves to a uniformly random vacant
  /// cell. Returns the number of moves.
  size_t Step();

  /// Mean over agents of the like-neighbor fraction (the segregation
  /// index; 0.5 = fully mixed under equal types).
  double SegregationIndex() const;

  /// Fraction of agents currently content.
  double ContentFraction() const;

  /// Cell contents: 0 = empty, 1 / 2 = agent type.
  int cell(size_t x, size_t y) const { return grid_[y * config_.width + x]; }

 private:
  double LikeFraction(size_t idx, bool* has_neighbors) const;
  bool IsContent(size_t idx) const;

  Config config_;
  Rng rng_;
  std::vector<int> grid_;
  std::vector<size_t> vacancies_;
};

}  // namespace mde::abs

#endif  // MDE_ABS_SCHELLING_H_
