#ifndef MDE_ABS_SPATIAL_H_
#define MDE_ABS_SPATIAL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "util/thread_pool.h"

namespace mde::abs {

/// 2-D point.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

double Distance(const Point& a, const Point& b);

/// Uniform bucket grid over a set of points. This is the partitioning
/// device behind "a step in an agent-based simulation is a self-join"
/// (Wang et al., Section 2.1): agents interact only with nearby agents, so
/// the self-join can be evaluated per grid cell (plus its 8 neighbors) and
/// parallelized across cells with no cross-partition communication.
class SpatialGrid {
 public:
  /// Builds buckets with cells of side `cell_size` (>= the interaction
  /// radius for correctness of neighbor queries).
  SpatialGrid(const std::vector<Point>& points, double cell_size);

  /// Invokes fn(j) for every point j != i within `radius` of point i.
  /// Requires radius <= cell_size.
  void ForEachNeighbor(size_t i, double radius,
                       const std::function<void(size_t)>& fn) const;

  /// Materializes all neighbor lists: result[i] = indices within `radius`
  /// of point i. Runs the per-cell self-join in parallel on `pool` when
  /// non-null.
  std::vector<std::vector<size_t>> NeighborLists(double radius,
                                                 ThreadPool* pool) const;

  size_t num_cells() const { return cells_.size(); }

 private:
  long CellX(double x) const;
  long CellY(double y) const;
  size_t CellIndex(long cx, long cy) const;

  const std::vector<Point>& points_;
  double cell_size_;
  double min_x_ = 0.0, min_y_ = 0.0;
  size_t nx_ = 1, ny_ = 1;
  std::vector<std::vector<size_t>> cells_;
};

}  // namespace mde::abs

#endif  // MDE_ABS_SPATIAL_H_
