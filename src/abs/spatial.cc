#include "abs/spatial.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace mde::abs {

double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

SpatialGrid::SpatialGrid(const std::vector<Point>& points, double cell_size)
    : points_(points), cell_size_(cell_size) {
  MDE_CHECK_GT(cell_size, 0.0);
  double max_x = 0.0, max_y = 0.0;
  min_x_ = min_y_ = 0.0;
  if (!points.empty()) {
    min_x_ = max_x = points[0].x;
    min_y_ = max_y = points[0].y;
    for (const Point& p : points) {
      min_x_ = std::min(min_x_, p.x);
      min_y_ = std::min(min_y_, p.y);
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
  }
  nx_ = static_cast<size_t>((max_x - min_x_) / cell_size_) + 1;
  ny_ = static_cast<size_t>((max_y - min_y_) / cell_size_) + 1;
  cells_.assign(nx_ * ny_, {});
  for (size_t i = 0; i < points.size(); ++i) {
    cells_[CellIndex(CellX(points[i].x), CellY(points[i].y))].push_back(i);
  }
}

long SpatialGrid::CellX(double x) const {
  return static_cast<long>((x - min_x_) / cell_size_);
}

long SpatialGrid::CellY(double y) const {
  return static_cast<long>((y - min_y_) / cell_size_);
}

size_t SpatialGrid::CellIndex(long cx, long cy) const {
  MDE_CHECK(cx >= 0 && cy >= 0);
  MDE_CHECK(static_cast<size_t>(cx) < nx_ && static_cast<size_t>(cy) < ny_);
  return static_cast<size_t>(cy) * nx_ + static_cast<size_t>(cx);
}

void SpatialGrid::ForEachNeighbor(size_t i, double radius,
                                  const std::function<void(size_t)>& fn) const {
  MDE_CHECK_LE(radius, cell_size_);
  const Point& p = points_[i];
  const long cx = CellX(p.x);
  const long cy = CellY(p.y);
  for (long dy = -1; dy <= 1; ++dy) {
    for (long dx = -1; dx <= 1; ++dx) {
      const long nx = cx + dx;
      const long ny = cy + dy;
      if (nx < 0 || ny < 0 || static_cast<size_t>(nx) >= nx_ ||
          static_cast<size_t>(ny) >= ny_) {
        continue;
      }
      for (size_t j : cells_[CellIndex(nx, ny)]) {
        if (j != i && Distance(p, points_[j]) <= radius) fn(j);
      }
    }
  }
}

std::vector<std::vector<size_t>> SpatialGrid::NeighborLists(
    double radius, ThreadPool* pool) const {
  std::vector<std::vector<size_t>> out(points_.size());
  auto process_point = [&](size_t i) {
    ForEachNeighbor(i, radius, [&](size_t j) { out[i].push_back(j); });
  };
  if (pool != nullptr) {
    pool->ParallelFor(points_.size(), process_point);
  } else {
    for (size_t i = 0; i < points_.size(); ++i) process_point(i);
  }
  return out;
}

}  // namespace mde::abs
