#include "abs/schelling.h"

#include <algorithm>

#include "util/check.h"
#include "util/distributions.h"

namespace mde::abs {

SchellingSim::SchellingSim(const Config& config)
    : config_(config), rng_(config.seed) {
  MDE_CHECK(config.occupancy > 0.0 && config.occupancy < 1.0);
  MDE_CHECK(config.similarity_threshold >= 0.0 &&
            config.similarity_threshold <= 1.0);
  const size_t n = config.width * config.height;
  grid_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (SampleBernoulli(rng_, config.occupancy)) {
      grid_[i] = SampleBernoulli(rng_, 0.5) ? 1 : 2;
    } else {
      vacancies_.push_back(i);
    }
  }
}

double SchellingSim::LikeFraction(size_t idx, bool* has_neighbors) const {
  const long w = static_cast<long>(config_.width);
  const long h = static_cast<long>(config_.height);
  const long x = static_cast<long>(idx) % w;
  const long y = static_cast<long>(idx) / w;
  const int self = grid_[idx];
  size_t like = 0, occupied = 0;
  for (long dy = -1; dy <= 1; ++dy) {
    for (long dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const long nx = x + dx;
      const long ny = y + dy;
      if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
      const int other = grid_[static_cast<size_t>(ny * w + nx)];
      if (other != 0) {
        ++occupied;
        if (other == self) ++like;
      }
    }
  }
  *has_neighbors = occupied > 0;
  return occupied > 0 ? static_cast<double>(like) / occupied : 1.0;
}

bool SchellingSim::IsContent(size_t idx) const {
  bool has_neighbors = false;
  const double frac = LikeFraction(idx, &has_neighbors);
  return !has_neighbors || frac >= config_.similarity_threshold;
}

size_t SchellingSim::Step() {
  size_t moves = 0;
  for (size_t i = 0; i < grid_.size(); ++i) {
    if (grid_[i] == 0 || IsContent(i)) continue;
    if (vacancies_.empty()) break;
    const size_t pick = rng_.NextBounded(vacancies_.size());
    const size_t target = vacancies_[pick];
    grid_[target] = grid_[i];
    grid_[i] = 0;
    vacancies_[pick] = i;
    ++moves;
  }
  return moves;
}

double SchellingSim::SegregationIndex() const {
  double total = 0.0;
  size_t agents = 0;
  for (size_t i = 0; i < grid_.size(); ++i) {
    if (grid_[i] == 0) continue;
    bool has_neighbors = false;
    const double frac = LikeFraction(i, &has_neighbors);
    if (has_neighbors) {
      total += frac;
      ++agents;
    }
  }
  return agents > 0 ? total / static_cast<double>(agents) : 0.0;
}

double SchellingSim::ContentFraction() const {
  size_t content = 0, agents = 0;
  for (size_t i = 0; i < grid_.size(); ++i) {
    if (grid_[i] == 0) continue;
    ++agents;
    if (IsContent(i)) ++content;
  }
  return agents > 0 ? static_cast<double>(content) / agents : 1.0;
}

}  // namespace mde::abs
