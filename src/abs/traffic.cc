#include "abs/traffic.h"

#include <algorithm>

#include "util/check.h"
#include "util/distributions.h"

namespace mde::abs {

TrafficSim::TrafficSim(const Config& config)
    : config_(config), rng_(config.seed) {
  MDE_CHECK_GT(config.num_cells, 0u);
  MDE_CHECK_LE(config.num_cars, config.num_cells);
  MDE_CHECK_GT(config.max_speed, 0);
  // Spread cars evenly around the ring, initial speed 0.
  position_.resize(config.num_cars);
  speed_.assign(config.num_cars, 0);
  for (size_t i = 0; i < config.num_cars; ++i) {
    position_[i] = i * config.num_cells / std::max<size_t>(1, config.num_cars);
  }
  std::sort(position_.begin(), position_.end());
}

void TrafficSim::Step() {
  const size_t n = position_.size();
  if (n == 0) {
    last_flow_ = 0.0;
    return;
  }
  size_t crossings = 0;
  std::vector<size_t> new_pos(n);
  for (size_t i = 0; i < n; ++i) {
    // Gap to the car ahead (ring wrap for the last car).
    const size_t ahead = (i + 1) % n;
    size_t gap;
    if (n == 1) {
      gap = config_.num_cells - 1;
    } else {
      gap = (position_[ahead] + config_.num_cells - position_[i]) %
                config_.num_cells;
      gap = gap == 0 ? config_.num_cells : gap;
      gap -= 1;  // empty cells between
    }
    int v = speed_[i];
    // 1. Accelerate toward the comfortable speed when the road allows.
    if (v < config_.max_speed) ++v;
    // 2. Brake to avoid the car in front.
    v = std::min<int>(v, static_cast<int>(gap));
    // 3. Random hesitation.
    if (v > 0 && SampleBernoulli(rng_, config_.p_slow)) --v;
    speed_[i] = v;
    const size_t np = (position_[i] + static_cast<size_t>(v)) %
                      config_.num_cells;
    if (np < position_[i]) ++crossings;  // wrapped past the detector at 0
    new_pos[i] = np;
  }
  position_ = std::move(new_pos);
  last_flow_ = static_cast<double>(crossings);
}

double TrafficSim::MeanSpeed() const {
  if (speed_.empty()) return 0.0;
  double s = 0.0;
  for (int v : speed_) s += v;
  return s / static_cast<double>(speed_.size());
}

size_t TrafficSim::CountJams(size_t min_run) const {
  const size_t n = position_.size();
  if (n < min_run) return 0;
  // A jammed car is stopped with the car ahead immediately adjacent.
  std::vector<bool> jammed(n, false);
  for (size_t i = 0; i < n; ++i) {
    const size_t ahead = (i + 1) % n;
    const size_t gap = (position_[ahead] + config_.num_cells - position_[i]) %
                       config_.num_cells;
    jammed[i] = speed_[i] == 0 && gap <= 1;
  }
  // Count maximal runs of length >= min_run (circularly).
  size_t jams = 0;
  size_t run = 0;
  bool all = true;
  for (size_t i = 0; i < 2 * n; ++i) {
    if (jammed[i % n]) {
      ++run;
    } else {
      all = false;
      if (i >= n && run >= min_run) ++jams;
      run = 0;
    }
    if (i == 2 * n - 1 && all) return 1;  // one giant jam
  }
  return jams;
}

std::vector<double> FundamentalDiagram(const std::vector<size_t>& car_counts,
                                       size_t num_cells, size_t warmup,
                                       size_t measure, uint64_t seed) {
  std::vector<double> mean_speeds;
  mean_speeds.reserve(car_counts.size());
  for (size_t cars : car_counts) {
    TrafficSim::Config cfg;
    cfg.num_cells = num_cells;
    cfg.num_cars = cars;
    cfg.seed = seed;
    TrafficSim sim(cfg);
    for (size_t t = 0; t < warmup; ++t) sim.Step();
    double total = 0.0;
    for (size_t t = 0; t < measure; ++t) {
      sim.Step();
      total += sim.MeanSpeed();
    }
    mean_speeds.push_back(measure > 0 ? total / static_cast<double>(measure)
                                      : 0.0);
  }
  return mean_speeds;
}

}  // namespace mde::abs
