#ifndef MDE_ABS_TRAFFIC_H_
#define MDE_ABS_TRAFFIC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace mde::abs {

/// Bonabeau's motivating traffic example (Section 1): drivers slow down at
/// certain rates when someone appears in front, accelerate to a comfortable
/// speed when the road is clear, and may randomly hesitate — the domain
/// knowledge a pure data-mining approach cannot capture. Implemented as the
/// classic Nagel–Schreckenberg cellular automaton on a ring road, which
/// reproduces spontaneous jam formation at high densities.
class TrafficSim {
 public:
  struct Config {
    size_t num_cells = 1000;
    size_t num_cars = 200;
    /// "Comfortable" maximum speed in cells/tick.
    int max_speed = 5;
    /// Probability of random slowdown (driver hesitation).
    double p_slow = 0.3;
    uint64_t seed = 7;
  };

  explicit TrafficSim(const Config& config);

  /// Advances one tick: accelerate, brake to gap, random slowdown, move.
  void Step();

  /// Mean speed over all cars at the current tick.
  double MeanSpeed() const;

  /// Number of distinct jams: maximal runs of >= `min_run` consecutive
  /// stopped cars (speed 0) with unit headway.
  size_t CountJams(size_t min_run = 3) const;

  /// Flow: cars passing a fixed detector per tick, averaged over the last
  /// Step() call.
  double last_flow() const { return last_flow_; }

  size_t num_cars() const { return position_.size(); }
  int speed(size_t car) const { return speed_[car]; }
  size_t position(size_t car) const { return position_[car]; }

 private:
  Config config_;
  Rng rng_;
  /// Car order is maintained sorted by position on the ring.
  std::vector<size_t> position_;
  std::vector<int> speed_;
  double last_flow_ = 0.0;
};

/// Density -> mean-speed curve: runs the simulator at each car count for
/// `warmup + measure` ticks and reports the mean speed over the measurement
/// window. Used to reproduce the jam phase transition.
std::vector<double> FundamentalDiagram(const std::vector<size_t>& car_counts,
                                       size_t num_cells, size_t warmup,
                                       size_t measure, uint64_t seed);

}  // namespace mde::abs

#endif  // MDE_ABS_TRAFFIC_H_
