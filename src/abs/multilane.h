#ifndef MDE_ABS_MULTILANE_H_
#define MDE_ABS_MULTILANE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace mde::abs {

/// Multi-lane extension of the ring-road model: Bonabeau's driver rules
/// include "we may switch lanes if they are open" (Section 1). Each lane
/// runs Nagel-Schreckenberg dynamics; before moving, a blocked driver
/// changes to an adjacent lane when the target lane offers more headway
/// and has a safe gap behind.
class MultiLaneTraffic {
 public:
  struct Config {
    size_t num_cells = 1000;
    size_t num_lanes = 2;
    size_t num_cars = 300;
    int max_speed = 5;
    double p_slow = 0.25;
    /// Probability a lane change is attempted when beneficial.
    double p_change = 0.8;
    /// Required free cells behind in the target lane.
    int safe_gap_back = 2;
    uint64_t seed = 13;
  };

  explicit MultiLaneTraffic(const Config& config);

  /// One tick: lane-change sweep, then per-lane NaSch update.
  void Step();

  double MeanSpeed() const;
  size_t lane_changes_last_step() const { return lane_changes_; }
  size_t total_lane_changes() const { return total_changes_; }
  size_t num_cars() const { return cars_.size(); }

  /// Lane index of car c (for tests).
  size_t lane(size_t car) const { return cars_[car].lane; }
  size_t position(size_t car) const { return cars_[car].cell; }
  int speed(size_t car) const { return cars_[car].speed; }

 private:
  struct Car {
    size_t lane = 0;
    size_t cell = 0;
    int speed = 0;
  };

  /// Occupant car index at (lane, cell) or kEmpty.
  static constexpr size_t kEmpty = static_cast<size_t>(-1);
  size_t& Occ(size_t lane, size_t cell) {
    return occupancy_[lane * config_.num_cells + cell];
  }
  size_t OccAt(size_t lane, size_t cell) const {
    return occupancy_[lane * config_.num_cells + cell];
  }
  /// Free cells ahead of `cell` in `lane` (capped at max_speed + 1).
  int GapAhead(size_t lane, size_t cell) const;
  /// Free cells behind `cell` in `lane` (capped at safe_gap_back).
  int GapBehind(size_t lane, size_t cell) const;

  Config config_;
  Rng rng_;
  std::vector<Car> cars_;
  std::vector<size_t> occupancy_;
  size_t lane_changes_ = 0;
  size_t total_changes_ = 0;
};

}  // namespace mde::abs

#endif  // MDE_ABS_MULTILANE_H_
