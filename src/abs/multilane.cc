#include "abs/multilane.h"

#include <algorithm>

#include "util/check.h"
#include "util/distributions.h"

namespace mde::abs {

MultiLaneTraffic::MultiLaneTraffic(const Config& config)
    : config_(config), rng_(config.seed) {
  MDE_CHECK_GT(config.num_cells, 0u);
  MDE_CHECK_GE(config.num_lanes, 1u);
  MDE_CHECK_LE(config.num_cars, config.num_cells * config.num_lanes);
  occupancy_.assign(config.num_cells * config.num_lanes, kEmpty);
  cars_.resize(config.num_cars);
  // Scatter cars uniformly over free (lane, cell) slots.
  size_t placed = 0;
  while (placed < config.num_cars) {
    const size_t lane = rng_.NextBounded(config.num_lanes);
    const size_t cell = rng_.NextBounded(config.num_cells);
    if (OccAt(lane, cell) != kEmpty) continue;
    cars_[placed] = {lane, cell, 0};
    Occ(lane, cell) = placed;
    ++placed;
  }
}

int MultiLaneTraffic::GapAhead(size_t lane, size_t cell) const {
  const int cap = config_.max_speed + 1;
  for (int g = 1; g <= cap; ++g) {
    const size_t probe = (cell + static_cast<size_t>(g)) % config_.num_cells;
    if (OccAt(lane, probe) != kEmpty) return g - 1;
  }
  return cap;
}

int MultiLaneTraffic::GapBehind(size_t lane, size_t cell) const {
  for (int g = 1; g <= config_.safe_gap_back; ++g) {
    const size_t probe =
        (cell + config_.num_cells - static_cast<size_t>(g)) %
        config_.num_cells;
    if (OccAt(lane, probe) != kEmpty) return g - 1;
  }
  return config_.safe_gap_back;
}

void MultiLaneTraffic::Step() {
  lane_changes_ = 0;
  // Lane-change sweep: a driver blocked in their lane moves sideways when
  // the neighbor lane has strictly more headway, the target cell is free,
  // and there is a safe gap behind.
  for (size_t c = 0; c < cars_.size(); ++c) {
    Car& car = cars_[c];
    const int own_gap = GapAhead(car.lane, car.cell);
    if (own_gap > car.speed) continue;  // not blocked
    for (int delta : {-1, 1}) {
      const long target = static_cast<long>(car.lane) + delta;
      if (target < 0 || target >= static_cast<long>(config_.num_lanes)) {
        continue;
      }
      const size_t tl = static_cast<size_t>(target);
      if (OccAt(tl, car.cell) != kEmpty) continue;
      if (GapAhead(tl, car.cell) <= own_gap) continue;
      if (GapBehind(tl, car.cell) < config_.safe_gap_back) continue;
      if (!SampleBernoulli(rng_, config_.p_change)) continue;
      Occ(car.lane, car.cell) = kEmpty;
      car.lane = tl;
      Occ(car.lane, car.cell) = c;
      ++lane_changes_;
      break;
    }
  }
  total_changes_ += lane_changes_;
  // Per-lane NaSch update (accelerate, brake, dawdle, move). Cars are
  // moved one at a time against the occupancy grid; gap computation before
  // movement is order-independent because moves never exceed the gap.
  for (size_t c = 0; c < cars_.size(); ++c) {
    Car& car = cars_[c];
    int v = std::min(car.speed + 1, config_.max_speed);
    v = std::min(v, GapAhead(car.lane, car.cell));
    if (v > 0 && SampleBernoulli(rng_, config_.p_slow)) --v;
    car.speed = v;
  }
  for (size_t c = 0; c < cars_.size(); ++c) {
    Car& car = cars_[c];
    if (car.speed == 0) continue;
    Occ(car.lane, car.cell) = kEmpty;
    car.cell = (car.cell + static_cast<size_t>(car.speed)) %
               config_.num_cells;
    MDE_CHECK_EQ(OccAt(car.lane, car.cell), kEmpty);
    Occ(car.lane, car.cell) = c;
  }
}

double MultiLaneTraffic::MeanSpeed() const {
  if (cars_.empty()) return 0.0;
  double total = 0.0;
  for (const Car& car : cars_) total += car.speed;
  return total / static_cast<double>(cars_.size());
}

}  // namespace mde::abs
