#include "timeseries/align.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace mde::timeseries {

AlignmentKind DetermineAlignment(double source_step, double target_step) {
  MDE_CHECK_GT(source_step, 0.0);
  MDE_CHECK_GT(target_step, 0.0);
  if (target_step > source_step * (1.0 + 1e-12)) {
    return AlignmentKind::kAggregation;
  }
  if (target_step < source_step * (1.0 - 1e-12)) {
    return AlignmentKind::kInterpolation;
  }
  return AlignmentKind::kIdentity;
}

Result<TimeSeries> AggregateAlign(const TimeSeries& source,
                                  const std::vector<double>& target_times,
                                  AggMethod method) {
  if (source.empty()) return Status::InvalidArgument("empty source series");
  TimeSeries out(source.width());
  size_t src = 0;
  double prev_t = -std::numeric_limits<double>::infinity();
  for (double t : target_times) {
    std::vector<double> agg(source.width(), 0.0);
    std::vector<double> mn(source.width(),
                           std::numeric_limits<double>::infinity());
    std::vector<double> mx(source.width(),
                           -std::numeric_limits<double>::infinity());
    std::vector<double> last(source.width(), 0.0);
    size_t n = 0;
    while (src < source.size() && source.time(src) <= t) {
      if (source.time(src) > prev_t) {
        for (size_t c = 0; c < source.width(); ++c) {
          const double v = source.data(src)[c];
          agg[c] += v;
          mn[c] = std::min(mn[c], v);
          mx[c] = std::max(mx[c], v);
          last[c] = v;
        }
        ++n;
      }
      ++src;
    }
    if (n == 0) {
      return Status::FailedPrecondition(
          "target tick received no source observations");
    }
    std::vector<double> result(source.width());
    for (size_t c = 0; c < source.width(); ++c) {
      switch (method) {
        case AggMethod::kMean:
          result[c] = agg[c] / static_cast<double>(n);
          break;
        case AggMethod::kSum:
          result[c] = agg[c];
          break;
        case AggMethod::kMin:
          result[c] = mn[c];
          break;
        case AggMethod::kMax:
          result[c] = mx[c];
          break;
        case AggMethod::kLast:
          result[c] = last[c];
          break;
      }
    }
    MDE_RETURN_NOT_OK(out.Append(t, std::move(result)));
    prev_t = t;
  }
  return out;
}

Result<TimeSeries> LinearInterpolate(const TimeSeries& source,
                                     const std::vector<double>& target_times) {
  if (source.size() < 2) {
    return Status::InvalidArgument("need >= 2 source points to interpolate");
  }
  TimeSeries out(source.width());
  for (double t : target_times) {
    if (t < source.time(0) || t > source.time(source.size() - 1)) {
      return Status::OutOfRange("target time outside source range");
    }
    MDE_ASSIGN_OR_RETURN(size_t j, source.FindSegment(t));
    if (j == source.size() - 1) j -= 1;  // t == last time
    const double s0 = source.time(j);
    const double s1 = source.time(j + 1);
    const double w = (t - s0) / (s1 - s0);
    std::vector<double> d(source.width());
    for (size_t c = 0; c < source.width(); ++c) {
      d[c] = (1.0 - w) * source.data(j)[c] + w * source.data(j + 1)[c];
    }
    MDE_RETURN_NOT_OK(out.Append(t, std::move(d)));
  }
  return out;
}

Result<SplineSystem> BuildSplineSystem(const TimeSeries& source, size_t k) {
  const size_t m = source.size() == 0 ? 0 : source.size() - 1;
  if (m < 2) {
    return Status::InvalidArgument("need >= 3 points for a cubic spline");
  }
  MDE_CHECK_LT(k, source.width());
  // Interior unknowns sigma_1..sigma_{m-1}.
  const size_t n = m - 1;
  SplineSystem sys;
  sys.a.diag.assign(n, 0.0);
  sys.a.lower.assign(n - 1, 0.0);
  sys.a.upper.assign(n - 1, 0.0);
  sys.b.assign(n, 0.0);
  auto h = [&](size_t j) { return source.time(j + 1) - source.time(j); };
  auto d = [&](size_t j) { return source.data(j)[k]; };
  for (size_t j = 1; j <= m - 1; ++j) {
    const size_t r = j - 1;  // row index
    sys.a.diag[r] = 2.0 * (h(j - 1) + h(j));
    if (r > 0) sys.a.lower[r - 1] = h(j - 1);
    if (r + 1 < n) sys.a.upper[r] = h(j);
    sys.b[r] =
        6.0 * ((d(j + 1) - d(j)) / h(j) - (d(j) - d(j - 1)) / h(j - 1));
  }
  return sys;
}

Result<std::vector<double>> SplineConstants(const TimeSeries& source,
                                            size_t k) {
  MDE_ASSIGN_OR_RETURN(SplineSystem sys, BuildSplineSystem(source, k));
  MDE_ASSIGN_OR_RETURN(linalg::Vector interior,
                       linalg::SolveTridiagonal(sys.a, sys.b));
  std::vector<double> sigma(source.size(), 0.0);
  for (size_t i = 0; i < interior.size(); ++i) sigma[i + 1] = interior[i];
  return sigma;  // natural spline: sigma_0 = sigma_m = 0
}

namespace {

/// Evaluates the paper's window formula for target time t in window j.
double EvalSplineWindow(const TimeSeries& src, size_t k,
                        const std::vector<double>& sigma, size_t j,
                        double t) {
  const double sj = src.time(j);
  const double sj1 = src.time(j + 1);
  const double hj = sj1 - sj;
  const double dj = src.data(j)[k];
  const double dj1 = src.data(j + 1)[k];
  const double a = sj1 - t;
  const double b = t - sj;
  return sigma[j] / (6.0 * hj) * a * a * a +
         sigma[j + 1] / (6.0 * hj) * b * b * b +
         (dj1 / hj - sigma[j + 1] * hj / 6.0) * b +
         (dj / hj - sigma[j] * hj / 6.0) * a;
}

}  // namespace

Result<TimeSeries> CubicSplineInterpolate(const TimeSeries& source,
                                          const std::vector<double>& target_times,
                                          size_t k,
                                          std::vector<double> sigma) {
  if (source.size() < 3) {
    return Status::InvalidArgument("need >= 3 points for a cubic spline");
  }
  if (sigma.empty()) {
    MDE_ASSIGN_OR_RETURN(sigma, SplineConstants(source, k));
  }
  if (sigma.size() != source.size()) {
    return Status::InvalidArgument("sigma size must equal source size");
  }
  TimeSeries out(1);
  for (double t : target_times) {
    if (t < source.time(0) || t > source.time(source.size() - 1)) {
      return Status::OutOfRange("target time outside source range");
    }
    MDE_ASSIGN_OR_RETURN(size_t j, source.FindSegment(t));
    if (j == source.size() - 1) j -= 1;
    MDE_RETURN_NOT_OK(out.Append(t, EvalSplineWindow(source, k, sigma, j, t)));
  }
  return out;
}

Result<long> EstimateLag(const TimeSeries& source, const TimeSeries& target,
                         size_t max_lag) {
  const size_t n = std::min(source.size(), target.size());
  if (n < max_lag + 2) {
    return Status::InvalidArgument("series too short for requested lag");
  }
  auto corr_at = [&](long lag) {
    // Pearson correlation of overlapping values at the given shift.
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    size_t m = 0;
    for (size_t i = 0; i < n; ++i) {
      const long j = static_cast<long>(i) + lag;
      if (j < 0 || j >= static_cast<long>(target.size()) ||
          i >= source.size()) {
        continue;
      }
      const double x = source.value(i);
      const double y = target.value(static_cast<size_t>(j));
      sx += x;
      sy += y;
      sxx += x * x;
      syy += y * y;
      sxy += x * y;
      ++m;
    }
    if (m < 3) return -2.0;
    const double mm = static_cast<double>(m);
    const double cov = sxy - sx * sy / mm;
    const double vx = sxx - sx * sx / mm;
    const double vy = syy - sy * sy / mm;
    if (vx <= 0.0 || vy <= 0.0) return -2.0;
    return cov / std::sqrt(vx * vy);
  };
  long best_lag = 0;
  double best = -3.0;
  for (long lag = -static_cast<long>(max_lag);
       lag <= static_cast<long>(max_lag); ++lag) {
    const double c = corr_at(lag);
    if (c > best) {
      best = c;
      best_lag = lag;
    }
  }
  if (best <= -2.0) {
    return Status::FailedPrecondition("series have no usable overlap");
  }
  return best_lag;
}

Result<TimeSeries> ParallelInterpolate(const TimeSeries& source,
                                       const std::vector<double>& target_times,
                                       ThreadPool& pool, bool use_spline) {
  if (source.size() < 2) {
    return Status::InvalidArgument("need >= 2 source points");
  }
  std::vector<double> sigma;
  if (use_spline) {
    MDE_ASSIGN_OR_RETURN(sigma, SplineConstants(source, 0));
  }
  // Map phase: each target point is routed to its window {t_i : s_j <= t_i <
  // s_{j+1}} and windows are evaluated independently in parallel.
  const size_t n = target_times.size();
  std::vector<double> out_values(n, 0.0);
  std::vector<Status> errors(n, Status::OK());
  pool.ParallelFor(n, [&](size_t i) {
    const double t = target_times[i];
    if (t < source.time(0) || t > source.time(source.size() - 1)) {
      errors[i] = Status::OutOfRange("target time outside source range");
      return;
    }
    auto seg = source.FindSegment(t);
    if (!seg.ok()) {
      errors[i] = seg.status();
      return;
    }
    size_t j = seg.value();
    if (j == source.size() - 1) j -= 1;
    if (use_spline) {
      out_values[i] = EvalSplineWindow(source, 0, sigma, j, t);
    } else {
      const double w = (t - source.time(j)) /
                       (source.time(j + 1) - source.time(j));
      out_values[i] =
          (1.0 - w) * source.data(j)[0] + w * source.data(j + 1)[0];
    }
  });
  for (const Status& st : errors) {
    if (!st.ok()) return st;
  }
  // Reduce phase: assemble in target time order (target_times is required to
  // be sorted by the caller, mirroring the parallel-sort assembly).
  TimeSeries out(1);
  for (size_t i = 0; i < n; ++i) {
    MDE_RETURN_NOT_OK(out.Append(target_times[i], out_values[i]));
  }
  return out;
}

}  // namespace mde::timeseries
