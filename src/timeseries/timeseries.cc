#include "timeseries/timeseries.h"

#include <algorithm>

#include "util/check.h"

namespace mde::timeseries {

Result<TimeSeries> TimeSeries::FromUnivariate(std::vector<double> times,
                                              std::vector<double> values) {
  if (times.size() != values.size()) {
    return Status::InvalidArgument("times/values size mismatch");
  }
  TimeSeries ts(1);
  for (size_t i = 0; i < times.size(); ++i) {
    MDE_RETURN_NOT_OK(ts.Append(times[i], values[i]));
  }
  return ts;
}

Status TimeSeries::Append(double t, std::vector<double> d) {
  if (d.size() != width_) {
    return Status::InvalidArgument("observation width mismatch");
  }
  if (!times_.empty() && t <= times_.back()) {
    return Status::InvalidArgument("times must be strictly increasing");
  }
  times_.push_back(t);
  data_.push_back(std::move(d));
  return Status::OK();
}

Status TimeSeries::Append(double t, double v) {
  return Append(t, std::vector<double>{v});
}

std::vector<double> TimeSeries::Column(size_t k) const {
  MDE_CHECK_LT(k, width_);
  std::vector<double> out;
  out.reserve(data_.size());
  for (const auto& d : data_) out.push_back(d[k]);
  return out;
}

TimeSeries TimeSeries::Slice(double t0, double t1) const {
  TimeSeries out(width_);
  for (size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= t0 && times_[i] <= t1) {
      Status st = out.Append(times_[i], data_[i]);
      MDE_CHECK(st.ok());
    }
  }
  return out;
}

Result<size_t> TimeSeries::FindSegment(double t) const {
  if (times_.empty() || t < times_.front()) {
    return Status::OutOfRange("time precedes series start");
  }
  auto it = std::upper_bound(times_.begin(), times_.end(), t);
  return static_cast<size_t>(it - times_.begin()) - 1;
}

std::vector<double> UniformGrid(double t0, double t1, size_t n) {
  MDE_CHECK_GE(n, 2u);
  MDE_CHECK_LT(t0, t1);
  std::vector<double> grid(n);
  const double step = (t1 - t0) / static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) grid[i] = t0 + step * static_cast<double>(i);
  grid.back() = t1;  // avoid rounding drift at the endpoint
  return grid;
}

}  // namespace mde::timeseries
