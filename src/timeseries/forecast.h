#ifndef MDE_TIMESERIES_FORECAST_H_
#define MDE_TIMESERIES_FORECAST_H_

#include <vector>

#include "timeseries/timeseries.h"
#include "util/rng.h"
#include "util/status.h"

namespace mde::timeseries {

/// "Shallow" predictive model of the kind Figure 1 warns about: a
/// deterministic trend (linear or quadratic in time) plus an AR(1) residual
/// process, fit by OLS + Yule-Walker. Extrapolating it assumes the
/// data-generating mechanism never changes — exactly the assumption that
/// fails at a regime break.
class TrendAr1Model {
 public:
  struct Params {
    /// Trend coefficients in centered time u = t - origin:
    /// value ~ c0 + c1 u (+ c2 u^2 when quadratic). Centering keeps the
    /// normal equations well conditioned for calendar-year time axes.
    std::vector<double> trend;
    /// Time origin subtracted before evaluating the trend.
    double origin = 0.0;
    /// AR(1) coefficient of the detrended residuals.
    double phi = 0.0;
    /// Residual innovation standard deviation.
    double sigma = 0.0;
  };

  /// Fits to a univariate series. `quadratic` adds a t^2 trend term.
  static Result<TrendAr1Model> Fit(const TimeSeries& history, bool quadratic);

  const Params& params() const { return params_; }

  /// Deterministic trend value at time t.
  double Trend(double t) const;

  /// Point forecast at the given times: trend plus AR(1)-decayed last
  /// residual (the conditional mean path).
  std::vector<double> Forecast(const std::vector<double>& times) const;

  /// One stochastic sample path of the forecast (for fan charts).
  std::vector<double> SamplePath(const std::vector<double>& times,
                                 Rng& rng) const;

 private:
  TrendAr1Model(Params params, double last_time, double last_residual)
      : params_(std::move(params)),
        last_time_(last_time),
        last_residual_(last_residual) {}

  Params params_;
  double last_time_;
  double last_residual_;
};

/// Synthetic stand-in for the paper's 1970-2006 median U.S. housing-price
/// series, extended through 2011 with a regime break: smooth growth that
/// accelerates into a bubble and then collapses after `break_time`. Units
/// are an arbitrary price index. Deterministic given the seed.
TimeSeries SyntheticHousingIndex(double start_year, double end_year,
                                 double break_time, uint64_t seed);

/// Root-mean-squared error between predictions and the truth series
/// restricted to `times` (sizes must match).
double ForecastRmse(const std::vector<double>& predicted,
                    const std::vector<double>& truth);

}  // namespace mde::timeseries

#endif  // MDE_TIMESERIES_FORECAST_H_
