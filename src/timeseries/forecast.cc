#include "timeseries/forecast.h"

#include <algorithm>
#include <cmath>

#include "linalg/solve.h"
#include "util/check.h"
#include "util/distributions.h"

namespace mde::timeseries {

Result<TrendAr1Model> TrendAr1Model::Fit(const TimeSeries& history,
                                         bool quadratic) {
  const size_t n = history.size();
  if (n < 5) return Status::InvalidArgument("need >= 5 points to fit");
  const size_t p = quadratic ? 3 : 2;
  const double origin = history.time(0);
  linalg::Matrix x(n, p);
  linalg::Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    const double u = history.time(i) - origin;
    x(i, 0) = 1.0;
    x(i, 1) = u;
    if (quadratic) x(i, 2) = u * u;
    y[i] = history.value(i);
  }
  MDE_ASSIGN_OR_RETURN(linalg::Vector beta, linalg::LeastSquares(x, y));
  // Residuals and Yule-Walker AR(1) fit.
  std::vector<double> resid(n);
  for (size_t i = 0; i < n; ++i) {
    const double u = history.time(i) - origin;
    double trend = beta[0] + beta[1] * u;
    if (quadratic) trend += beta[2] * u * u;
    resid[i] = y[i] - trend;
  }
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 1; i < n; ++i) {
    num += resid[i] * resid[i - 1];
    den += resid[i - 1] * resid[i - 1];
  }
  double phi = den > 0.0 ? num / den : 0.0;
  phi = std::clamp(phi, -0.999, 0.999);
  double ss = 0.0;
  for (size_t i = 1; i < n; ++i) {
    const double innov = resid[i] - phi * resid[i - 1];
    ss += innov * innov;
  }
  Params params;
  params.trend = beta;
  params.origin = origin;
  params.phi = phi;
  params.sigma = std::sqrt(ss / static_cast<double>(n - 1));
  return TrendAr1Model(std::move(params), history.time(n - 1), resid[n - 1]);
}

double TrendAr1Model::Trend(double t) const {
  const double u = t - params_.origin;
  double v = params_.trend[0] + params_.trend[1] * u;
  if (params_.trend.size() > 2) v += params_.trend[2] * u * u;
  return v;
}

std::vector<double> TrendAr1Model::Forecast(
    const std::vector<double>& times) const {
  std::vector<double> out;
  out.reserve(times.size());
  for (double t : times) {
    const double steps = t - last_time_;
    const double decay =
        steps >= 0.0 ? std::pow(params_.phi, steps) : 1.0;
    out.push_back(Trend(t) + decay * last_residual_);
  }
  return out;
}

std::vector<double> TrendAr1Model::SamplePath(const std::vector<double>& times,
                                              Rng& rng) const {
  std::vector<double> out;
  out.reserve(times.size());
  double resid = last_residual_;
  double prev_t = last_time_;
  for (double t : times) {
    const double steps = std::max(1.0, t - prev_t);
    // Aggregate AR(1) innovations across `steps` unit ticks.
    double var = 0.0;
    double decay = 1.0;
    for (int s = 0; s < static_cast<int>(steps); ++s) {
      var = var * params_.phi * params_.phi + params_.sigma * params_.sigma;
      decay *= params_.phi;
    }
    resid = decay * resid + SampleNormal(rng, 0.0, std::sqrt(var));
    out.push_back(Trend(t) + resid);
    prev_t = t;
  }
  return out;
}

TimeSeries SyntheticHousingIndex(double start_year, double end_year,
                                 double break_time, uint64_t seed) {
  MDE_CHECK_LT(start_year, break_time);
  MDE_CHECK_LT(break_time, end_year);
  Rng rng(seed);
  TimeSeries ts(1);
  double level = 100.0;
  for (double year = start_year; year <= end_year + 1e-9; year += 1.0) {
    double growth;
    if (year < break_time - 8.0) {
      growth = 0.035;  // steady appreciation
    } else if (year < break_time) {
      // Bubble: growth accelerates as the break approaches.
      growth = 0.035 + 0.012 * (8.0 - (break_time - year));
    } else {
      growth = -0.09;  // collapse
    }
    level *= 1.0 + growth + SampleNormal(rng, 0.0, 0.008);
    Status st = ts.Append(year, level);
    MDE_CHECK(st.ok());
  }
  return ts;
}

double ForecastRmse(const std::vector<double>& predicted,
                    const std::vector<double>& truth) {
  MDE_CHECK_EQ(predicted.size(), truth.size());
  MDE_CHECK(!predicted.empty());
  double ss = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const double e = predicted[i] - truth[i];
    ss += e * e;
  }
  return std::sqrt(ss / static_cast<double>(predicted.size()));
}

}  // namespace mde::timeseries
