#ifndef MDE_TIMESERIES_TIMESERIES_H_
#define MDE_TIMESERIES_TIMESERIES_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace mde::timeseries {

/// A time series S = <(s_0, d_0), ..., (s_m, d_m)> in the paper's notation:
/// strictly increasing observation times s_i, each carrying a k-tuple d_i.
/// Width k is fixed per series.
class TimeSeries {
 public:
  TimeSeries() : width_(1) {}
  explicit TimeSeries(size_t width) : width_(width) {}

  /// Builds a univariate series from parallel vectors (times strictly
  /// increasing).
  static Result<TimeSeries> FromUnivariate(std::vector<double> times,
                                           std::vector<double> values);

  size_t width() const { return width_; }
  size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  double time(size_t i) const { return times_[i]; }
  const std::vector<double>& data(size_t i) const { return data_[i]; }
  /// Univariate convenience accessor (first component).
  double value(size_t i) const { return data_[i][0]; }

  const std::vector<double>& times() const { return times_; }

  /// Appends an observation; `t` must exceed the last time, `d` must have
  /// the series width.
  Status Append(double t, std::vector<double> d);
  /// Univariate append.
  Status Append(double t, double v);

  /// First component as a plain vector (for statistics helpers).
  std::vector<double> Column(size_t k) const;

  /// Sub-series with times in [t0, t1].
  TimeSeries Slice(double t0, double t1) const;

  /// Index of the last observation with time <= t, or error if t precedes
  /// the series.
  Result<size_t> FindSegment(double t) const;

 private:
  size_t width_;
  std::vector<double> times_;
  std::vector<std::vector<double>> data_;
};

/// Evenly spaced grid of n points covering [t0, t1] inclusive.
std::vector<double> UniformGrid(double t0, double t1, size_t n);

}  // namespace mde::timeseries

#endif  // MDE_TIMESERIES_TIMESERIES_H_
