#ifndef MDE_TIMESERIES_ALIGN_H_
#define MDE_TIMESERIES_ALIGN_H_

#include <vector>

#include "linalg/solve.h"
#include "timeseries/timeseries.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mde::timeseries {

/// The class of time alignment needed between a source and target model
/// (Splash's time-aligner decision): aggregation when the target ticks
/// more coarsely than the source, interpolation when it ticks more finely.
enum class AlignmentKind { kIdentity, kAggregation, kInterpolation };

/// Chooses the alignment class from the two models' tick lengths.
AlignmentKind DetermineAlignment(double source_step, double target_step);

/// Aggregation methods for coarsening alignments.
enum class AggMethod { kMean, kSum, kMin, kMax, kLast };

/// Aggregates source observations into target ticks: target point t_i
/// receives the aggregate of source observations with time in
/// (t_{i-1}, t_i] (the first tick takes everything at or before t_0).
/// Errors if some target tick receives no source observations.
Result<TimeSeries> AggregateAlign(const TimeSeries& source,
                                  const std::vector<double>& target_times,
                                  AggMethod method);

/// Piecewise-linear interpolation of every component at the target times.
/// All target times must lie within [s_0, s_m].
Result<TimeSeries> LinearInterpolate(const TimeSeries& source,
                                     const std::vector<double>& target_times);

/// The tridiagonal system A sigma_interior = b whose solution gives the
/// natural-cubic-spline constants sigma_1..sigma_{m-1} for component `k`
/// (sigma_0 = sigma_m = 0). This is the (m-1)x(m-1) system of Section 2.2
/// that the DSGD solver attacks at scale.
struct SplineSystem {
  linalg::Tridiagonal a;
  linalg::Vector b;
};

/// Builds the spline-constant system for component `k`. Requires >= 3
/// observations.
Result<SplineSystem> BuildSplineSystem(const TimeSeries& source, size_t k);

/// Natural-cubic-spline constants sigma_0..sigma_m for component `k`,
/// computed exactly via the Thomas algorithm.
Result<std::vector<double>> SplineConstants(const TimeSeries& source,
                                            size_t k);

/// Cubic-spline interpolation of component `k` at the target times using
/// the paper's windowed evaluation formula. If `sigma` is empty it is
/// computed exactly; callers may instead pass constants obtained from the
/// DSGD solver.
Result<TimeSeries> CubicSplineInterpolate(
    const TimeSeries& source, const std::vector<double>& target_times,
    size_t k = 0, std::vector<double> sigma = {});

/// Estimates the integer-tick lag of `target` relative to `source` by
/// maximizing the cross-correlation of their values over lags in
/// [-max_lag, max_lag] (a time-alignment diagnostic for composite models
/// whose clocks are offset, complementary to the granularity alignment
/// above). Both series must be sampled on commensurate ticks and have at
/// least max_lag + 2 points.
Result<long> EstimateLag(const TimeSeries& source, const TimeSeries& target,
                         size_t max_lag);

/// Parallel windowed interpolation: target points are grouped by their
/// enclosing source window W = <(s_j, d_j), (s_{j+1}, d_{j+1})>, windows are
/// evaluated independently on `pool`, and the target series is assembled in
/// time order — the Splash MapReduce pattern on a thread-pool substrate.
/// `use_spline` selects cubic spline (with exact constants) vs linear.
Result<TimeSeries> ParallelInterpolate(const TimeSeries& source,
                                       const std::vector<double>& target_times,
                                       ThreadPool& pool, bool use_spline);

}  // namespace mde::timeseries

#endif  // MDE_TIMESERIES_ALIGN_H_
