#include "wildfire/fire.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/distributions.h"

namespace mde::wildfire {

Terrain GenerateTerrain(size_t width, size_t height, double wind_x,
                        double wind_y, uint64_t seed) {
  MDE_CHECK(width > 0 && height > 0);
  Rng rng(seed);
  Terrain t;
  t.width = width;
  t.height = height;
  t.wind_x = wind_x;
  t.wind_y = wind_y;
  t.fuel.resize(width * height);
  t.moisture.resize(width * height);
  // White noise then box-blur smoothing for spatial coherence.
  for (auto& f : t.fuel) f = rng.NextDouble();
  for (auto& m : t.moisture) m = rng.NextDouble() * 0.5;
  auto blur = [&](std::vector<double>& field) {
    std::vector<double> out(field.size());
    for (size_t y = 0; y < height; ++y) {
      for (size_t x = 0; x < width; ++x) {
        double sum = 0.0;
        size_t n = 0;
        for (long dy = -1; dy <= 1; ++dy) {
          for (long dx = -1; dx <= 1; ++dx) {
            const long nx = static_cast<long>(x) + dx;
            const long ny = static_cast<long>(y) + dy;
            if (nx < 0 || ny < 0 || nx >= static_cast<long>(width) ||
                ny >= static_cast<long>(height)) {
              continue;
            }
            sum += field[t.index(static_cast<size_t>(nx),
                                 static_cast<size_t>(ny))];
            ++n;
          }
        }
        out[t.index(x, y)] = sum / static_cast<double>(n);
      }
    }
    field = std::move(out);
  };
  blur(t.fuel);
  blur(t.fuel);
  blur(t.moisture);
  // Keep fuel bounded away from zero so fire can spread anywhere.
  for (auto& f : t.fuel) f = 0.3 + 0.7 * f;
  return t;
}

size_t FireState::NumBurning() const {
  size_t n = 0;
  for (CellState c : cells) {
    if (c == CellState::kBurning) ++n;
  }
  return n;
}

size_t FireState::NumBurned() const {
  size_t n = 0;
  for (CellState c : cells) {
    if (c == CellState::kBurned) ++n;
  }
  return n;
}

double FireState::CellDisagreement(const FireState& other) const {
  MDE_CHECK_EQ(cells.size(), other.cells.size());
  size_t diff = 0;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (cells[i] != other.cells[i]) ++diff;
  }
  return static_cast<double>(diff) / static_cast<double>(cells.size());
}

FireSim::FireSim(const Terrain& terrain, const Config& config)
    : terrain_(&terrain), config_(config) {}

FireState FireSim::Ignite(size_t x, size_t y, Rng& rng) const {
  FireState s;
  s.cells.assign(terrain_->size(), CellState::kUnburned);
  s.burn_remaining.assign(terrain_->size(), 0);
  s.intensity.assign(terrain_->size(), 0.0);
  const size_t i = terrain_->index(x, y);
  s.cells[i] = CellState::kBurning;
  // A fresh ignition is given a guaranteed minimum burn so a fire cannot
  // fizzle before its first chance to spread.
  s.burn_remaining[i] = std::max(3, SampleBurnDuration(i, rng));
  s.intensity[i] = terrain_->fuel[i];
  return s;
}

double FireSim::IgnitionProbability(size_t from, size_t to, long dx,
                                    long dy) const {
  (void)from;
  const double fuel = terrain_->fuel[to];
  const double moisture = terrain_->moisture[to];
  // Wind alignment: dot of spread direction with wind.
  const double len = std::sqrt(static_cast<double>(dx * dx + dy * dy));
  const double align =
      len > 0.0
          ? (static_cast<double>(dx) * terrain_->wind_x +
             static_cast<double>(dy) * terrain_->wind_y) / len
          : 0.0;
  double p = config_.spread_probability * fuel * (1.0 - moisture) *
             (1.0 + config_.wind_bias * align);
  return std::clamp(p, 0.0, 1.0);
}

int FireSim::SampleBurnDuration(size_t cell, Rng& rng) const {
  const double mean = config_.mean_burn_steps * terrain_->fuel[cell];
  return 2 + static_cast<int>(SamplePoisson(rng, std::max(0.0, mean - 2.0)));
}

void FireSim::Step(FireState* state, Rng& rng) const {
  MDE_CHECK(state != nullptr);
  const size_t w = terrain_->width;
  const size_t h = terrain_->height;
  std::vector<size_t> to_ignite;
  for (size_t y = 0; y < h; ++y) {
    for (size_t x = 0; x < w; ++x) {
      const size_t i = terrain_->index(x, y);
      if (state->cells[i] != CellState::kBurning) continue;
      for (long dy = -1; dy <= 1; ++dy) {
        for (long dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const long nx = static_cast<long>(x) + dx;
          const long ny = static_cast<long>(y) + dy;
          if (nx < 0 || ny < 0 || nx >= static_cast<long>(w) ||
              ny >= static_cast<long>(h)) {
            continue;
          }
          const size_t j =
              terrain_->index(static_cast<size_t>(nx), static_cast<size_t>(ny));
          if (state->cells[j] != CellState::kUnburned) continue;
          if (SampleBernoulli(rng, IgnitionProbability(i, j, dx, dy))) {
            to_ignite.push_back(j);
          }
        }
      }
    }
  }
  // Burn-down sweep.
  for (size_t i = 0; i < state->cells.size(); ++i) {
    if (state->cells[i] == CellState::kBurning) {
      if (--state->burn_remaining[i] <= 0) {
        state->cells[i] = CellState::kBurned;
        state->intensity[i] = 0.0;
      }
    }
  }
  // Ignition sweep (after burn-down, matching a Delta-t batch update).
  for (size_t j : to_ignite) {
    if (state->cells[j] == CellState::kUnburned) {
      state->cells[j] = CellState::kBurning;
      state->burn_remaining[j] = SampleBurnDuration(j, rng);
      state->intensity[j] = terrain_->fuel[j];
    }
  }
}

SensorModel::SensorModel(const Terrain& terrain, const Config& config)
    : terrain_(&terrain), config_(config) {
  MDE_CHECK_GT(config.stride, 0u);
  for (size_t y = config.stride / 2; y < terrain.height; y += config.stride) {
    for (size_t x = config.stride / 2; x < terrain.width;
         x += config.stride) {
      cells_.push_back(terrain.index(x, y));
    }
  }
  MDE_CHECK(!cells_.empty());
}

double SensorModel::ExpectedReading(const FireState& state, size_t s) const {
  const size_t cell = cells_[s];
  const size_t w = terrain_->width;
  const size_t x = cell % w;
  const size_t y = cell / w;
  double temp = config_.ambient_temp +
                config_.heat_per_intensity * state.intensity[cell];
  // Neighbor bleed: nearby burning cells raise the reading.
  for (long dy = -1; dy <= 1; ++dy) {
    for (long dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const long nx = static_cast<long>(x) + dx;
      const long ny = static_cast<long>(y) + dy;
      if (nx < 0 || ny < 0 || nx >= static_cast<long>(w) ||
          ny >= static_cast<long>(terrain_->height)) {
        continue;
      }
      temp += config_.neighbor_bleed * config_.heat_per_intensity *
              state.intensity[terrain_->index(static_cast<size_t>(nx),
                                              static_cast<size_t>(ny))];
    }
  }
  return temp;
}

std::vector<double> SensorModel::Observe(const FireState& state,
                                         Rng& rng) const {
  std::vector<double> readings(cells_.size());
  for (size_t s = 0; s < cells_.size(); ++s) {
    readings[s] =
        ExpectedReading(state, s) + SampleNormal(rng, 0.0, config_.noise_sd);
  }
  return readings;
}

double SensorModel::LogLikelihood(const FireState& state,
                                  const std::vector<double>& readings) const {
  MDE_CHECK_EQ(readings.size(), cells_.size());
  double ll = 0.0;
  for (size_t s = 0; s < cells_.size(); ++s) {
    ll += NormalLogPdf(readings[s], ExpectedReading(state, s),
                       config_.noise_sd);
  }
  return ll;
}

}  // namespace mde::wildfire
