#ifndef MDE_WILDFIRE_ASSIMILATE_H_
#define MDE_WILDFIRE_ASSIMILATE_H_

#include <cstdint>
#include <vector>

#include "smc/resample.h"
#include "util/rng.h"
#include "util/status.h"
#include "wildfire/fire.h"

namespace mde::wildfire {

/// Proposal distribution for the assimilation filter (Section 3.2).
enum class ProposalKind {
  /// q_n = p_n(x_n | x_{n-1}): set the simulator to the particle's state
  /// and simulate Delta-t (Xue et al. 2012). Weights reduce to the
  /// observation density.
  kBootstrap,
  /// The sensor-aware proposal of Xue & Hu 2013: generate x from the
  /// transition, derive x' by igniting hot-sensor cells and extinguishing
  /// cool-sensor cells, pick x or x' by relative confidence, and estimate
  /// the transition/proposal densities by KDE over a state summary.
  kSensorAware,
};

struct AssimilationConfig {
  size_t num_particles = 100;
  ProposalKind proposal = ProposalKind::kBootstrap;
  smc::ResampleMethod resample = smc::ResampleMethod::kSystematic;
  /// Sensor reading above which an unburned sensor cell is deemed burning.
  double hot_threshold = 150.0;
  /// Reading below which a burning sensor cell is deemed out.
  double cool_threshold = 60.0;
  /// Probability of applying each sensor-driven correction in x'.
  double correction_prob = 0.9;
  /// Probability of trusting the simulation (choosing x over x').
  double sim_confidence = 0.5;
  /// M: extra samples drawn to KDE-estimate p and q densities (the paper's
  /// M > 1). The KDE summary statistic is the burning-cell count.
  size_t kde_samples = 8;
  uint64_t seed = 777;
};

/// Particle filter specialized to wildfire states (particles are FireState
/// values; resampling/weighting reuse the smc primitives).
class WildfireFilter {
 public:
  WildfireFilter(const FireSim& sim, const SensorModel& sensors,
                 const FireState& initial, const AssimilationConfig& config);

  /// One assimilation step: propagate particles with the chosen proposal,
  /// weight against the sensor readings y_n, resample.
  Status Step(const std::vector<double>& readings);

  /// Posterior probability that each cell is burning.
  std::vector<double> BurningProbability() const;

  /// Per-cell weighted-majority state classification (the filter's point
  /// estimate of the fire front).
  FireState Classify() const;

  double last_ess() const { return last_ess_; }
  const std::vector<FireState>& particles() const { return particles_; }

 private:
  FireState ProposeSensorAware(const FireState& prev,
                               const std::vector<double>& readings, Rng& rng,
                               bool* used_adjusted) const;
  FireState AdjustBySensors(const FireState& base,
                            const std::vector<double>& readings,
                            Rng& rng) const;

  const FireSim& sim_;
  const SensorModel& sensors_;
  AssimilationConfig config_;
  Rng rng_;
  std::vector<FireState> particles_;
  std::vector<double> weights_;
  double last_ess_ = 0.0;
};

/// End-to-end assimilation experiment: a ground-truth fire evolves and is
/// observed through noisy sensors; an open-loop simulation (no data) and a
/// particle filter (with data) both track it. Errors are fractions of
/// cells misclassified per step.
struct AssimilationRun {
  std::vector<double> open_loop_error;
  std::vector<double> filter_error;
  std::vector<double> ess;
};

Result<AssimilationRun> RunAssimilation(const FireSim& sim,
                                        const SensorModel& sensors,
                                        size_t steps,
                                        const AssimilationConfig& config,
                                        uint64_t truth_seed);

}  // namespace mde::wildfire

#endif  // MDE_WILDFIRE_ASSIMILATE_H_
