#ifndef MDE_WILDFIRE_ASSIMILATE_H_
#define MDE_WILDFIRE_ASSIMILATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/recovery.h"
#include "ckpt/snapshot.h"
#include "smc/resample.h"
#include "util/rng.h"
#include "util/status.h"
#include "wildfire/fire.h"

namespace mde::wildfire {

/// Proposal distribution for the assimilation filter (Section 3.2).
enum class ProposalKind {
  /// q_n = p_n(x_n | x_{n-1}): set the simulator to the particle's state
  /// and simulate Delta-t (Xue et al. 2012). Weights reduce to the
  /// observation density.
  kBootstrap,
  /// The sensor-aware proposal of Xue & Hu 2013: generate x from the
  /// transition, derive x' by igniting hot-sensor cells and extinguishing
  /// cool-sensor cells, pick x or x' by relative confidence, and estimate
  /// the transition/proposal densities by KDE over a state summary.
  kSensorAware,
};

struct AssimilationConfig {
  size_t num_particles = 100;
  ProposalKind proposal = ProposalKind::kBootstrap;
  smc::ResampleMethod resample = smc::ResampleMethod::kSystematic;
  /// Sensor reading above which an unburned sensor cell is deemed burning.
  double hot_threshold = 150.0;
  /// Reading below which a burning sensor cell is deemed out.
  double cool_threshold = 60.0;
  /// Probability of applying each sensor-driven correction in x'.
  double correction_prob = 0.9;
  /// Probability of trusting the simulation (choosing x over x').
  double sim_confidence = 0.5;
  /// M: extra samples drawn to KDE-estimate p and q densities (the paper's
  /// M > 1). The KDE summary statistic is the burning-cell count.
  size_t kde_samples = 8;
  uint64_t seed = 777;
};

/// Particle filter specialized to wildfire states (particles are FireState
/// values; resampling/weighting reuse the smc primitives).
class WildfireFilter {
 public:
  WildfireFilter(const FireSim& sim, const SensorModel& sensors,
                 const FireState& initial, const AssimilationConfig& config);

  /// One assimilation step: propagate particles with the chosen proposal,
  /// weight against the sensor readings y_n, resample.
  Status Step(const std::vector<double>& readings);

  /// Posterior probability that each cell is burning.
  std::vector<double> BurningProbability() const;

  /// Per-cell weighted-majority state classification (the filter's point
  /// estimate of the fire front).
  FireState Classify() const;

  double last_ess() const { return last_ess_; }
  const std::vector<FireState>& particles() const { return particles_; }

  /// Section-level (de)serialization of the filter's mutable state (RNG
  /// position, particle ensemble, weights, last ESS) for embedding in an
  /// engine snapshot. RestoreState does not ExpectEnd; the caller owns the
  /// section.
  void SaveState(ckpt::SectionWriter* s) const;
  Status RestoreState(ckpt::SectionReader* s);

 private:
  FireState ProposeSensorAware(const FireState& prev,
                               const std::vector<double>& readings, Rng& rng,
                               bool* used_adjusted) const;
  FireState AdjustBySensors(const FireState& base,
                            const std::vector<double>& readings,
                            Rng& rng) const;

  const FireSim& sim_;
  const SensorModel& sensors_;
  AssimilationConfig config_;
  Rng rng_;
  std::vector<FireState> particles_;
  std::vector<double> weights_;
  double last_ess_ = 0.0;
};

/// End-to-end assimilation experiment: a ground-truth fire evolves and is
/// observed through noisy sensors; an open-loop simulation (no data) and a
/// particle filter (with data) both track it. Errors are fractions of
/// cells misclassified per step.
struct AssimilationRun {
  std::vector<double> open_loop_error;
  std::vector<double> filter_error;
  std::vector<double> ess;
};

/// Resumable assimilation experiment: one StepOnce() per assimilation step
/// (truth evolves, sensors observe, open-loop and filter track). Snapshots
/// capture the step cursor, all three RNG substream positions, the truth
/// and open-loop cell grids, the error/ESS series, and the full filter
/// ensemble — kill-at-step-k + restore finishes bit-identically to an
/// uninterrupted run. Fault point: "wildfire.step". The terrain, sensor
/// layout, and config are immutable inputs and are not serialized.
class AssimilationDriver : public ckpt::Checkpointable {
 public:
  AssimilationDriver(const FireSim& sim, const SensorModel& sensors,
                     size_t steps, const AssimilationConfig& config,
                     uint64_t truth_seed);

  std::string engine_name() const override { return "wildfire"; }
  bool Done() const override { return t_ >= steps_; }
  Status StepOnce() override;
  Result<std::string> Save() const override;
  Status Restore(const std::string& snapshot) override;

  size_t step() const { return t_; }
  const WildfireFilter& filter() const { return filter_; }
  /// The error/ESS series; call after Done().
  Result<AssimilationRun> Finish();

 private:
  const FireSim& sim_;
  const SensorModel& sensors_;
  size_t steps_;
  Rng truth_rng_;
  Rng sensor_rng_;
  Rng open_rng_;
  FireState truth_;
  FireState open_loop_;
  WildfireFilter filter_;
  AssimilationRun run_;
  size_t t_ = 0;
};

Result<AssimilationRun> RunAssimilation(const FireSim& sim,
                                        const SensorModel& sensors,
                                        size_t steps,
                                        const AssimilationConfig& config,
                                        uint64_t truth_seed);

}  // namespace mde::wildfire

#endif  // MDE_WILDFIRE_ASSIMILATE_H_
