#include "wildfire/assimilate.h"

#include <algorithm>
#include <cmath>

#include "smc/particle_filter.h"
#include "util/check.h"
#include "util/distributions.h"

namespace mde::wildfire {

WildfireFilter::WildfireFilter(const FireSim& sim, const SensorModel& sensors,
                               const FireState& initial,
                               const AssimilationConfig& config)
    : sim_(sim), sensors_(sensors), config_(config), rng_(config.seed) {
  MDE_CHECK_GT(config.num_particles, 0u);
  particles_.assign(config.num_particles, initial);
  weights_.assign(config.num_particles,
                  1.0 / static_cast<double>(config.num_particles));
}

FireState WildfireFilter::AdjustBySensors(const FireState& base,
                                          const std::vector<double>& readings,
                                          Rng& rng) const {
  FireState adjusted = base;
  const auto& cells = sensors_.sensor_cells();
  for (size_t s = 0; s < cells.size(); ++s) {
    const size_t cell = cells[s];
    if (readings[s] > config_.hot_threshold &&
        adjusted.cells[cell] == CellState::kUnburned) {
      if (SampleBernoulli(rng, config_.correction_prob)) {
        adjusted.cells[cell] = CellState::kBurning;
        adjusted.burn_remaining[cell] = 2;
        adjusted.intensity[cell] = sim_.terrain().fuel[cell];
      }
    } else if (readings[s] < config_.cool_threshold &&
               adjusted.cells[cell] == CellState::kBurning) {
      if (SampleBernoulli(rng, config_.correction_prob)) {
        adjusted.cells[cell] = CellState::kBurned;
        adjusted.burn_remaining[cell] = 0;
        adjusted.intensity[cell] = 0.0;
      }
    }
  }
  return adjusted;
}

FireState WildfireFilter::ProposeSensorAware(
    const FireState& prev, const std::vector<double>& readings, Rng& rng,
    bool* used_adjusted) const {
  FireState x = prev;
  sim_.Step(&x, rng);
  if (SampleBernoulli(rng, config_.sim_confidence)) {
    *used_adjusted = false;
    return x;
  }
  *used_adjusted = true;
  return AdjustBySensors(x, readings, rng);
}

Status WildfireFilter::Step(const std::vector<double>& readings) {
  const size_t n = config_.num_particles;
  std::vector<FireState> next;
  next.reserve(n);
  std::vector<double> log_w(n);
  for (size_t i = 0; i < n; ++i) {
    const FireState& prev = particles_[i];
    if (config_.proposal == ProposalKind::kBootstrap) {
      // Sampling from p(x_n | x_prev): set the simulator to the particle's
      // state and run Delta-t. The weight reduces to p(y | x).
      FireState x = prev;
      sim_.Step(&x, rng_);
      log_w[i] = std::log(std::max(weights_[i], 1e-300)) +
                 sensors_.LogLikelihood(x, readings);
      next.push_back(std::move(x));
    } else {
      bool used_adjusted = false;
      FireState x = ProposeSensorAware(prev, readings, rng_, &used_adjusted);
      // KDE estimation of p(x | x_prev) and q(x | y, x_prev) over the
      // burning-count summary statistic, with M auxiliary samples each.
      const double t_x = static_cast<double>(x.NumBurning());
      std::vector<double> p_samples, q_samples;
      p_samples.reserve(config_.kde_samples);
      q_samples.reserve(config_.kde_samples);
      for (size_t m = 0; m < config_.kde_samples; ++m) {
        FireState xs = prev;
        sim_.Step(&xs, rng_);
        p_samples.push_back(static_cast<double>(xs.NumBurning()));
        bool dummy = false;
        FireState xq = ProposeSensorAware(prev, readings, rng_, &dummy);
        q_samples.push_back(static_cast<double>(xq.NumBurning()));
      }
      smc::KernelDensity p_kde(std::move(p_samples), /*bandwidth=*/0.0,
                               smc::KernelDensity::Kernel::kLaplace);
      smc::KernelDensity q_kde(std::move(q_samples), /*bandwidth=*/0.0,
                               smc::KernelDensity::Kernel::kLaplace);
      log_w[i] = std::log(std::max(weights_[i], 1e-300)) +
                 sensors_.LogLikelihood(x, readings) + p_kde.LogDensity(t_x) -
                 q_kde.LogDensity(t_x);
      next.push_back(std::move(x));
    }
  }
  particles_ = std::move(next);
  MDE_ASSIGN_OR_RETURN(weights_, smc::NormalizedFromLog(log_w));
  last_ess_ = smc::EffectiveSampleSize(weights_);
  const std::vector<size_t> idx =
      smc::ResampleIndices(weights_, n, config_.resample, rng_);
  std::vector<FireState> resampled;
  resampled.reserve(n);
  for (size_t a : idx) resampled.push_back(particles_[a]);
  particles_ = std::move(resampled);
  weights_.assign(n, 1.0 / static_cast<double>(n));
  return Status::OK();
}

std::vector<double> WildfireFilter::BurningProbability() const {
  MDE_CHECK(!particles_.empty());
  std::vector<double> prob(particles_[0].cells.size(), 0.0);
  for (size_t i = 0; i < particles_.size(); ++i) {
    for (size_t c = 0; c < prob.size(); ++c) {
      if (particles_[i].cells[c] == CellState::kBurning) {
        prob[c] += weights_[i];
      }
    }
  }
  return prob;
}

FireState WildfireFilter::Classify() const {
  MDE_CHECK(!particles_.empty());
  const size_t num_cells = particles_[0].cells.size();
  FireState out = particles_[0];
  for (size_t c = 0; c < num_cells; ++c) {
    double mass[3] = {0.0, 0.0, 0.0};
    for (size_t i = 0; i < particles_.size(); ++i) {
      mass[static_cast<size_t>(particles_[i].cells[c])] += weights_[i];
    }
    size_t best = 0;
    for (size_t k = 1; k < 3; ++k) {
      if (mass[k] > mass[best]) best = k;
    }
    out.cells[c] = static_cast<CellState>(best);
    out.intensity[c] = best == 1 ? sim_.terrain().fuel[c] : 0.0;
    out.burn_remaining[c] = best == 1 ? 1 : 0;
  }
  return out;
}

Result<AssimilationRun> RunAssimilation(const FireSim& sim,
                                        const SensorModel& sensors,
                                        size_t steps,
                                        const AssimilationConfig& config,
                                        uint64_t truth_seed) {
  if (steps == 0) return Status::InvalidArgument("steps must be positive");
  Rng truth_rng = Rng::Substream(truth_seed, 0);
  Rng sensor_rng = Rng::Substream(truth_seed, 1);
  Rng open_rng = Rng::Substream(truth_seed, 2);

  const size_t cx = sim.terrain().width / 2;
  const size_t cy = sim.terrain().height / 2;
  FireState truth = sim.Ignite(cx, cy, truth_rng);
  FireState open_loop = sim.Ignite(cx, cy, open_rng);
  WildfireFilter filter(sim, sensors, truth, config);

  AssimilationRun run;
  for (size_t t = 0; t < steps; ++t) {
    sim.Step(&truth, truth_rng);
    const std::vector<double> y = sensors.Observe(truth, sensor_rng);
    sim.Step(&open_loop, open_rng);
    MDE_RETURN_NOT_OK(filter.Step(y));
    run.open_loop_error.push_back(truth.CellDisagreement(open_loop));
    run.filter_error.push_back(truth.CellDisagreement(filter.Classify()));
    run.ess.push_back(filter.last_ess());
  }
  return run;
}

}  // namespace mde::wildfire
