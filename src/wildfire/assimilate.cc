#include "wildfire/assimilate.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ckpt/fault.h"
#include "smc/particle_filter.h"
#include "util/check.h"
#include "util/distributions.h"

namespace mde::wildfire {

namespace {

/// Cell grids travel as raw tags/durations, intensities as IEEE-754 bits —
/// a restored state is bit-identical.
void PutFireState(ckpt::SectionWriter* s, const FireState& f) {
  s->PutU64(f.cells.size());
  for (CellState c : f.cells) s->PutU8(static_cast<uint8_t>(c));
  s->PutU64(f.burn_remaining.size());
  for (int b : f.burn_remaining) s->PutI64(b);
  s->PutDoubleVec(f.intensity);
}

FireState TakeFireState(ckpt::SectionReader* s) {
  FireState f;
  const uint64_t nc = s->U64();
  f.cells.reserve(nc);
  for (uint64_t i = 0; i < nc && s->status().ok(); ++i) {
    f.cells.push_back(static_cast<CellState>(s->U8()));
  }
  const uint64_t nb = s->U64();
  f.burn_remaining.reserve(nb);
  for (uint64_t i = 0; i < nb && s->status().ok(); ++i) {
    f.burn_remaining.push_back(static_cast<int>(s->I64()));
  }
  f.intensity = s->DoubleVec();
  return f;
}

}  // namespace

WildfireFilter::WildfireFilter(const FireSim& sim, const SensorModel& sensors,
                               const FireState& initial,
                               const AssimilationConfig& config)
    : sim_(sim), sensors_(sensors), config_(config), rng_(config.seed) {
  MDE_CHECK_GT(config.num_particles, 0u);
  particles_.assign(config.num_particles, initial);
  weights_.assign(config.num_particles,
                  1.0 / static_cast<double>(config.num_particles));
}

FireState WildfireFilter::AdjustBySensors(const FireState& base,
                                          const std::vector<double>& readings,
                                          Rng& rng) const {
  FireState adjusted = base;
  const auto& cells = sensors_.sensor_cells();
  for (size_t s = 0; s < cells.size(); ++s) {
    const size_t cell = cells[s];
    if (readings[s] > config_.hot_threshold &&
        adjusted.cells[cell] == CellState::kUnburned) {
      if (SampleBernoulli(rng, config_.correction_prob)) {
        adjusted.cells[cell] = CellState::kBurning;
        adjusted.burn_remaining[cell] = 2;
        adjusted.intensity[cell] = sim_.terrain().fuel[cell];
      }
    } else if (readings[s] < config_.cool_threshold &&
               adjusted.cells[cell] == CellState::kBurning) {
      if (SampleBernoulli(rng, config_.correction_prob)) {
        adjusted.cells[cell] = CellState::kBurned;
        adjusted.burn_remaining[cell] = 0;
        adjusted.intensity[cell] = 0.0;
      }
    }
  }
  return adjusted;
}

FireState WildfireFilter::ProposeSensorAware(
    const FireState& prev, const std::vector<double>& readings, Rng& rng,
    bool* used_adjusted) const {
  FireState x = prev;
  sim_.Step(&x, rng);
  if (SampleBernoulli(rng, config_.sim_confidence)) {
    *used_adjusted = false;
    return x;
  }
  *used_adjusted = true;
  return AdjustBySensors(x, readings, rng);
}

Status WildfireFilter::Step(const std::vector<double>& readings) {
  const size_t n = config_.num_particles;
  std::vector<FireState> next;
  next.reserve(n);
  std::vector<double> log_w(n);
  for (size_t i = 0; i < n; ++i) {
    const FireState& prev = particles_[i];
    if (config_.proposal == ProposalKind::kBootstrap) {
      // Sampling from p(x_n | x_prev): set the simulator to the particle's
      // state and run Delta-t. The weight reduces to p(y | x).
      FireState x = prev;
      sim_.Step(&x, rng_);
      log_w[i] = std::log(std::max(weights_[i], 1e-300)) +
                 sensors_.LogLikelihood(x, readings);
      next.push_back(std::move(x));
    } else {
      bool used_adjusted = false;
      FireState x = ProposeSensorAware(prev, readings, rng_, &used_adjusted);
      // KDE estimation of p(x | x_prev) and q(x | y, x_prev) over the
      // burning-count summary statistic, with M auxiliary samples each.
      const double t_x = static_cast<double>(x.NumBurning());
      std::vector<double> p_samples, q_samples;
      p_samples.reserve(config_.kde_samples);
      q_samples.reserve(config_.kde_samples);
      for (size_t m = 0; m < config_.kde_samples; ++m) {
        FireState xs = prev;
        sim_.Step(&xs, rng_);
        p_samples.push_back(static_cast<double>(xs.NumBurning()));
        bool dummy = false;
        FireState xq = ProposeSensorAware(prev, readings, rng_, &dummy);
        q_samples.push_back(static_cast<double>(xq.NumBurning()));
      }
      smc::KernelDensity p_kde(std::move(p_samples), /*bandwidth=*/0.0,
                               smc::KernelDensity::Kernel::kLaplace);
      smc::KernelDensity q_kde(std::move(q_samples), /*bandwidth=*/0.0,
                               smc::KernelDensity::Kernel::kLaplace);
      log_w[i] = std::log(std::max(weights_[i], 1e-300)) +
                 sensors_.LogLikelihood(x, readings) + p_kde.LogDensity(t_x) -
                 q_kde.LogDensity(t_x);
      next.push_back(std::move(x));
    }
  }
  particles_ = std::move(next);
  MDE_ASSIGN_OR_RETURN(weights_, smc::NormalizedFromLog(log_w));
  last_ess_ = smc::EffectiveSampleSize(weights_);
  const std::vector<size_t> idx =
      smc::ResampleIndices(weights_, n, config_.resample, rng_);
  std::vector<FireState> resampled;
  resampled.reserve(n);
  for (size_t a : idx) resampled.push_back(particles_[a]);
  particles_ = std::move(resampled);
  weights_.assign(n, 1.0 / static_cast<double>(n));
  return Status::OK();
}

std::vector<double> WildfireFilter::BurningProbability() const {
  MDE_CHECK(!particles_.empty());
  std::vector<double> prob(particles_[0].cells.size(), 0.0);
  for (size_t i = 0; i < particles_.size(); ++i) {
    for (size_t c = 0; c < prob.size(); ++c) {
      if (particles_[i].cells[c] == CellState::kBurning) {
        prob[c] += weights_[i];
      }
    }
  }
  return prob;
}

FireState WildfireFilter::Classify() const {
  MDE_CHECK(!particles_.empty());
  const size_t num_cells = particles_[0].cells.size();
  FireState out = particles_[0];
  for (size_t c = 0; c < num_cells; ++c) {
    double mass[3] = {0.0, 0.0, 0.0};
    for (size_t i = 0; i < particles_.size(); ++i) {
      mass[static_cast<size_t>(particles_[i].cells[c])] += weights_[i];
    }
    size_t best = 0;
    for (size_t k = 1; k < 3; ++k) {
      if (mass[k] > mass[best]) best = k;
    }
    out.cells[c] = static_cast<CellState>(best);
    out.intensity[c] = best == 1 ? sim_.terrain().fuel[c] : 0.0;
    out.burn_remaining[c] = best == 1 ? 1 : 0;
  }
  return out;
}

void WildfireFilter::SaveState(ckpt::SectionWriter* s) const {
  s->PutRngState(rng_.state());
  s->PutDouble(last_ess_);
  s->PutDoubleVec(weights_);
  s->PutU64(particles_.size());
  for (const FireState& p : particles_) PutFireState(s, p);
}

Status WildfireFilter::RestoreState(ckpt::SectionReader* s) {
  const Rng::State rng_state = s->RngState();
  const double last_ess = s->Double();
  std::vector<double> weights = s->DoubleVec();
  const uint64_t np = s->U64();
  std::vector<FireState> particles;
  particles.reserve(np);
  for (uint64_t i = 0; i < np && s->status().ok(); ++i) {
    particles.push_back(TakeFireState(s));
  }
  MDE_RETURN_NOT_OK(s->status());
  if (particles.size() != config_.num_particles ||
      weights.size() != config_.num_particles) {
    return Status::InvalidArgument(
        "wildfire checkpoint does not match num_particles");
  }
  rng_.set_state(rng_state);
  last_ess_ = last_ess;
  weights_ = std::move(weights);
  particles_ = std::move(particles);
  return Status::OK();
}

AssimilationDriver::AssimilationDriver(const FireSim& sim,
                                       const SensorModel& sensors,
                                       size_t steps,
                                       const AssimilationConfig& config,
                                       uint64_t truth_seed)
    : sim_(sim),
      sensors_(sensors),
      steps_(steps),
      truth_rng_(Rng::Substream(truth_seed, 0)),
      sensor_rng_(Rng::Substream(truth_seed, 1)),
      open_rng_(Rng::Substream(truth_seed, 2)),
      truth_(sim.Ignite(sim.terrain().width / 2, sim.terrain().height / 2,
                        truth_rng_)),
      open_loop_(sim.Ignite(sim.terrain().width / 2,
                            sim.terrain().height / 2, open_rng_)),
      filter_(sim, sensors, truth_, config) {}

Status AssimilationDriver::StepOnce() {
  if (Done()) {
    return Status::FailedPrecondition("wildfire: already finished");
  }
  // Before any mutation: a fault here leaves truth/open-loop/filter and all
  // three RNG substreams exactly at the previous step boundary.
  MDE_FAULT_POINT("wildfire.step");
  sim_.Step(&truth_, truth_rng_);
  const std::vector<double> y = sensors_.Observe(truth_, sensor_rng_);
  sim_.Step(&open_loop_, open_rng_);
  MDE_RETURN_NOT_OK(filter_.Step(y));
  run_.open_loop_error.push_back(truth_.CellDisagreement(open_loop_));
  run_.filter_error.push_back(truth_.CellDisagreement(filter_.Classify()));
  run_.ess.push_back(filter_.last_ess());
  ++t_;
  return Status::OK();
}

Result<std::string> AssimilationDriver::Save() const {
  ckpt::SnapshotWriter snap(engine_name());
  ckpt::SectionWriter* r = snap.AddSection("run");
  r->PutU64(t_);
  r->PutU64(steps_);
  r->PutRngState(truth_rng_.state());
  r->PutRngState(sensor_rng_.state());
  r->PutRngState(open_rng_.state());
  r->PutDoubleVec(run_.open_loop_error);
  r->PutDoubleVec(run_.filter_error);
  r->PutDoubleVec(run_.ess);
  ckpt::SectionWriter* g = snap.AddSection("grids");
  PutFireState(g, truth_);
  PutFireState(g, open_loop_);
  filter_.SaveState(snap.AddSection("filter"));
  return snap.Finish();
}

Status AssimilationDriver::Restore(const std::string& snapshot) {
  MDE_ASSIGN_OR_RETURN(ckpt::SnapshotReader snap,
                       ckpt::SnapshotReader::Parse(snapshot));
  if (snap.engine() != engine_name()) {
    return Status::InvalidArgument("checkpoint is for engine '" +
                                   snap.engine() + "', not wildfire");
  }
  MDE_ASSIGN_OR_RETURN(ckpt::SectionReader r, snap.section("run"));
  const uint64_t t = r.U64();
  const uint64_t steps = r.U64();
  const Rng::State truth_state = r.RngState();
  const Rng::State sensor_state = r.RngState();
  const Rng::State open_state = r.RngState();
  AssimilationRun run;
  run.open_loop_error = r.DoubleVec();
  run.filter_error = r.DoubleVec();
  run.ess = r.DoubleVec();
  MDE_RETURN_NOT_OK(r.ExpectEnd());
  if (steps != steps_) {
    return Status::InvalidArgument(
        "wildfire checkpoint is for a different run length");
  }
  MDE_ASSIGN_OR_RETURN(ckpt::SectionReader g, snap.section("grids"));
  FireState truth = TakeFireState(&g);
  FireState open_loop = TakeFireState(&g);
  MDE_RETURN_NOT_OK(g.ExpectEnd());
  if (truth.cells.size() != sim_.terrain().size() ||
      open_loop.cells.size() != sim_.terrain().size()) {
    return Status::InvalidArgument(
        "wildfire checkpoint does not match this terrain");
  }
  MDE_ASSIGN_OR_RETURN(ckpt::SectionReader f, snap.section("filter"));
  MDE_RETURN_NOT_OK(filter_.RestoreState(&f));
  MDE_RETURN_NOT_OK(f.ExpectEnd());
  t_ = t;
  truth_rng_.set_state(truth_state);
  sensor_rng_.set_state(sensor_state);
  open_rng_.set_state(open_state);
  truth_ = std::move(truth);
  open_loop_ = std::move(open_loop);
  run_ = std::move(run);
  return Status::OK();
}

Result<AssimilationRun> AssimilationDriver::Finish() {
  if (!Done()) {
    return Status::FailedPrecondition("wildfire: run not finished");
  }
  return run_;
}

Result<AssimilationRun> RunAssimilation(const FireSim& sim,
                                        const SensorModel& sensors,
                                        size_t steps,
                                        const AssimilationConfig& config,
                                        uint64_t truth_seed) {
  if (steps == 0) return Status::InvalidArgument("steps must be positive");
  AssimilationDriver driver(sim, sensors, steps, config, truth_seed);
  while (!driver.Done()) MDE_RETURN_NOT_OK(driver.StepOnce());
  return driver.Finish();
}

}  // namespace mde::wildfire
