#ifndef MDE_WILDFIRE_FIRE_H_
#define MDE_WILDFIRE_FIRE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace mde::wildfire {

/// Cell fire status as in the DEVS-FIRE gridded model (Section 3.2): each
/// terrain cell is unburned, burning (with an intensity), or burned out.
enum class CellState : uint8_t { kUnburned = 0, kBurning = 1, kBurned = 2 };

/// Static terrain: per-cell fuel load and moisture plus a constant wind
/// vector. Generated synthetically as smoothed random fields (substitute
/// for GIS terrain data).
struct Terrain {
  size_t width = 0;
  size_t height = 0;
  std::vector<double> fuel;      // [0, 1] per cell
  std::vector<double> moisture;  // [0, 1] per cell
  double wind_x = 0.0;
  double wind_y = 0.0;

  size_t index(size_t x, size_t y) const { return y * width + x; }
  size_t size() const { return width * height; }
};

/// Smoothed random terrain with the given wind.
Terrain GenerateTerrain(size_t width, size_t height, double wind_x,
                        double wind_y, uint64_t seed);

/// Dynamic fire state over a terrain grid.
struct FireState {
  std::vector<CellState> cells;
  /// Remaining burn duration for burning cells (steps).
  std::vector<int> burn_remaining;
  /// Fire intensity per cell (0 when not burning).
  std::vector<double> intensity;

  size_t NumBurning() const;
  size_t NumBurned() const;

  /// Fraction of cells whose CellState differs from `other` (the
  /// assimilation accuracy metric).
  double CellDisagreement(const FireState& other) const;

  bool operator==(const FireState& other) const {
    return cells == other.cells;
  }
};

/// Stochastic fire-spread simulator: the transition kernel p(x_n | x_{n-1})
/// of the hidden Markov model. Burning cells ignite their 8 neighbors with
/// probability increasing in fuel, decreasing in moisture, and biased by
/// wind alignment; burning cells burn out after a fuel-dependent duration.
class FireSim {
 public:
  struct Config {
    /// Base per-step ignition probability from one burning neighbor.
    double spread_probability = 0.30;
    /// Strength of the wind alignment bias.
    double wind_bias = 0.35;
    /// Mean burn duration in steps for a full-fuel cell.
    double mean_burn_steps = 5.0;
  };

  FireSim(const Terrain& terrain, const Config& config);

  const Terrain& terrain() const { return *terrain_; }

  /// Fresh state with a single ignition at (x, y).
  FireState Ignite(size_t x, size_t y, Rng& rng) const;

  /// Advances the state by one step (Delta-t of simulated time).
  void Step(FireState* state, Rng& rng) const;

 private:
  double IgnitionProbability(size_t from, size_t to, long dx, long dy) const;
  int SampleBurnDuration(size_t cell, Rng& rng) const;

  const Terrain* terrain_;
  Config config_;
};

/// Fixed temperature sensors on a subsampled grid; each reads ambient
/// temperature plus fire-intensity heating, corrupted by Gaussian noise —
/// the paper's Gaussian sensor-behavior model, which yields the closed-form
/// observation density p(y_n | x_n).
class SensorModel {
 public:
  struct Config {
    /// Place a sensor every `stride` cells in each direction.
    size_t stride = 5;
    double ambient_temp = 20.0;
    /// Temperature contribution per unit intensity in the sensor's cell.
    double heat_per_intensity = 400.0;
    /// Fraction of neighbor-cell heat that bleeds into a sensor reading.
    double neighbor_bleed = 0.25;
    double noise_sd = 15.0;
  };

  SensorModel(const Terrain& terrain, const Config& config);

  size_t num_sensors() const { return cells_.size(); }
  const std::vector<size_t>& sensor_cells() const { return cells_; }

  /// Noise-free expected reading of sensor s under `state`.
  double ExpectedReading(const FireState& state, size_t s) const;

  /// Noisy readings y_n for all sensors.
  std::vector<double> Observe(const FireState& state, Rng& rng) const;

  /// log p(y | x): product of per-sensor Gaussians.
  double LogLikelihood(const FireState& state,
                       const std::vector<double>& readings) const;

  const Config& config() const { return config_; }

 private:
  const Terrain* terrain_;
  Config config_;
  std::vector<size_t> cells_;
};

}  // namespace mde::wildfire

#endif  // MDE_WILDFIRE_FIRE_H_
